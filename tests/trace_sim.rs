//! Cross-crate integration for the trace/observability layer: on a
//! seeded lossy DIS run, the per-role [`MetricsRegistry`] aggregates
//! must agree with the simulator's wire-level [`NetStats`] and with the
//! machines' own bookkeeping — the trace layer is a view, not a second
//! truth.

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm::sim::loss::LossModel;
use lbrm::sim::stats::SegmentClass;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::machine::Notice;
use lbrm_core::receiver::Receiver;

const SENDS: u64 = 20;

fn lossy_run() -> DisScenario {
    // Loss on receiver-site inbound tails only: the sender's egress path
    // is lossless, so every multicast send crosses its tail circuit
    // exactly once and the wire counts are exact mirrors of the
    // sender-side trace counters.
    let site_params = SiteParams {
        tail_in_loss: LossModel::rate(0.08),
        ..SiteParams::distant()
    };
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 6,
        receivers_per_site: 4,
        site_params,
        receiver_nack_delay: std::time::Duration::from_millis(5),
        seed: 4242,
        ..DisScenarioConfig::default()
    });
    for i in 0..SENDS {
        sc.send_at(SimTime::from_millis(1_000 + 400 * i), format!("update-{i}"));
    }
    sc.world.run_until(SimTime::from_secs(60));
    sc
}

#[test]
fn trace_counters_match_wire_stats_and_machine_bookkeeping() {
    let sc = lossy_run();
    let expect: Vec<u32> = (1..=SENDS as u32).collect();
    assert_eq!(sc.completeness(&expect), 1.0, "run must end complete");

    // Sender trace vs wire: every data multicast and every heartbeat
    // crossed the source site's (lossless) outbound tail exactly once.
    let stats = sc.world.stats();
    assert_eq!(sc.sender_metrics.counter("data_sent"), SENDS);
    assert_eq!(
        sc.sender_metrics.counter("data_sent"),
        stats.class_kind(SegmentClass::TailOut, "data").carried,
        "each data multicast crosses the source tail once"
    );
    assert_eq!(
        sc.sender_metrics.counter("heartbeat_sent"),
        stats.class_kind(SegmentClass::TailOut, "heartbeat").carried,
        "each heartbeat crosses the source tail once"
    );

    // Primary trace vs its log: the (lossless-path) primary logged every
    // data packet exactly once.
    assert_eq!(sc.primary_metrics.counter("packet_logged"), SENDS);

    // Receiver trace vs receiver stats and notices.
    let mut losses = 0u64;
    let mut recovered_notices = 0u64;
    let mut nacks_sent = 0u64;
    for rx in sc.all_receivers() {
        let a = sc.world.actor::<MachineActor<Receiver>>(rx);
        losses += a.machine().stats().losses_detected;
        recovered_notices += a
            .notices
            .iter()
            .filter(|(_, n)| matches!(n, Notice::Recovered { .. }))
            .count() as u64;
        nacks_sent += a.sent_unicast.get("nack").copied().unwrap_or(0);
    }
    assert!(losses > 0, "the lossy run should have exercised recovery");
    assert_eq!(sc.receiver_metrics.counter("gap_detected"), losses);
    assert_eq!(sc.receiver_metrics.counter("recovered"), recovered_notices);
    assert_eq!(sc.receiver_metrics.counter("nack_sent"), nacks_sent);
    assert_eq!(
        sc.receiver_metrics.recovery_latency().count() as u64,
        sc.receiver_metrics.counter("recovered"),
        "every Recovered event feeds the latency histogram"
    );

    // Secondary trace: receivers NACK their site secondary over the
    // lossless LAN, so every NACK sent is a NACK received (receivers
    // only fall back to the primary if the secondary stays silent, which
    // a complete run rules out). One site-multicast repair can cover
    // many receivers, so serves need not reach the recovered count —
    // but some repair traffic must exist.
    assert_eq!(sc.secondary_metrics.counter("nack_received"), nacks_sent);
    let served = sc.secondary_metrics.counter("retrans_served_unicast")
        + sc.secondary_metrics.counter("retrans_served_multicast");
    assert!(served > 0, "repairs must have been served");

    // Network registry: the world-level NetPacket events saw at least
    // the sender's multicasts plus the repair unicasts.
    assert!(sc.net_metrics.counter("net_multicast") >= SENDS);
    assert!(sc.net_metrics.counter("net_unicast") >= nacks_sent);
}

#[test]
fn trace_registries_are_deterministic_in_seed() {
    let counters = |sc: &DisScenario| {
        (
            sc.sender_metrics.counters(),
            sc.receiver_metrics.counters(),
            sc.secondary_metrics.counters(),
            sc.net_metrics.counters(),
        )
    };
    let a = lossy_run();
    let b = lossy_run();
    assert_eq!(counters(&a), counters(&b), "same seed, same trace");
}
