//! Statistical acknowledgement under churn, over the full stack: the
//! sender's `N_sl` estimate follows secondary loggers leaving the group
//! (§2.3.3), and epochs keep rolling.

use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm::sim::time::SimTime;
use lbrm_core::machine::Notice;
use lbrm_core::sender::Sender;
use lbrm_core::statack::StatAckConfig;

#[test]
fn nsl_estimate_follows_logger_departures() {
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 24,
        receivers_per_site: 1,
        statack: Some(StatAckConfig {
            k: 8,
            nsl_initial: 24.0,
            epoch_interval: Duration::from_secs(2),
            ..StatAckConfig::default()
        }),
        seed: 47,
        ..DisScenarioConfig::default()
    });
    // Keep the stream alive so heartbeats + epochs have context.
    for i in 0..20u64 {
        sc.send_at(SimTime::from_secs(1 + 3 * i), format!("u{i}"));
    }

    // First half of the run: all 24 secondaries alive.
    sc.world.run_until(SimTime::from_secs(30));
    // Two thirds of the loggers die.
    for &sec in sc.secondaries.iter().skip(8) {
        sc.world.crash(sec);
    }
    sc.world.run_until(SimTime::from_secs(90));

    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    let epochs: Vec<(SimTime, f64, usize)> = sender
        .notices
        .iter()
        .filter_map(|(at, n)| match n {
            Notice::EpochStarted {
                nsl_estimate,
                ackers,
                ..
            } => Some((*at, *nsl_estimate, *ackers)),
            _ => None,
        })
        .collect();
    assert!(
        epochs.len() >= 15,
        "expected many epochs, got {}",
        epochs.len()
    );

    // Estimate while everyone was alive: near 24.
    let before: Vec<f64> = epochs
        .iter()
        .filter(|(at, _, _)| *at < SimTime::from_secs(30))
        .map(|(_, e, _)| *e)
        .collect();
    let mean_before = before.iter().sum::<f64>() / before.len() as f64;
    assert!(
        (mean_before - 24.0).abs() < 8.0,
        "pre-churn estimate {mean_before} should be near 24"
    );

    // Estimate at the end: tracking toward 8 survivors.
    let last = epochs.last().unwrap().1;
    assert!(
        last < 16.0,
        "post-churn estimate {last} should have fallen toward 8"
    );
    assert!(last >= 4.0, "post-churn estimate {last} imploded");
}

#[test]
fn bolot_probing_bootstraps_unknown_group_size() {
    use lbrm_core::estimate::BolotConfig;
    // The sender has no idea how many loggers exist (initial guess: 2,
    // truth: 40). Bolot probing via escalating Acker Selections finds
    // the real size before normal epochs begin.
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 40,
        receivers_per_site: 1,
        statack: Some(StatAckConfig {
            k: 8,
            nsl_initial: 2.0,
            epoch_interval: Duration::from_secs(2),
            initial_probe: Some(BolotConfig {
                initial_p: 0.05,
                escalation: 4.0,
                min_responses: 6,
                rounds_to_average: 2,
            }),
            ..StatAckConfig::default()
        }),
        seed: 61,
        ..DisScenarioConfig::default()
    });
    for i in 0..10u64 {
        sc.send_at(SimTime::from_secs(1 + 3 * i), format!("u{i}"));
    }
    sc.world.run_until(SimTime::from_secs(60));

    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    let last_estimate = sender
        .notices
        .iter()
        .filter_map(|(_, n)| match n {
            Notice::EpochStarted { nsl_estimate, .. } => Some(*nsl_estimate),
            _ => None,
        })
        .next_back()
        .expect("epochs ran");
    assert!(
        (last_estimate - 40.0).abs() < 15.0,
        "probing should land near 40, got {last_estimate}"
    );
}

#[test]
fn congestion_notice_fires_when_group_goes_dark() {
    // All Designated Ackers vanish (e.g. a backbone brownout): the §5
    // congestion signal reaches the application after a streak of
    // un-acked packets.
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 10,
        receivers_per_site: 1,
        statack: Some(StatAckConfig {
            k: 10,
            nsl_initial: 10.0,
            epoch_interval: Duration::from_secs(60),
            congestion_streak: 2,
            ..StatAckConfig::default()
        }),
        seed: 67,
        ..DisScenarioConfig::default()
    });
    for i in 0..6u64 {
        sc.send_at(SimTime::from_secs(2 + i), format!("u{i}"));
    }
    // Let the epoch form, then kill every secondary before the sends.
    sc.world.run_until(SimTime::from_millis(1_500));
    for &sec in &sc.secondaries.clone() {
        sc.world.crash(sec);
    }
    sc.world.run_until(SimTime::from_secs(30));

    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    let congestion = sender.notices.iter().find_map(|(_, n)| match n {
        Notice::CongestionSuspected { streak } => Some(*streak),
        _ => None,
    });
    assert!(
        congestion.is_some_and(|s| s >= 2),
        "expected congestion signal: {congestion:?}"
    );
}

#[test]
fn acker_epochs_survive_total_acker_loss() {
    // Every Designated Acker dies mid-epoch; the ackerless epoch must
    // not wedge the sender: selection retries and data keeps flowing.
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 6,
        receivers_per_site: 1,
        statack: Some(StatAckConfig {
            k: 6,
            nsl_initial: 6.0,
            epoch_interval: Duration::from_secs(5),
            ..StatAckConfig::default()
        }),
        seed: 53,
        ..DisScenarioConfig::default()
    });
    for i in 0..10u64 {
        sc.send_at(SimTime::from_secs(1 + 2 * i), format!("u{i}"));
    }
    sc.world.run_until(SimTime::from_secs(3));
    for &sec in &sc.secondaries.clone() {
        sc.world.crash(sec);
    }
    sc.world.run_until(SimTime::from_secs(12));
    for &sec in &sc.secondaries.clone() {
        sc.world.revive(sec);
    }
    sc.world.run_until(SimTime::from_secs(60));

    // All data was delivered to the receivers regardless.
    let expect: Vec<u32> = (1..=10).collect();
    assert_eq!(sc.completeness(&expect), 1.0);

    // And epochs resumed with live ackers after the revival.
    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    let revived_epoch = sender.notices.iter().any(|(at, n)| {
        *at > SimTime::from_secs(13)
            && matches!(n, Notice::EpochStarted { ackers, .. } if *ackers > 0)
    });
    assert!(revived_epoch, "epochs must recover after ackers return");
}
