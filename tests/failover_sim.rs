//! Primary-logger failure and recovery (§2.2.3), end to end.
//!
//! The source replicates its log through the primary to two replicas.
//! Mid-stream the primary crashes. The source notices its LogAcks
//! stopped, polls the replicas' log state, promotes the most up-to-date
//! one, and brings it current from its own buffer; secondaries re-home
//! via `LocatePrimary`. A later packet lost at every site must then be
//! recovered *through the promoted replica*.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::logger::{Logger, LoggerRole};
use lbrm_core::machine::Notice;
use lbrm_core::receiver::Receiver;
use lbrm_core::sender::Sender;
use lbrm_wire::Seq;

#[test]
fn replica_promotion_and_recovery_through_new_primary() {
    // Packet #4 (t = 20 s) is lost on every site's inbound tail circuit,
    // *after* the primary has failed.
    let outage = LossModel::outage(SimTime::from_secs(20), Duration::from_millis(100));
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 3,
        receivers_per_site: 2,
        replicas: 2,
        site_params: SiteParams {
            tail_in_loss: outage,
            ..SiteParams::distant()
        },
        site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
        seed: 13,
        ..DisScenarioConfig::default()
    });
    sc.send_at(SimTime::from_secs(2), "one");
    sc.send_at(SimTime::from_secs(4), "two");
    sc.send_at(SimTime::from_secs(12), "three"); // sent while primary is dead
    sc.send_at(SimTime::from_secs(20), "four"); // lost at every site

    // Let the first two packets replicate, then kill the primary.
    sc.world.run_until(SimTime::from_secs(6));
    for &r in &sc.replicas {
        let log = sc.world.actor::<MachineActor<Logger>>(r);
        assert!(
            log.machine().has(Seq(1)) && log.machine().has(Seq(2)),
            "replication lagging"
        );
    }
    sc.world.crash(sc.primary);
    sc.world.run_until(SimTime::from_secs(60));

    // The source promoted a replica.
    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    let promoted = sender.notices.iter().find_map(|(_, n)| match n {
        Notice::Promoted { new_primary } => Some(*new_primary),
        _ => None,
    });
    let new_primary = promoted.expect("a replica must be promoted");
    assert!(sc.replicas.contains(&new_primary));
    assert_eq!(sender.machine().primary(), new_primary);
    assert_eq!(
        sender.machine().buffered(),
        0,
        "new primary must ack the stream"
    );

    // The promoted replica acts as primary and holds the full log.
    let log = sc.world.actor::<MachineActor<Logger>>(new_primary);
    assert_eq!(log.machine().role(), LoggerRole::Primary);
    for seq in 1..=4u32 {
        assert!(log.machine().has(Seq(seq)), "new primary missing #{seq}");
    }

    // Every receiver ended complete — #4's recovery flowed through the
    // secondaries to the *new* primary.
    assert_eq!(sc.completeness(&[1, 2, 3, 4]), 1.0);
    let recovered: u64 = sc
        .all_receivers()
        .iter()
        .map(|&rx| {
            sc.world
                .actor::<MachineActor<Receiver>>(rx)
                .machine()
                .stats()
                .recovered
        })
        .sum();
    assert!(
        recovered >= 6,
        "all six receivers should have recovered #4, got {recovered}"
    );

    // Secondaries re-homed their parent pointer.
    for &sec in &sc.secondaries {
        let l = sc.world.actor::<MachineActor<Logger>>(sec);
        assert_eq!(
            l.machine().parent(),
            new_primary,
            "secondary {sec} not re-homed"
        );
    }
}

/// Without replicas the source keeps retrying the dead primary and
/// reports it unresponsive, but the stream itself (multicast) continues.
#[test]
fn primary_loss_without_replicas_degrades_gracefully() {
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 2,
        receivers_per_site: 2,
        replicas: 0,
        seed: 5,
        ..DisScenarioConfig::default()
    });
    sc.send_at(SimTime::from_secs(2), "one");
    sc.send_at(SimTime::from_secs(8), "two");
    sc.world.run_until(SimTime::from_secs(4));
    sc.world.crash(sc.primary);
    sc.world.run_until(SimTime::from_secs(40));

    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    assert!(sender
        .notices
        .iter()
        .any(|(_, n)| matches!(n, Notice::PrimaryUnresponsive { .. })));
    // #2 was sent after the crash: never log-acked, so retained.
    assert_eq!(sender.machine().buffered(), 1);
    // But dissemination is unaffected.
    assert_eq!(sc.completeness(&[1, 2]), 1.0);
}
