//! Reordering tolerance: with heavy delivery jitter, packets arrive out
//! of order constantly. The receiver's NACK delay must absorb the
//! inversions — late originals cancel pending recoveries — so almost no
//! spurious retransmission requests reach the loggers.

use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm::sim::stats::SegmentClass;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::receiver::Receiver;

fn run(nack_delay: Duration, seed: u64) -> (u64, u64, f64) {
    // 25 ms jitter at every receiver site, data packets 10 ms apart:
    // adjacent packets routinely swap.
    let site_params = SiteParams {
        jitter: Duration::from_millis(25),
        ..SiteParams::distant()
    };
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 4,
        receivers_per_site: 4,
        site_params,
        receiver_nack_delay: nack_delay,
        seed,
        ..DisScenarioConfig::default()
    });
    for i in 0..50u64 {
        sc.send_at(SimTime::from_millis(1_000 + 10 * i), format!("u{i}"));
    }
    sc.world.run_until(SimTime::from_secs(30));

    let lan_nacks = sc
        .world
        .stats()
        .class_kind(SegmentClass::Lan, "nack")
        .carried;
    let spurious_recoveries: u64 = sc
        .all_receivers()
        .iter()
        .map(|&rx| {
            sc.world
                .actor::<MachineActor<Receiver>>(rx)
                .machine()
                .stats()
                .recovered
        })
        .sum();
    let expect: Vec<u32> = (1..=50).collect();
    (lan_nacks, spurious_recoveries, sc.completeness(&expect))
}

#[test]
fn nack_delay_absorbs_reordering() {
    // With a reasonable delay (30 ms > jitter), no NACK is ever sent:
    // every "gap" is a reordering that heals on its own.
    let (nacks, recovered, completeness) = run(Duration::from_millis(30), 7);
    assert_eq!(completeness, 1.0);
    assert_eq!(nacks, 0, "reorderings must not trigger NACKs");
    assert_eq!(recovered, 0);
}

#[test]
fn zero_nack_delay_causes_spurious_requests() {
    // Ablation: with no reorder tolerance, receivers fire NACKs at every
    // inversion — wasted traffic (though still harmless duplicates).
    let (nacks, _, completeness) = run(Duration::ZERO, 7);
    assert_eq!(completeness, 1.0);
    assert!(nacks > 20, "expected many spurious NACKs, saw {nacks}");
}
