//! Store-backend differential: the segmented-slab `LogStore` must
//! replay the `BTreeMap` reference backend *byte for byte* at scenario
//! scale. The seeded DIS and lossy-WAN scenarios (the same ones the
//! event-queue differential pins) are executed under
//! `LBRM_LOG_STORE ∈ {slab, btree}` legs; everything observable —
//! wire-level `NetStats`, per-receiver delivery transcripts, the
//! serialized JSONL trace stream, and metrics registries — must be
//! identical across backends. This is what lets the slab be the default
//! hot tier of every logger's packet log: it may only change how fast a
//! NACK is answered, never which bytes answer it.

use std::sync::Arc;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::logstore::StoreBackend;
use lbrm_core::trace::{CollectorSink, TraceSink};

const SENDS: u64 = 20;

/// Everything a run exposes, flattened to comparable (and mostly
/// byte-level) form.
struct RunFingerprint {
    trace_jsonl: String,
    stats: lbrm::sim::stats::NetStats,
    deliveries: Vec<(u64, Vec<u32>)>,
    completeness: f64,
    counters: Vec<std::collections::BTreeMap<&'static str, u64>>,
}

fn fingerprint(config: DisScenarioConfig, backend: StoreBackend) -> RunFingerprint {
    let collector = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            log_store: Some(backend),
            ..config
        },
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    for i in 0..SENDS {
        sc.send_at(SimTime::from_millis(1_000 + 400 * i), format!("update-{i}"));
    }
    sc.world.run_until(SimTime::from_secs(60));

    let trace_jsonl = collector
        .take()
        .iter()
        .map(|r| r.event.to_json(r.at_nanos, r.host) + "\n")
        .collect::<String>();

    let deliveries = sc
        .all_receivers()
        .into_iter()
        .map(|rx| (rx.raw(), sc.delivered(rx)))
        .collect();
    let expect: Vec<u32> = (1..=SENDS as u32).collect();
    RunFingerprint {
        trace_jsonl,
        stats: sc.world.stats().clone(),
        deliveries,
        completeness: sc.completeness(&expect),
        counters: vec![
            sc.sender_metrics.counters(),
            sc.primary_metrics.counters(),
            sc.secondary_metrics.counters(),
            sc.receiver_metrics.counters(),
            sc.net_metrics.counters(),
        ],
    }
}

fn assert_backend_invariant(config: DisScenarioConfig, label: &str) {
    let slab = fingerprint(config.clone(), StoreBackend::Slab);
    assert!(
        !slab.trace_jsonl.is_empty(),
        "{label}: differential must compare real traffic"
    );
    let btree = fingerprint(config, StoreBackend::Btree);
    assert_eq!(
        slab.trace_jsonl, btree.trace_jsonl,
        "{label}: JSONL trace bytes must match across store backends"
    );
    assert_eq!(slab.stats, btree.stats, "{label}: NetStats must match");
    assert_eq!(
        slab.deliveries, btree.deliveries,
        "{label}: per-receiver deliveries must match"
    );
    assert_eq!(slab.completeness, btree.completeness, "{label}");
    assert_eq!(
        slab.counters, btree.counters,
        "{label}: metrics registries must match"
    );
}

#[test]
fn dis_scenario_is_store_backend_invariant() {
    assert_backend_invariant(
        DisScenarioConfig {
            sites: 6,
            receivers_per_site: 4,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.08),
                ..SiteParams::distant()
            },
            receiver_nack_delay: std::time::Duration::from_millis(5),
            seed: 4242,
            ..DisScenarioConfig::default()
        },
        "DIS",
    );
}

#[test]
fn lossy_wan_is_store_backend_invariant() {
    // Backbone loss on top of tail loss: recovery cascades through
    // secondaries and the primary, so repair serving — the path the slab
    // rebuilt — carries real traffic in both directions.
    assert_backend_invariant(
        DisScenarioConfig {
            sites: 8,
            receivers_per_site: 5,
            secondary_loggers: true,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.12),
                tail_out_loss: LossModel::rate(0.04),
                ..SiteParams::distant()
            },
            seed: 90210,
            ..DisScenarioConfig::default()
        },
        "lossy WAN",
    );
}

#[test]
fn count_retention_is_store_backend_invariant() {
    // Bounded retention makes pruning continuous, so the slab's
    // whole-segment drops and head trims run against the btree's
    // pop_first loop under live protocol traffic.
    assert_backend_invariant(
        DisScenarioConfig {
            sites: 6,
            receivers_per_site: 4,
            retention: lbrm_core::logstore::Retention::Count(8),
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.10),
                ..SiteParams::distant()
            },
            receiver_nack_delay: std::time::Duration::from_millis(5),
            seed: 777,
            ..DisScenarioConfig::default()
        },
        "count retention",
    );
}
