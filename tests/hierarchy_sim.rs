//! The §7 multi-level logging hierarchy: regional loggers between site
//! secondaries and the primary further concentrate NACK traffic.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm::sim::loss::LossModel;
use lbrm::sim::stats::SegmentClass;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;

/// Runs the everyone-loses-a-packet scenario and returns the number of
/// NACKs that reached the primary's site (its tail-in crossings).
fn nacks_at_primary(levels: u8, seed: u64) -> (u64, f64) {
    let outage = LossModel::outage(SimTime::from_secs(5), Duration::from_millis(100));
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 12,
        receivers_per_site: 3,
        secondary_loggers: levels >= 2,
        regional_fanout: (levels >= 3).then_some(4),
        site_params: SiteParams {
            tail_in_loss: outage,
            ..SiteParams::distant()
        },
        site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
        seed,
        ..DisScenarioConfig::default()
    });
    sc.send_at(SimTime::from_secs(1), "one");
    sc.send_at(SimTime::from_secs(5), "two"); // lost at every site
    sc.send_at(SimTime::from_secs(9), "three");
    sc.world.run_until(SimTime::from_secs(40));

    let source_site = sc.world.topology().site_of(sc.primary);
    let nacks = sc
        .world
        .stats()
        .site_tail(source_site, SegmentClass::TailIn, "nack")
        .carried;
    let completeness = sc.completeness(&[1, 2, 3]);
    (nacks, completeness)
}

#[test]
fn each_hierarchy_level_concentrates_primary_load() {
    let (centralized, c1) = nacks_at_primary(1, 19);
    let (two_level, c2) = nacks_at_primary(2, 19);
    let (three_level, c3) = nacks_at_primary(3, 19);

    assert_eq!(c1, 1.0);
    assert_eq!(c2, 1.0);
    assert_eq!(c3, 1.0);

    // 12 sites × 3 receivers: 36 NACKs centralized, 12 with site
    // secondaries, 3 with regional loggers (fanout 4).
    assert_eq!(centralized, 36, "one NACK per receiver");
    assert_eq!(two_level, 12, "one NACK per site");
    assert_eq!(three_level, 3, "one NACK per region");
}

#[test]
fn regional_hierarchy_recovers_through_all_levels() {
    // The regional logger itself missed the packet (its site's tail was
    // down): receiver → site secondary → regional → primary, four levels
    // of store-and-forward recovery.
    let (nacks, completeness) = nacks_at_primary(3, 23);
    assert_eq!(completeness, 1.0);
    assert!(nacks >= 1);
}
