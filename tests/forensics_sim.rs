//! Recovery forensics end-to-end: on seeded lossy DIS runs, the trace
//! analyzer's causal timelines must match the wire-level ground truth —
//! every gap the receivers detected closes, every repair is attributed
//! to the server that actually sent it, and the per-stage latencies
//! telescope exactly to the recovery histogram the receivers reported.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::receiver::Receiver;
use lbrm_core::trace::analyze::{analyze, parse_json_lines, AnalyzeConfig, RecoveryOutcome};
use lbrm_core::trace::{CollectorSink, TraceSink};

const SENDS: u64 = 20;

fn lossy_run() -> (DisScenario, Arc<CollectorSink>) {
    let collector = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            sites: 6,
            receivers_per_site: 4,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.08),
                ..SiteParams::distant()
            },
            receiver_nack_delay: Duration::from_millis(5),
            seed: 4242,
            ..DisScenarioConfig::default()
        },
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    for i in 0..SENDS {
        sc.send_at(SimTime::from_millis(1_000 + 400 * i), format!("update-{i}"));
    }
    sc.world.run_until(SimTime::from_secs(60));
    (sc, collector)
}

#[test]
fn forensic_timelines_match_wire_ground_truth() {
    let (sc, collector) = lossy_run();
    let expect: Vec<u32> = (1..=SENDS as u32).collect();
    assert_eq!(sc.completeness(&expect), 1.0, "run must end complete");

    let records = collector.take();
    let report = analyze(&records, &AnalyzeConfig::default());

    // Every detected gap closed: a complete run has zero unrecovered
    // (and zero abandoned — RecoverAll never gives up) timelines.
    assert!(report.is_clean(), "anomalies: {:?}", report.anomalies);
    assert_eq!(report.unrecovered, 0);
    assert_eq!(report.abandoned, 0);
    assert!(report.recovered > 0, "lossy run must exercise recovery");

    // Timeline count matches the receivers' own loss bookkeeping:
    // one timeline per recovery the machines reported.
    let mut machine_recoveries = 0u64;
    for rx in sc.all_receivers() {
        let a = sc.world.actor::<MachineActor<Receiver>>(rx);
        machine_recoveries += a.machine().stats().recovered;
    }
    assert_eq!(report.recovered as u64, machine_recoveries);
    assert_eq!(
        report.recovered as u64,
        sc.receiver_metrics.counter("recovered")
    );

    // Stage-latency consistency: detection + request + serve + return
    // telescopes exactly to the end-to-end latency on every recovered
    // timeline, and the analyzer's total histogram is sample-for-sample
    // the receivers' recovery_latency histogram.
    assert_eq!(report.telescoping, report.recovered);
    assert_eq!(
        report.total.samples(),
        sc.receiver_metrics.recovery_latency().samples(),
        "analyzer total distribution must equal the receivers' histogram"
    );

    // Repair attribution: every repair came from a known server, and in
    // a distributed run with lossless LANs the site secondaries serve
    // them all.
    assert!(
        !report.sources.contains_key("unknown"),
        "unattributed repairs: {:?}",
        report.sources
    );
    let attributed: u64 = report.sources.values().sum();
    assert_eq!(attributed, report.recovered as u64);
    assert!(
        report.sources.contains_key("secondary"),
        "local loss must recover from site secondaries: {:?}",
        report.sources
    );

    // The fan-in at the primary stayed within the paper's one-request-
    // per-site bound (secondaries absorb receiver NACKs).
    assert!(report.max_nack_fan_in <= sc.secondaries.len() as u64 + 2);
}

#[test]
fn jsonl_replay_reproduces_the_live_report() {
    let (_sc, collector) = lossy_run();
    let records = collector.take();
    let live = analyze(&records, &AnalyzeConfig::default());

    // Serialize exactly like JsonLinesSink, replay, re-analyze.
    let text: String = records
        .iter()
        .map(|r| r.event.to_json(r.at_nanos, r.host) + "\n")
        .collect();
    let (replayed, skipped) = parse_json_lines(&text);
    assert_eq!(skipped, 0, "every emitted line must parse");
    assert_eq!(replayed.len(), records.len());
    let re = analyze(&replayed, &AnalyzeConfig::default());

    assert_eq!(re.to_json(), live.to_json(), "replay must be lossless");
    assert_eq!(re.timelines.len(), live.timelines.len());
}

#[test]
fn final_packet_loss_is_detected_by_heartbeat_and_attributed() {
    // The last update is lost on one site's inbound tail. With no later
    // data packet to reveal the gap, detection must come from the
    // sender's variable heartbeats (§2.1) — and §7 repeat-payload
    // heartbeats or a logger retransmission must still close the gap.
    let last_send_ms = 1_000 + 400 * (SENDS - 1);
    let collector = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            sites: 3,
            receivers_per_site: 4,
            site_params_for: Some(Arc::new(move |i| {
                if i == 0 {
                    SiteParams {
                        tail_in_loss: LossModel::outage(
                            SimTime::from_millis(last_send_ms),
                            Duration::from_millis(120),
                        ),
                        ..SiteParams::distant()
                    }
                } else {
                    SiteParams::distant()
                }
            })),
            receiver_nack_delay: Duration::from_millis(5),
            seed: 9,
            ..DisScenarioConfig::default()
        },
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    for i in 0..SENDS {
        sc.send_at(SimTime::from_millis(1_000 + 400 * i), format!("update-{i}"));
    }
    sc.world.run_until(SimTime::from_secs(60));
    let expect: Vec<u32> = (1..=SENDS as u32).collect();
    assert_eq!(sc.completeness(&expect), 1.0);

    let report = analyze(&collector.take(), &AnalyzeConfig::default());
    assert!(report.is_clean(), "anomalies: {:?}", report.anomalies);

    // The victims' timelines for the final seq: detected strictly after
    // the (lost) original was sent — by heartbeat, since no later data
    // existed — and recovered with a known source.
    let victims: Vec<_> = report
        .timelines
        .iter()
        .filter(|t| t.seq.raw() == SENDS as u32)
        .collect();
    assert!(
        !victims.is_empty(),
        "site-wide tail loss of the final packet must open timelines"
    );
    for t in &victims {
        assert_eq!(t.outcome, RecoveryOutcome::Recovered);
        let sent = t.sent_at_nanos.expect("original send must be on record");
        assert!(
            t.detected_at_nanos > sent,
            "detection can only follow the lost send"
        );
        assert!(
            t.source.label() != "unknown",
            "repair must be attributed: {}",
            t.render()
        );
    }
}
