//! Bundle-mode differential: `LBRM_BUNDLE` may only change how packets
//! are *framed* into datagrams, never which packets exist. The
//! simulator guarantees this by construction — both framing ledgers are
//! always metered and the mode only selects which one
//! `BundleStats::datagrams()` reports — and this test pins that
//! guarantee at scenario scale: the seeded DIS and lossy-WAN scenarios
//! (the same ones the event-queue and log-store differentials use) must
//! produce byte-identical JSONL traces, `NetStats`, per-receiver
//! delivery transcripts, and metrics registries under
//! `LBRM_BUNDLE ∈ {on, off}` legs, while the bundle ledger itself shows
//! real coalescing (fewer frames than packets, mode-dependent datagram
//! counts).

use std::sync::Arc;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm::sim::loss::LossModel;
use lbrm::sim::stats::BundleStats;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::trace::{CollectorSink, TraceSink};
use lbrm_wire::BundleMode;

const SENDS: u64 = 20;

/// Everything a run exposes, flattened to comparable (and mostly
/// byte-level) form.
struct RunFingerprint {
    trace_jsonl: String,
    stats: lbrm::sim::stats::NetStats,
    deliveries: Vec<(u64, Vec<u32>)>,
    completeness: f64,
    counters: Vec<std::collections::BTreeMap<&'static str, u64>>,
    bundle: BundleStats,
}

fn fingerprint(config: DisScenarioConfig, mode: BundleMode) -> RunFingerprint {
    let collector = Arc::new(CollectorSink::default());
    let mut sc =
        DisScenario::build_with_sink(config, Some(collector.clone() as Arc<dyn TraceSink>));
    // Env-independent leg selection, mirroring the log-store
    // differential's explicit backend: the mode must be a pure view
    // switch over one identical run.
    sc.world.set_bundle_mode(mode);
    // DIS-style ticks: a burst of entity updates per frame boundary.
    // Same-instant sends are what PDU bundling coalesces, on the data
    // path directly and on the repair path whenever one NACK's span is
    // answered in a run.
    for i in 0..SENDS {
        sc.send_at(
            SimTime::from_millis(1_000 + 400 * (i / 4)),
            format!("update-{i}"),
        );
    }
    sc.world.run_until(SimTime::from_secs(60));

    let trace_jsonl = collector
        .take()
        .iter()
        .map(|r| r.event.to_json(r.at_nanos, r.host) + "\n")
        .collect::<String>();

    let deliveries = sc
        .all_receivers()
        .into_iter()
        .map(|rx| (rx.raw(), sc.delivered(rx)))
        .collect();
    let expect: Vec<u32> = (1..=SENDS as u32).collect();
    RunFingerprint {
        trace_jsonl,
        stats: sc.world.stats().clone(),
        deliveries,
        completeness: sc.completeness(&expect),
        counters: vec![
            sc.sender_metrics.counters(),
            sc.primary_metrics.counters(),
            sc.secondary_metrics.counters(),
            sc.receiver_metrics.counters(),
            sc.net_metrics.counters(),
        ],
        bundle: sc.world.bundle_stats(),
    }
}

fn assert_bundle_invariant(config: DisScenarioConfig, label: &str) {
    let off = fingerprint(config.clone(), BundleMode::Off);
    assert!(
        !off.trace_jsonl.is_empty(),
        "{label}: differential must compare real traffic"
    );
    let on = fingerprint(config, BundleMode::On);

    // The run itself is identical: bundling is pure framing.
    assert_eq!(
        off.trace_jsonl, on.trace_jsonl,
        "{label}: JSONL trace bytes must match across bundle modes"
    );
    assert_eq!(off.stats, on.stats, "{label}: NetStats must match");
    assert_eq!(
        off.deliveries, on.deliveries,
        "{label}: per-receiver deliveries must match"
    );
    assert_eq!(off.completeness, on.completeness, "{label}");
    assert_eq!(
        off.counters, on.counters,
        "{label}: metrics registries must match"
    );

    // The framing ledger is the only thing the mode changes, and it
    // reflects real coalescing on these scenarios.
    assert_eq!(off.bundle.mode, BundleMode::Off, "{label}");
    assert_eq!(on.bundle.mode, BundleMode::On, "{label}");
    assert_eq!(
        off.bundle.packets, on.bundle.packets,
        "{label}: both legs meter the same packet stream"
    );
    assert_eq!(off.bundle.frames, on.bundle.frames, "{label}");
    assert_eq!(off.bundle.per_kind, on.bundle.per_kind, "{label}");
    assert_eq!(
        off.bundle.datagrams(),
        off.bundle.packets,
        "{label}: off-leg datagrams = one per packet"
    );
    assert_eq!(
        on.bundle.datagrams(),
        on.bundle.frames,
        "{label}: on-leg datagrams = one per frame"
    );
    assert!(
        on.bundle.frames < on.bundle.packets,
        "{label}: bundling must coalesce something \
         (frames {} vs packets {})",
        on.bundle.frames,
        on.bundle.packets
    );
    assert!(
        on.bundle.wire_bytes()
            <= off.bundle.wire_bytes() + 8 * on.bundle.frames + 2 * on.bundle.packets,
        "{label}: bundled bytes = unbundled + bounded framing overhead"
    );
}

#[test]
fn dis_scenario_is_bundle_mode_invariant() {
    assert_bundle_invariant(
        DisScenarioConfig {
            sites: 6,
            receivers_per_site: 4,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.08),
                ..SiteParams::distant()
            },
            receiver_nack_delay: std::time::Duration::from_millis(5),
            seed: 4242,
            ..DisScenarioConfig::default()
        },
        "DIS",
    );
}

#[test]
fn lossy_wan_is_bundle_mode_invariant() {
    // Backbone loss on top of tail loss: recovery cascades through
    // secondaries and the primary, so the meter sees dense same-instant
    // repair runs — the traffic bundling exists for.
    assert_bundle_invariant(
        DisScenarioConfig {
            sites: 8,
            receivers_per_site: 5,
            secondary_loggers: true,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.12),
                tail_out_loss: LossModel::rate(0.04),
                ..SiteParams::distant()
            },
            seed: 90210,
            ..DisScenarioConfig::default()
        },
        "lossy WAN",
    );
}
