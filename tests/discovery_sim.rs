//! Logger discovery (§2.2.1): expanding-ring scoped multicast search.

use lbrm::harness::MachineActor;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::{SiteParams, TopologyBuilder};
use lbrm::sim::world::World;
use lbrm_core::discovery::{DiscoveryClient, DiscoveryConfig};
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::machine::Notice;
use lbrm_wire::{GroupId, SourceId, TtlScope};

const GROUP: GroupId = GroupId(1);
const SRC: SourceId = SourceId(1);

#[test]
fn finds_site_local_logger_at_site_scope() {
    let mut b = TopologyBuilder::new();
    let hq = b.site(SiteParams::distant());
    let src_host = b.host(hq);
    let primary = b.host(hq);
    let site = b.site(SiteParams::distant());
    let secondary = b.host(site);
    let client_host = b.host(site);
    let mut world = World::new(b.build(), 3);

    world.add_actor(
        primary,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(GROUP, SRC, primary, src_host)),
            vec![GROUP],
        ),
    );
    world.add_actor(
        secondary,
        MachineActor::new(
            Logger::new(LoggerConfig::secondary(
                GROUP, SRC, secondary, primary, src_host,
            )),
            vec![GROUP],
        ),
    );
    world.add_actor(
        client_host,
        MachineActor::new(
            DiscoveryClient::new(DiscoveryConfig::new(GROUP, client_host)),
            vec![GROUP],
        ),
    );
    world.run_until(SimTime::from_secs(5));

    let client = world.actor::<MachineActor<DiscoveryClient>>(client_host);
    let (logger, level, scope) = client.machine().result().expect("discovery must succeed");
    assert_eq!(logger, secondary, "nearest logger is the site secondary");
    assert_eq!(level, 1);
    assert_eq!(scope, TtlScope::Site, "found without leaving the site");
    assert!(client
        .notices
        .iter()
        .any(|(_, n)| matches!(n, Notice::LoggerDiscovered { .. })));
}

#[test]
fn widens_to_global_when_site_is_bare() {
    // No secondary at the client's site: the search must escalate past
    // Site and Region scope and find the primary globally.
    let mut b = TopologyBuilder::new();
    let hq = b.site(SiteParams {
        region: 1,
        ..SiteParams::distant()
    });
    let src_host = b.host(hq);
    let primary = b.host(hq);
    let site = b.site(SiteParams {
        region: 2,
        ..SiteParams::distant()
    });
    let client_host = b.host(site);
    let mut world = World::new(b.build(), 4);

    world.add_actor(
        primary,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(GROUP, SRC, primary, src_host)),
            vec![GROUP],
        ),
    );
    world.add_actor(
        client_host,
        MachineActor::new(
            DiscoveryClient::new(DiscoveryConfig::new(GROUP, client_host)),
            vec![GROUP],
        ),
    );
    world.run_until(SimTime::from_secs(10));

    let client = world.actor::<MachineActor<DiscoveryClient>>(client_host);
    let (logger, level, scope) = client.machine().result().expect("discovery must succeed");
    assert_eq!(logger, primary);
    assert_eq!(level, 0);
    assert_eq!(scope, TtlScope::Global);
}

#[test]
fn reports_failure_when_no_logger_exists() {
    let mut b = TopologyBuilder::new();
    let site = b.site(SiteParams::distant());
    let client_host = b.host(site);
    let mut world = World::new(b.build(), 5);
    world.add_actor(
        client_host,
        MachineActor::new(
            DiscoveryClient::new(DiscoveryConfig::new(GROUP, client_host)),
            vec![GROUP],
        ),
    );
    world.run_until(SimTime::from_secs(10));
    let client = world.actor::<MachineActor<DiscoveryClient>>(client_host);
    assert!(client.machine().finished());
    assert!(client.machine().result().is_none());
    assert!(client
        .notices
        .iter()
        .any(|(_, n)| matches!(n, Notice::DiscoveryFailed)));
}
