//! The §7 retransmission-channel extension, end to end: the sender
//! repeats every packet on a second multicast group with heartbeat-style
//! backoff; a receiver that detects loss *joins the channel* instead of
//! NACKing, recovers, and leaves.

use std::time::Duration;

use bytes::Bytes;
use lbrm::harness::MachineActor;
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::{SiteParams, TopologyBuilder};
use lbrm::sim::world::World;
use lbrm_core::machine::{Action, Actions, Machine, Notice};
use lbrm_core::receiver::{Receiver, ReceiverConfig};
use lbrm_core::retrans_channel::{RetransChannelConfig, RetransChannelSender, RetransSubscriber};
use lbrm_core::sender::{Sender, SenderConfig};
use lbrm_core::time::Time;
use lbrm_wire::{GroupId, HostId, Packet, SourceId};

const DATA_GROUP: GroupId = GroupId(1);
const RETRANS_GROUP: GroupId = GroupId(2);
const SRC: SourceId = SourceId(1);

/// Sender plus the retransmission-channel shadow, as one machine.
struct ChannelSender {
    sender: Sender,
    channel: RetransChannelSender,
}

impl ChannelSender {
    fn send(&mut self, now: Time, payload: Bytes, out: &mut Actions) {
        let seq = self.sender.next_seq();
        self.sender.send(now, payload.clone(), out);
        self.channel.on_data_sent(now, seq, payload);
    }
}

impl Machine for ChannelSender {
    fn on_start(&mut self, now: Time, out: &mut Actions) {
        self.sender.on_start(now, out);
    }
    fn on_packet(&mut self, now: Time, from: HostId, packet: Packet, out: &mut Actions) {
        self.sender.on_packet(now, from, packet, out);
    }
    fn poll(&mut self, now: Time, out: &mut Actions) {
        self.sender.poll(now, out);
        self.channel.poll(now, out);
    }
    fn next_deadline(&self) -> Option<Time> {
        lbrm_core::time::earliest(self.sender.next_deadline(), self.channel.next_deadline())
    }
}

/// Receiver that subscribes to the retransmission channel on loss
/// instead of NACKing anyone.
struct ChannelReceiver {
    receiver: Receiver,
    subscriber: RetransSubscriber,
}

impl Machine for ChannelReceiver {
    fn on_packet(&mut self, now: Time, from: HostId, packet: Packet, out: &mut Actions) {
        // Retransmission-channel packets carry the retrans group id;
        // rewrite to the data group for the inner receiver.
        let packet = match packet {
            Packet::Retrans {
                group,
                source,
                seq,
                payload,
            } if group == RETRANS_GROUP => Packet::Retrans {
                group: DATA_GROUP,
                source,
                seq,
                payload,
            },
            p => p,
        };
        let mut inner = Actions::new();
        self.receiver.on_packet(now, from, packet, &mut inner);
        for a in inner {
            if let Action::Notice(n) = &a {
                self.subscriber.on_notice(n, out);
            }
            out.push(a);
        }
    }
    fn poll(&mut self, now: Time, out: &mut Actions) {
        let mut inner = Actions::new();
        self.receiver.poll(now, &mut inner);
        for a in inner {
            match &a {
                Action::Notice(n) => {
                    self.subscriber.on_notice(n, out);
                    out.push(a);
                }
                // Suppress NACKs entirely: recovery is channel-driven.
                Action::Unicast {
                    packet: Packet::Nack { .. },
                    ..
                } => {}
                _ => out.push(a),
            }
        }
    }
    fn next_deadline(&self) -> Option<Time> {
        self.receiver.next_deadline()
    }
}

#[test]
fn loss_recovered_by_subscribing_to_retrans_channel() {
    let mut b = TopologyBuilder::new();
    let hq = b.site(SiteParams::distant());
    let src_host = b.host(hq);
    let log_host = b.host(hq);
    // The receiver's site drops the second packet.
    let site = b.site(SiteParams {
        tail_in_loss: LossModel::outage(SimTime::from_millis(4_950), Duration::from_millis(200)),
        ..SiteParams::distant()
    });
    let rx_host = b.host(site);
    let mut world = World::new(b.build(), 8);

    world.add_actor(
        log_host,
        MachineActor::new(
            lbrm_core::logger::Logger::new(lbrm_core::logger::LoggerConfig::primary(
                DATA_GROUP, SRC, log_host, src_host,
            )),
            vec![DATA_GROUP],
        ),
    );

    let mut cfg = ReceiverConfig::new(DATA_GROUP, SRC, rx_host, src_host, vec![log_host]);
    cfg.nack_delay = Duration::from_millis(10);
    world.add_actor(
        rx_host,
        MachineActor::new(
            ChannelReceiver {
                receiver: Receiver::new(cfg),
                subscriber: RetransSubscriber::new(RETRANS_GROUP),
            },
            vec![DATA_GROUP],
        ),
    );

    let mut actor = MachineActor::new(
        ChannelSender {
            sender: Sender::new(SenderConfig::new(DATA_GROUP, SRC, src_host, log_host)),
            channel: RetransChannelSender::new(RetransChannelConfig::new(RETRANS_GROUP, SRC)),
        },
        vec![],
    );
    for (i, at) in [1u64, 5, 9].iter().enumerate() {
        let payload = Bytes::from(format!("u{i}"));
        actor.schedule(
            SimTime::from_secs(*at),
            move |s: &mut ChannelSender, now, out| {
                s.send(now, payload.clone(), out);
            },
        );
    }
    world.add_actor(src_host, actor);

    world.run_until(SimTime::from_secs(30));

    let rx = world.actor::<MachineActor<ChannelReceiver>>(rx_host);
    let mut seqs: Vec<(u32, bool)> = rx
        .deliveries
        .iter()
        .map(|(_, d)| (d.seq.raw(), d.recovered))
        .collect();
    seqs.sort();
    assert_eq!(seqs, vec![(1, false), (2, true), (3, false)], "{seqs:?}");
    // Recovery came from the channel, not a NACK: zero NACKs anywhere.
    assert_eq!(
        world
            .stats()
            .class_kind(lbrm::sim::SegmentClass::Wan, "nack")
            .carried,
        0,
        "channel recovery must not NACK"
    );
    // The subscriber joined and then left the channel.
    assert!(
        !rx.machine().subscriber.joined(),
        "subscriber must leave after recovery"
    );
    assert!(rx
        .notices
        .iter()
        .any(|(_, n)| matches!(n, Notice::Recovered { .. })));
}
