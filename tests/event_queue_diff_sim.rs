//! Backend × shard-count differential: the timer-wheel event queue must
//! replay the binary-heap reference backend *byte for byte*, and the
//! sharded parallel world must replay the serial one just as exactly.
//! Seeded lossy scenarios are executed under every
//! `{wheel, heap} × {1, 2, 8 shards}` leg; everything observable —
//! wire-level `NetStats`, per-receiver delivery transcripts, the
//! serialized JSONL trace stream, and metrics registries — must be
//! identical across all legs. (The queue-depth high-water mark is only
//! comparable between runs with equal shard counts: a split queue peaks
//! lower than a global one.) This is what lets the wheel be the default
//! backend and `LBRM_SIM_SHARDS` be a pure wall-clock knob: neither may
//! change a single byte of any result.

use std::sync::Arc;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm::sim::loss::LossModel;
use lbrm::sim::queue::QueueBackend;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::trace::{CollectorSink, TraceSink};

const SENDS: u64 = 20;

/// Everything a run exposes, flattened to comparable (and mostly
/// byte-level) form.
struct RunFingerprint {
    trace_jsonl: String,
    stats: lbrm::sim::stats::NetStats,
    deliveries: Vec<(u64, Vec<u32>)>,
    completeness: f64,
    queue_depth_max: usize,
    counters: Vec<std::collections::BTreeMap<&'static str, u64>>,
}

fn fingerprint(
    config: DisScenarioConfig,
    backend: QueueBackend,
    shards: usize,
    horizon: SimTime,
    sends: u64,
) -> RunFingerprint {
    let collector = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            queue_backend: Some(backend),
            shards: Some(shards),
            ..config
        },
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    assert_eq!(sc.world.queue_backend(), backend);
    for i in 0..sends {
        sc.send_at(SimTime::from_millis(1_000 + 400 * i), format!("update-{i}"));
    }
    sc.world.run_until(horizon);

    // Serialize the trace exactly as a JsonLinesSink capture would land
    // on disk: identical protocol behavior must give identical bytes.
    let trace_jsonl = collector
        .take()
        .iter()
        .map(|r| r.event.to_json(r.at_nanos, r.host) + "\n")
        .collect::<String>();

    let deliveries = sc
        .all_receivers()
        .into_iter()
        .map(|rx| (rx.raw(), sc.delivered(rx)))
        .collect();
    let expect: Vec<u32> = (1..=sends as u32).collect();
    RunFingerprint {
        trace_jsonl,
        stats: sc.world.stats().clone(),
        deliveries,
        completeness: sc.completeness(&expect),
        queue_depth_max: sc.world.queue_depth_max(),
        counters: vec![
            sc.sender_metrics.counters(),
            sc.primary_metrics.counters(),
            sc.secondary_metrics.counters(),
            sc.receiver_metrics.counters(),
            sc.net_metrics.counters(),
        ],
    }
}

fn assert_equal(a: &RunFingerprint, b: &RunFingerprint, label: &str, compare_depth: bool) {
    assert_eq!(
        a.trace_jsonl, b.trace_jsonl,
        "{label}: JSONL trace bytes must match"
    );
    assert_eq!(a.stats, b.stats, "{label}: NetStats must match");
    assert_eq!(
        a.deliveries, b.deliveries,
        "{label}: per-receiver deliveries must match"
    );
    assert_eq!(a.completeness, b.completeness, "{label}");
    if compare_depth {
        assert_eq!(
            a.queue_depth_max, b.queue_depth_max,
            "{label}: depth gauge must match"
        );
    }
    assert_eq!(
        a.counters, b.counters,
        "{label}: metrics registries must match"
    );
}

/// Runs `config` under the full `{wheel, heap} × {1, 2, 8}` matrix and
/// asserts every leg is byte-identical to the serial wheel run.
fn assert_matrix_invariant(config: DisScenarioConfig, label: &str) {
    let horizon = SimTime::from_secs(60);
    let base = fingerprint(config.clone(), QueueBackend::Wheel, 1, horizon, SENDS);
    assert!(
        !base.trace_jsonl.is_empty(),
        "{label}: differential must compare real traffic"
    );
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        for shards in [1usize, 2, 8] {
            if (backend, shards) == (QueueBackend::Wheel, 1) {
                continue;
            }
            let leg = fingerprint(config.clone(), backend, shards, horizon, SENDS);
            assert_equal(
                &base,
                &leg,
                &format!("{label} [{backend:?} x{shards}]"),
                shards == 1,
            );
        }
    }
    // The depth gauge is still backend-invariant at equal shard counts.
    let w2 = fingerprint(config.clone(), QueueBackend::Wheel, 2, horizon, SENDS);
    let h2 = fingerprint(config, QueueBackend::Heap, 2, horizon, SENDS);
    assert_eq!(
        w2.queue_depth_max, h2.queue_depth_max,
        "{label}: depth gauge must be backend-invariant at x2"
    );
}

#[test]
fn dis_scenario_is_backend_and_shard_invariant() {
    assert_matrix_invariant(
        DisScenarioConfig {
            sites: 6,
            receivers_per_site: 4,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.08),
                ..SiteParams::distant()
            },
            receiver_nack_delay: std::time::Duration::from_millis(5),
            seed: 4242,
            ..DisScenarioConfig::default()
        },
        "DIS",
    );
}

#[test]
fn lossy_wan_is_backend_and_shard_invariant() {
    // Backbone loss on top of tail loss: recovery traffic cascades
    // through secondaries and the primary, exercising timer re-arms,
    // retransmission fan-out, and deep queue churn.
    assert_matrix_invariant(
        DisScenarioConfig {
            sites: 8,
            receivers_per_site: 5,
            secondary_loggers: true,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.12),
                tail_out_loss: LossModel::rate(0.04),
                ..SiteParams::distant()
            },
            seed: 90210,
            ..DisScenarioConfig::default()
        },
        "lossy WAN",
    );
}

/// A short-horizon slice of the committed 1000-site × 30-receiver
/// benchmark workload: the determinism guarantee must hold at the scale
/// the bench actually runs, not just on toy topologies.
#[test]
fn dis_1000x30_short_horizon_is_shard_invariant() {
    let config = DisScenarioConfig {
        sites: 1_000,
        receivers_per_site: 30,
        site_params: SiteParams {
            tail_in_loss: LossModel::rate(0.05),
            ..SiteParams::distant()
        },
        seed: 1995,
        ..DisScenarioConfig::default()
    };
    let horizon = SimTime::from_millis(1_600);
    let sends = 2;
    let base = fingerprint(config.clone(), QueueBackend::Wheel, 1, horizon, sends);
    assert!(!base.trace_jsonl.is_empty());
    for shards in [2usize, 8] {
        let leg = fingerprint(config.clone(), QueueBackend::Wheel, shards, horizon, sends);
        assert_equal(&base, &leg, &format!("1000x30 [wheel x{shards}]"), false);
    }
}
