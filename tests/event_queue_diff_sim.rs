//! Wheel-vs-heap differential: the timer-wheel event queue must replay
//! the binary-heap reference backend *byte for byte*. Two seeded lossy
//! scenarios (the standard DIS run and a harsher lossy-WAN variant) are
//! executed under both backends; everything observable — wire-level
//! `NetStats`, per-receiver delivery transcripts, the serialized JSONL
//! trace stream, metrics registries, and the queue-depth gauge — must be
//! identical. This is what lets the wheel be the default backend while
//! the heap stays as the executable specification of event order.

use std::sync::Arc;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm::sim::loss::LossModel;
use lbrm::sim::queue::QueueBackend;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::trace::{CollectorSink, TraceSink};

const SENDS: u64 = 20;

/// Everything a run exposes, flattened to comparable (and mostly
/// byte-level) form.
struct RunFingerprint {
    trace_jsonl: String,
    stats: lbrm::sim::stats::NetStats,
    deliveries: Vec<(u64, Vec<u32>)>,
    completeness: f64,
    queue_depth_max: usize,
    counters: Vec<std::collections::BTreeMap<&'static str, u64>>,
}

fn fingerprint(config: DisScenarioConfig, backend: QueueBackend) -> RunFingerprint {
    let collector = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            queue_backend: Some(backend),
            ..config
        },
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    assert_eq!(sc.world.queue_backend(), backend);
    for i in 0..SENDS {
        sc.send_at(SimTime::from_millis(1_000 + 400 * i), format!("update-{i}"));
    }
    sc.world.run_until(SimTime::from_secs(60));

    // Serialize the trace exactly as a JsonLinesSink capture would land
    // on disk: identical protocol behavior must give identical bytes.
    let trace_jsonl = collector
        .take()
        .iter()
        .map(|r| r.event.to_json(r.at_nanos, r.host) + "\n")
        .collect::<String>();

    let deliveries = sc
        .all_receivers()
        .into_iter()
        .map(|rx| (rx.raw(), sc.delivered(rx)))
        .collect();
    let expect: Vec<u32> = (1..=SENDS as u32).collect();
    RunFingerprint {
        trace_jsonl,
        stats: sc.world.stats().clone(),
        deliveries,
        completeness: sc.completeness(&expect),
        queue_depth_max: sc.world.queue_depth_max(),
        counters: vec![
            sc.sender_metrics.counters(),
            sc.primary_metrics.counters(),
            sc.secondary_metrics.counters(),
            sc.receiver_metrics.counters(),
            sc.net_metrics.counters(),
        ],
    }
}

fn assert_identical(config: DisScenarioConfig, label: &str) {
    let wheel = fingerprint(config.clone(), QueueBackend::Wheel);
    let heap = fingerprint(config, QueueBackend::Heap);
    assert_eq!(
        wheel.trace_jsonl, heap.trace_jsonl,
        "{label}: JSONL trace bytes must match"
    );
    assert_eq!(wheel.stats, heap.stats, "{label}: NetStats must match");
    assert_eq!(
        wheel.deliveries, heap.deliveries,
        "{label}: per-receiver deliveries must match"
    );
    assert_eq!(wheel.completeness, heap.completeness, "{label}");
    assert_eq!(
        wheel.queue_depth_max, heap.queue_depth_max,
        "{label}: depth gauge must match"
    );
    assert_eq!(
        wheel.counters, heap.counters,
        "{label}: metrics registries must match"
    );
    assert!(
        !wheel.trace_jsonl.is_empty(),
        "{label}: differential must compare real traffic"
    );
}

#[test]
fn dis_scenario_is_backend_invariant() {
    assert_identical(
        DisScenarioConfig {
            sites: 6,
            receivers_per_site: 4,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.08),
                ..SiteParams::distant()
            },
            receiver_nack_delay: std::time::Duration::from_millis(5),
            seed: 4242,
            ..DisScenarioConfig::default()
        },
        "DIS",
    );
}

#[test]
fn lossy_wan_is_backend_invariant() {
    // Backbone loss on top of tail loss: recovery traffic cascades
    // through secondaries and the primary, exercising timer re-arms,
    // retransmission fan-out, and deep queue churn.
    assert_identical(
        DisScenarioConfig {
            sites: 8,
            receivers_per_site: 5,
            secondary_loggers: true,
            site_params: SiteParams {
                tail_in_loss: LossModel::rate(0.12),
                tail_out_loss: LossModel::rate(0.04),
                ..SiteParams::distant()
            },
            seed: 90210,
            ..DisScenarioConfig::default()
        },
        "lossy WAN",
    );
}
