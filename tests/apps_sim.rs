//! The §4 applications running over the full protocol stack in the
//! simulator.

use std::time::Duration;

use bytes::Bytes;
use lbrm::apps::factory::{audit_log, MonitorStation, Sensor};
use lbrm::apps::filecache::{CachingClient, FileServer};
use lbrm::core::logger::{Logger, LoggerConfig};
use lbrm::core::receiver::{Receiver, ReceiverConfig};
use lbrm::core::sender::{Sender, SenderConfig};
use lbrm::harness::MachineActor;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::{SiteParams, TopologyBuilder};
use lbrm::sim::world::World;
use lbrm::wire::{GroupId, HostId, SourceId};

const GROUP: GroupId = GroupId(1);
const SRC: SourceId = SourceId(1);

struct Rig {
    world: World,
    src_host: HostId,
    log_host: HostId,
    clients: Vec<HostId>,
}

/// One source site + `n` single-receiver client sites.
fn rig(n: usize, seed: u64) -> Rig {
    let mut b = TopologyBuilder::new();
    let hq = b.site(SiteParams::distant());
    let src_host = b.host(hq);
    let log_host = b.host(hq);
    let mut clients = Vec::new();
    for _ in 0..n {
        let site = b.site(SiteParams::distant());
        clients.push(b.host(site));
    }
    let mut world = World::new(b.build(), seed);
    world.add_actor(
        log_host,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
            vec![GROUP],
        ),
    );
    for &c in &clients {
        world.add_actor(
            c,
            MachineActor::new(
                Receiver::new(ReceiverConfig::new(GROUP, SRC, c, src_host, vec![log_host])),
                vec![GROUP],
            ),
        );
    }
    world.add_actor(
        src_host,
        MachineActor::new(
            Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
            vec![],
        ),
    );
    Rig {
        world,
        src_host,
        log_host,
        clients,
    }
}

#[test]
fn filecache_invalidation_and_lease_style_timeout() {
    let mut r = rig(1, 31);
    let client_host = r.clients[0];

    // The server writes /etc/motd twice; between the writes the source
    // host dies entirely (heartbeats stop → clients invalidate, like a
    // lease expiring).
    {
        let sender = r.world.actor_mut::<MachineActor<Sender>>(r.src_host);
        sender.schedule(SimTime::from_secs(1), |s: &mut Sender, now, out| {
            let mut server = FileServer::new();
            server.write(s, now, "/etc/motd", out);
        });
    }
    r.world.run_until(SimTime::from_secs(2));

    let mut cache = CachingClient::new();
    let replay = |world: &World, cache: &mut CachingClient| {
        let a = world.actor::<MachineActor<Receiver>>(client_host);
        let mut c = CachingClient::new();
        // Merge-style replay: deliveries and notices in time order.
        let mut events: Vec<(SimTime, bool, usize)> = Vec::new();
        for (i, (at, _)) in a.deliveries.iter().enumerate() {
            events.push((*at, true, i));
        }
        for (i, (at, _)) in a.notices.iter().enumerate() {
            events.push((*at, false, i));
        }
        events.sort();
        for (_, is_delivery, i) in events {
            if is_delivery {
                c.on_delivery(&a.deliveries[i].1);
            } else {
                c.on_notice(&a.notices[i].1);
            }
        }
        *cache = c;
    };

    replay(&r.world, &mut cache);
    assert_eq!(cache.file_invalidations, 1);
    assert!(!cache.is_degraded());

    // Source dies: within the adaptive idle window the client must mark
    // its cache suspect.
    r.world.crash(r.src_host);
    r.world.run_until(SimTime::from_secs(10));
    replay(&r.world, &mut cache);
    assert!(
        cache.is_degraded(),
        "heartbeat silence must degrade the cache"
    );

    // Source returns; freshness restores and caching resumes.
    r.world.revive(r.src_host);
    lbrm::harness::call_at(
        &mut r.world,
        r.src_host,
        SimTime::from_secs(11),
        |s: &mut Sender, now, out| {
            let mut server = FileServer::new();
            server.write(s, now, "/etc/motd", out);
        },
    );
    r.world.run_until(SimTime::from_secs(20));
    replay(&r.world, &mut cache);
    assert!(!cache.is_degraded(), "heartbeats resumed");
}

#[test]
fn factory_sensor_audit_and_mobile_monitor() {
    let mut r = rig(2, 37);
    let fixed_monitor = r.clients[0];
    let mobile_monitor = r.clients[1];

    // The sensor reports every 2 s for 10 readings.
    {
        let sender = r.world.actor_mut::<MachineActor<Sender>>(r.src_host);
        for i in 0..10u64 {
            sender.schedule(
                SimTime::from_secs(1 + 2 * i),
                move |s: &mut Sender, now, out| {
                    Sensor::new(7).report(s, now, 100 + i as i64, out);
                },
            );
        }
    }

    // The mobile monitor is off the floor (disconnected) during readings
    // #3–#5.
    r.world.run_until(SimTime::from_millis(4_500));
    r.world.crash(mobile_monitor);
    r.world.run_until(SimTime::from_millis(10_500));
    r.world.revive(mobile_monitor);
    r.world.run_until(SimTime::from_secs(40));

    // The fixed monitor heard everything live.
    let fixed = {
        let a = r.world.actor::<MachineActor<Receiver>>(fixed_monitor);
        let mut m = MonitorStation::new();
        for (_, d) in &a.deliveries {
            m.on_delivery(d);
        }
        m
    };
    assert_eq!(fixed.history_len(), 10);
    assert!(fixed.history_complete());
    assert_eq!(fixed.recovered_readings, 0);

    // The mobile monitor backfilled what it missed, "without interfering
    // with the other receivers or affecting the on-going data flow".
    let mobile = {
        let a = r.world.actor::<MachineActor<Receiver>>(mobile_monitor);
        let mut m = MonitorStation::new();
        for (_, d) in &a.deliveries {
            m.on_delivery(d);
        }
        m
    };
    assert_eq!(mobile.history_len(), 10, "mobile monitor must backfill");
    assert!(mobile.history_complete());
    assert!(mobile.recovered_readings >= 3);
    assert_eq!(mobile.latest(7).unwrap().value_milli, 109);

    // The logging server doubles as the factory's audit log.
    let audit = {
        let l = r.world.actor::<MachineActor<Logger>>(r.log_host);
        audit_log(l.machine())
    };
    assert_eq!(audit.len(), 10);
    let values: Vec<i64> = audit.iter().map(|(_, rd)| rd.value_milli).collect();
    assert_eq!(values, (100..110).collect::<Vec<i64>>());
}

#[test]
fn sensor_keeps_no_state_but_buffer_drains() {
    // §4.4: "imposes minimal buffering and computation requirements on
    // those sources" — after the primary acks, the sensor retains
    // nothing.
    let mut r = rig(1, 41);
    {
        let sender = r.world.actor_mut::<MachineActor<Sender>>(r.src_host);
        sender.schedule(SimTime::from_secs(1), |s: &mut Sender, now, out| {
            Sensor::new(1).report(s, now, 5, out);
        });
    }
    r.world.run_until(SimTime::from_secs(5));
    let sender = r.world.actor::<MachineActor<Sender>>(r.src_host);
    assert_eq!(sender.machine().buffered(), 0);
    let _ = Duration::ZERO;
    let _ = Bytes::new();
}
