//! Late joiners: a receiver that subscribes mid-stream backfills recent
//! history from the logging hierarchy (the §4 cache / audit pattern),
//! and abandons gracefully what predates the stream.

use lbrm::harness::MachineActor;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::{SiteParams, TopologyBuilder};
use lbrm::sim::world::World;
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::receiver::{Receiver, ReceiverConfig};
use lbrm_core::sender::{Sender, SenderConfig};
use lbrm_wire::{GroupId, SourceId};

const GROUP: GroupId = GroupId(1);
const SRC: SourceId = SourceId(1);

#[test]
fn late_joiner_backfills_recent_history() {
    let mut b = TopologyBuilder::new();
    let hq = b.site(SiteParams::distant());
    let src_host = b.host(hq);
    let log_host = b.host(hq);
    let site = b.site(SiteParams::distant());
    let joiner = b.host(site);
    let mut world = World::new(b.build(), 71);

    world.add_actor(
        log_host,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
            vec![GROUP],
        ),
    );
    let mut cfg = ReceiverConfig::new(GROUP, SRC, joiner, src_host, vec![log_host]);
    cfg.backfill = 4;
    world.add_actor(joiner, MachineActor::new(Receiver::new(cfg), vec![GROUP]));

    let mut sender = MachineActor::new(
        Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
        vec![],
    );
    for i in 0..8u64 {
        let payload = bytes::Bytes::from(format!("u{i}"));
        sender.schedule(
            SimTime::from_secs(1 + i),
            move |s: &mut Sender, now, out| {
                s.send(now, payload.clone(), out);
            },
        );
    }
    world.add_actor(src_host, sender);

    // The joiner is offline for packets #1..#6 and comes up before #7.
    // (Crashing before the world starts suppresses the actor's on_start,
    // so join the group on its behalf.)
    world.join(joiner, GROUP);
    world.crash(joiner);
    world.run_until(SimTime::from_millis(6_500));
    world.revive(joiner);
    world.run_until(SimTime::from_secs(30));

    let a = world.actor::<MachineActor<Receiver>>(joiner);
    let mut seqs: Vec<(u32, bool)> = a
        .deliveries
        .iter()
        .map(|(_, d)| (d.seq.raw(), d.recovered))
        .collect();
    seqs.sort();
    // First contact is the heartbeat announcing #6 (at t ≈ 6.75 s): the
    // joiner recovers #6 plus a backfill window of 4 predecessors, then
    // hears #7 and #8 live.
    assert_eq!(
        seqs,
        vec![
            (2, true),
            (3, true),
            (4, true),
            (5, true),
            (6, true),
            (7, false),
            (8, false)
        ],
        "{seqs:?}"
    );
}

#[test]
fn backfill_past_stream_origin_gives_up_cleanly() {
    // Joiner wants 10 packets of history but the stream only ever had 2:
    // the pre-origin sequences are abandoned after bounded attempts, and
    // nothing loops forever.
    let mut b = TopologyBuilder::new();
    let hq = b.site(SiteParams::distant());
    let src_host = b.host(hq);
    let log_host = b.host(hq);
    let site = b.site(SiteParams::distant());
    let joiner = b.host(site);
    let mut world = World::new(b.build(), 73);

    world.add_actor(
        log_host,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
            vec![GROUP],
        ),
    );
    let mut cfg = ReceiverConfig::new(GROUP, SRC, joiner, src_host, vec![log_host]);
    cfg.backfill = 10;
    cfg.max_recovery_attempts = 3;
    world.add_actor(joiner, MachineActor::new(Receiver::new(cfg), vec![GROUP]));

    let mut sender = MachineActor::new(
        Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
        vec![],
    );
    for i in 0..2u64 {
        let payload = bytes::Bytes::from(format!("u{i}"));
        sender.schedule(
            SimTime::from_secs(1 + i),
            move |s: &mut Sender, now, out| {
                s.send(now, payload.clone(), out);
            },
        );
    }
    world.add_actor(src_host, sender);

    // Joiner misses #1, hears #2 (its first), wants 10 predecessors.
    world.join(joiner, GROUP);
    world.crash(joiner);
    world.run_until(SimTime::from_millis(1_500));
    world.revive(joiner);
    world.run_until(SimTime::from_secs(60));

    let a = world.actor::<MachineActor<Receiver>>(joiner);
    let mut seqs: Vec<u32> = a.deliveries.iter().map(|(_, d)| d.seq.raw()).collect();
    seqs.sort();
    assert_eq!(
        seqs,
        vec![1, 2],
        "real history recovered, phantom history not"
    );
    assert_eq!(
        a.machine().outstanding_recoveries(),
        0,
        "no immortal recoveries"
    );
    // The backfill window clamps at sequence 0; the one phantom sequence
    // (#0, never sent) is abandoned after bounded attempts.
    assert!(
        a.machine().stats().abandoned >= 1,
        "pre-origin sequence abandoned"
    );
}
