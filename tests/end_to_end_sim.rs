//! Cross-crate integration: the full DIS scenario under sustained random
//! loss, plus determinism.

use std::sync::Arc;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_core::receiver::Receiver;

/// 8 sites × 5 receivers with 5% loss on every tail circuit in both
/// directions and 1% on the WAN: every update is still delivered to
/// every receiver.
#[test]
fn lossy_world_reaches_full_completeness() {
    let site_params = SiteParams {
        tail_in_loss: LossModel::rate(0.05),
        tail_out_loss: LossModel::rate(0.05),
        ..SiteParams::distant()
    };
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 8,
        receivers_per_site: 5,
        site_params,
        wan_loss: LossModel::rate(0.01),
        seed: 77,
        ..DisScenarioConfig::default()
    });
    let expect: Vec<u32> = (1..=10).collect();
    for i in 0..10u64 {
        sc.send_at(SimTime::from_secs(2 + 3 * i), format!("update-{i}"));
    }
    sc.world.run_until(SimTime::from_secs(120));
    assert_eq!(
        sc.completeness(&expect),
        1.0,
        "every receiver must hold every update"
    );

    // Some loss definitely happened and was repaired.
    let recovered: u64 = sc
        .all_receivers()
        .iter()
        .map(|&rx| {
            sc.world
                .actor::<MachineActor<Receiver>>(rx)
                .machine()
                .stats()
                .recovered
        })
        .sum();
    assert!(
        recovered > 0,
        "the lossy run should have exercised recovery"
    );

    // The sender's buffer drained: the primary logged everything.
    let sender = sc
        .world
        .actor::<MachineActor<lbrm_core::sender::Sender>>(sc.src_host);
    assert_eq!(sender.machine().buffered(), 0);
}

/// The same seed reproduces the identical packet-level outcome; a
/// different seed differs (the loss pattern is random).
#[test]
fn simulation_is_deterministic_in_seed() {
    let run = |seed: u64| {
        let site_params = SiteParams {
            tail_in_loss: LossModel::rate(0.2),
            ..SiteParams::distant()
        };
        let mut sc = DisScenario::build(DisScenarioConfig {
            sites: 4,
            receivers_per_site: 3,
            site_params: site_params.clone(),
            site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
            seed,
            ..DisScenarioConfig::default()
        });
        for i in 0..5u64 {
            sc.send_at(SimTime::from_secs(1 + 2 * i), format!("u{i}"));
        }
        sc.world.run_until(SimTime::from_secs(60));
        // Full per-receiver delivery trace (seq + recovered flags).
        sc.all_receivers()
            .iter()
            .map(|&rx| {
                sc.world
                    .actor::<MachineActor<Receiver>>(rx)
                    .deliveries
                    .iter()
                    .map(|(at, d)| (at.nanos(), d.seq.raw(), d.recovered))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42), "same seed, same world");
    assert_ne!(
        run(42),
        run(43),
        "different seed should differ under 20% loss"
    );
}

/// Receiver-reliability: a LatestOnly receiver keeps up without ever
/// NACKing, while RecoverAll receivers in the same group do recover.
#[test]
fn reliability_modes_coexist() {
    use lbrm_core::receiver::ReliabilityMode;
    let site_params = SiteParams {
        tail_in_loss: LossModel::rate(0.25),
        ..SiteParams::distant()
    };
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 2,
        receivers_per_site: 4,
        mode: ReliabilityMode::LatestOnly,
        site_params,
        seed: 9,
        ..DisScenarioConfig::default()
    });
    for i in 0..8u64 {
        sc.send_at(SimTime::from_secs(1 + i), format!("u{i}"));
    }
    sc.world.run_until(SimTime::from_secs(60));
    let mut abandoned_total = 0;
    for rx in sc.all_receivers() {
        let stats = sc
            .world
            .actor::<MachineActor<Receiver>>(rx)
            .machine()
            .stats();
        assert_eq!(stats.recovered, 0, "LatestOnly must not recover");
        abandoned_total += stats.abandoned;
    }
    assert!(
        abandoned_total > 0,
        "25% loss must have produced abandoned packets"
    );
    // No receiver NACK ever left a site (secondaries still maintain
    // their logs upstream, but receiver-reliability means receivers
    // choose not to pull).
    for rx in sc.all_receivers() {
        assert_eq!(
            sc.world
                .actor::<MachineActor<Receiver>>(rx)
                .machine()
                .outstanding_recoveries(),
            0
        );
    }
}
