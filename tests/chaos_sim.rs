//! Chaos-failover fencing: a partitioned stale primary keeps serving
//! repairs after a new term is elected, and every receiver rejects them.
//!
//! This drives the machines directly (sans-IO) so the partition can be
//! surgical: the deposed primary never hears the `TermAnnounce`, keeps
//! believing it holds serving authority, and answers a NACK that was in
//! flight to it — a genuine stale serve. The receiver must fence the
//! resulting retransmission (no delivery, no gap bookkeeping), re-aim
//! its NACK at the elected leader, and recover there. The collected
//! trace must show the fenced reject and **zero** duplicate-authority
//! anomalies — the stale serve existed, but no receiver accepted it.

use std::sync::Arc;

use bytes::Bytes;
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::machine::{deliveries, notices, Action, Actions, Machine, Notice};
use lbrm_core::receiver::{Receiver, ReceiverConfig};
use lbrm_core::sender::{Sender, SenderConfig};
use lbrm_core::time::Time;
use lbrm_core::trace::analyze::{analyze, AnalyzeConfig, CollectorSink};
use lbrm_core::trace::{TraceSink, Tracer};
use lbrm_wire::{GroupId, HostId, Packet, Seq, SourceId};

const GROUP: GroupId = GroupId(7);
const SOURCE: SourceId = SourceId(7);
const SRC: HostId = HostId(1);
const OLD_PRIMARY: HostId = HostId(2);
const REPLICA_B: HostId = HostId(3);
const REPLICA_C: HostId = HostId(4);
const RX: HostId = HostId(5);

/// Pulls the first unicast `Nack` out of `out`, panicking with `what`
/// if none is there.
fn take_nack(out: &Actions, what: &str) -> (HostId, Packet) {
    out.iter()
        .find_map(|a| match a {
            Action::Unicast {
                to,
                packet: p @ Packet::Nack { .. },
            } => Some((*to, p.clone())),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected {what}: {out:?}"))
}

#[test]
fn partitioned_stale_primary_is_fenced_by_receivers() {
    let sink = Arc::new(CollectorSink::default());
    let tracer = || Tracer::to(sink.clone() as Arc<dyn TraceSink>);

    let mut cfg = SenderConfig::new(GROUP, SOURCE, SRC, OLD_PRIMARY);
    cfg.replicas = vec![REPLICA_B, REPLICA_C];
    let mut sender = Sender::new(cfg);
    sender.set_tracer(tracer());

    let mut acfg = LoggerConfig::primary(GROUP, SOURCE, OLD_PRIMARY, SRC);
    acfg.replicas = vec![REPLICA_B, REPLICA_C];
    let mut stale = Logger::new(acfg);
    stale.set_tracer(tracer());
    let mut rep_b = Logger::new(LoggerConfig::replica(
        GROUP,
        SOURCE,
        REPLICA_B,
        OLD_PRIMARY,
        SRC,
    ));
    rep_b.set_tracer(tracer());
    let mut rep_c = Logger::new(LoggerConfig::replica(
        GROUP,
        SOURCE,
        REPLICA_C,
        OLD_PRIMARY,
        SRC,
    ));
    rep_c.set_tracer(tracer());
    let mut rx = Receiver::new(ReceiverConfig::new(
        GROUP,
        SOURCE,
        RX,
        SRC,
        vec![OLD_PRIMARY],
    ));
    rx.set_tracer(tracer());

    let mut out = Actions::new();
    let mut now = Time::ZERO;
    sender.on_start(now, &mut out);
    stale.on_start(now, &mut out);
    rep_b.on_start(now, &mut out);
    rep_c.on_start(now, &mut out);
    rx.on_start(now, &mut out);
    out.clear();

    // Three data packets; the old primary and replica B log all of
    // them, replica C none (so the election must pick B).
    let mut datas = Vec::new();
    for i in 0..3u32 {
        now = Time::from_millis(10 + 10 * u64::from(i));
        sender.send(now, Bytes::from(format!("u{i}")), &mut out);
    }
    for a in out.iter() {
        if let Action::Multicast {
            packet: p @ Packet::Data { .. },
            ..
        } = a
        {
            datas.push(p.clone());
        }
    }
    assert_eq!(datas.len(), 3);
    out.clear();
    for p in &datas {
        stale.on_packet(now, SRC, p.clone(), &mut out);
        rep_b.on_packet(now, SRC, p.clone(), &mut out);
    }
    // The primary's LogAcks are lost from here on (it is about to be
    // partitioned), so the sender's handoff retries go unanswered.
    out.clear();

    // The receiver misses #2: deliver #1 and #3, then drive its NACK
    // out — and hold it in flight toward the (still-believed) primary.
    rx.on_packet(now, SRC, datas[0].clone(), &mut out);
    rx.on_packet(now, SRC, datas[2].clone(), &mut out);
    assert_eq!(deliveries(&out).len(), 2);
    out.clear();
    let held_nack = {
        now = rx.next_deadline().expect("receiver scheduled its NACK");
        rx.poll(now, &mut out);
        let (to, nack) = take_nack(&out, "a NACK aimed at the old primary");
        assert_eq!(to, OLD_PRIMARY);
        out.clear();
        nack
    };

    // Unanswered handoff retries push the sender into failover.
    for _ in 0..60 {
        now = sender.next_deadline().expect("sender keeps timers armed");
        sender.poll(now, &mut out);
        if notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::PrimaryUnresponsive { .. }))
        {
            break;
        }
    }
    let prepares: Vec<(HostId, Packet)> = out
        .iter()
        .filter_map(|a| match a {
            Action::Unicast {
                to,
                packet: p @ Packet::ElectPrepare { .. },
            } => Some((*to, p.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(
        prepares.iter().map(|(to, _)| *to).collect::<Vec<_>>(),
        vec![REPLICA_B, REPLICA_C],
        "failover must solicit both replicas"
    );
    out.clear();

    // Both replicas vote; B reports the longer log and wins term 1.
    let mut votes = Actions::new();
    for (to, prep) in &prepares {
        let m: &mut Logger = if *to == REPLICA_B {
            &mut rep_b
        } else {
            &mut rep_c
        };
        m.on_packet(now, SRC, prep.clone(), &mut votes);
    }
    for v in votes {
        if let Action::Unicast {
            packet: p @ Packet::ElectPromise { .. },
            ..
        } = v
        {
            let from = match p {
                Packet::ElectPromise { voter, .. } => voter,
                _ => unreachable!(),
            };
            sender.on_packet(now, from, p, &mut out);
        }
    }
    assert_eq!(sender.primary(), REPLICA_B);
    assert_eq!(sender.term(), 1);
    let announce = out
        .iter()
        .find_map(|a| match a {
            Action::Multicast {
                packet: p @ Packet::TermAnnounce { .. },
                ..
            } => Some(p.clone()),
            _ => None,
        })
        .expect("election must announce the new term");
    out.clear();

    // Everyone on the majority side hears the announcement — the old
    // primary, partitioned away, does not.
    rx.on_packet(now, SRC, announce.clone(), &mut out);
    rep_b.on_packet(now, SRC, announce.clone(), &mut out);
    rep_c.on_packet(now, SRC, announce, &mut out);
    out.clear();

    // The held NACK finally lands at the stale primary. It still
    // believes it is the authority and serves the repair.
    stale.on_packet(now, RX, held_nack, &mut out);
    let stale_retrans = out
        .iter()
        .find_map(|a| match a {
            Action::Unicast {
                to: RX,
                packet: p @ Packet::Retrans { .. },
            } => Some(p.clone()),
            _ => None,
        })
        .expect("the stale primary must still serve the repair");
    out.clear();

    // The receiver fences it: no delivery, the gap stays open.
    rx.on_packet(now, OLD_PRIMARY, stale_retrans, &mut out);
    assert!(
        deliveries(&out).is_empty(),
        "a fenced retransmission must not deliver: {out:?}"
    );
    out.clear();

    // The receiver's recovery was re-aimed at the elected leader by the
    // announcement; the retry goes to B, which serves under term 1.
    let renack = {
        let mut found = None;
        for _ in 0..20 {
            now = now.max(rx.next_deadline().expect("retry still pending"));
            rx.poll(now, &mut out);
            if let Some((to, nack)) = out.iter().find_map(|a| match a {
                Action::Unicast {
                    to,
                    packet: p @ Packet::Nack { .. },
                } => Some((*to, p.clone())),
                _ => None,
            }) {
                found = Some((to, nack));
                break;
            }
        }
        let (to, nack) = found.expect("receiver must retry its NACK");
        assert_eq!(to, REPLICA_B, "retry must target the elected leader");
        out.clear();
        nack
    };
    rep_b.on_packet(now, RX, renack, &mut out);
    let good_retrans = out
        .iter()
        .find_map(|a| match a {
            Action::Unicast {
                to: RX,
                packet: p @ Packet::Retrans { .. },
            } => Some(p.clone()),
            _ => None,
        })
        .expect("the elected leader must serve the repair");
    out.clear();
    rx.on_packet(now, REPLICA_B, good_retrans, &mut out);
    let recovered = deliveries(&out);
    assert_eq!(recovered.len(), 1, "seq 2 must recover via the new leader");
    assert!(recovered[0].recovered);
    assert_eq!(recovered[0].seq, Seq(2));

    // Forensics over the whole trace: the stale serve happened, the
    // fence caught it, and no receiver accepted duplicate authority.
    let records = sink.take();
    let stale_serves = records
        .iter()
        .filter(|r| {
            r.host == OLD_PRIMARY
                && matches!(
                    r.event,
                    lbrm_core::trace::ProtocolEvent::AuthorityServe { term: 0, .. }
                )
        })
        .count();
    assert!(stale_serves >= 1, "the deposed primary must have served");
    let report = analyze(&records, &AnalyzeConfig::default());
    assert!(
        report.fenced_rejects >= 1,
        "the forensics must count the fenced reject"
    );
    let double_authority: Vec<_> = report
        .anomalies
        .iter()
        .filter(|a| matches!(a.kind(), "split_brain_serve" | "term_conflict"))
        .collect();
    assert!(
        double_authority.is_empty(),
        "no duplicate-authority serve may be accepted: {double_authority:?}"
    );
}
