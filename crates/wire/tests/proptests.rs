//! Randomized property tests for the wire layer: arbitrary packets
//! roundtrip through the binary codec, arbitrary bytes never panic the
//! decoder, and sequence arithmetic obeys serial-number laws.
//!
//! The crates.io `proptest` harness is unavailable offline, so these
//! run as seeded randomized loops (deterministic per seed — a failure
//! reproduces by rerunning the test).

use bytes::Bytes;
use lbrm_wire::packet::{Packet, SeqRange};
use lbrm_wire::{decode, encode, EpochId, GroupId, HostId, Seq, SourceId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 512;

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

fn arb_payload(r: &mut SmallRng) -> Bytes {
    let len = r.random_range(0u64..512) as usize;
    (0..len)
        .map(|_| r.random::<u64>() as u8)
        .collect::<Vec<u8>>()
        .into()
}

fn arb_ranges(r: &mut SmallRng) -> Vec<SeqRange> {
    let n = r.random_range(0u64..16) as usize;
    (0..n)
        .map(|_| {
            let first = Seq(r.random::<u32>());
            let span = r.random_range(0u64..1000) as u32;
            SeqRange {
                first,
                last: first.add(span),
            }
        })
        .collect()
}

fn arb_packet(r: &mut SmallRng) -> Packet {
    let g = GroupId(r.random::<u32>());
    let s = SourceId(r.random::<u64>());
    let q = Seq(r.random::<u32>());
    let e = EpochId(r.random::<u32>());
    match r.random_range(0u64..20) {
        0 => Packet::Data {
            group: g,
            source: s,
            seq: q,
            epoch: e,
            payload: arb_payload(r),
        },
        1 => Packet::Heartbeat {
            group: g,
            source: s,
            seq: q,
            epoch: e,
            hb_index: r.random::<u32>(),
            payload: arb_payload(r),
        },
        2 => Packet::Nack {
            group: g,
            source: s,
            requester: HostId(r.random::<u64>()),
            ranges: arb_ranges(r),
        },
        3 => Packet::Retrans {
            group: g,
            source: s,
            seq: q,
            payload: arb_payload(r),
        },
        4 => Packet::LogAck {
            group: g,
            source: s,
            primary_seq: q,
            replica_seq: Seq(r.random::<u32>()),
        },
        5 => Packet::AckerSelect {
            group: g,
            source: s,
            epoch: e,
            p_ack: r.random::<f64>(),
        },
        6 => Packet::AckerVolunteer {
            group: g,
            source: s,
            epoch: e,
            logger: HostId(r.random::<u64>()),
        },
        7 => Packet::PacketAck {
            group: g,
            source: s,
            epoch: e,
            seq: q,
            logger: HostId(r.random::<u64>()),
        },
        8 => Packet::DiscoveryQuery {
            group: g,
            nonce: r.random::<u64>(),
            requester: HostId(r.random::<u64>()),
        },
        9 => Packet::DiscoveryReply {
            group: g,
            nonce: r.random::<u64>(),
            logger: HostId(r.random::<u64>()),
            level: r.random::<u64>() as u8,
        },
        10 => Packet::ReplUpdate {
            group: g,
            source: s,
            seq: q,
            payload: arb_payload(r),
        },
        11 => Packet::ReplAck {
            group: g,
            source: s,
            seq: q,
        },
        12 => Packet::SrmSession {
            group: g,
            member: HostId(r.random::<u64>()),
            last_seq: q,
        },
        13 => Packet::SrmNack {
            group: g,
            source: s,
            requester: HostId(r.random::<u64>()),
            ranges: arb_ranges(r),
        },
        14 => Packet::SrmRepair {
            group: g,
            source: s,
            seq: q,
            responder: HostId(r.random::<u64>()),
            payload: arb_payload(r),
        },
        15 => Packet::LocatePrimary {
            group: g,
            source: s,
            requester: HostId(r.random::<u64>()),
        },
        16 => Packet::PrimaryIs {
            group: g,
            source: s,
            primary: HostId(r.random::<u64>()),
        },
        17 => Packet::ElectPrepare {
            group: g,
            source: s,
            term: r.random::<u32>(),
            candidate: HostId(r.random::<u64>()),
        },
        18 => Packet::ElectPromise {
            group: g,
            source: s,
            term: r.random::<u32>(),
            voter: HostId(r.random::<u64>()),
            log_end: q,
        },
        _ => Packet::TermAnnounce {
            group: g,
            source: s,
            term: r.random::<u32>(),
            leader: HostId(r.random::<u64>()),
        },
    }
}

/// One deterministic instance of every variant at a chosen payload/range
/// extreme, for the `encoded_len` edge cases the random generator rarely
/// hits (empty and maximal sizes, wraparound sequence numbers).
fn extreme_packets() -> Vec<Packet> {
    let g = GroupId(u32::MAX);
    let s = SourceId(u64::MAX);
    // Wraparound: a range starting just below the top of seq space.
    let wrap = SeqRange {
        first: Seq(u32::MAX - 1),
        last: Seq(u32::MAX - 1).add(5),
    };
    let max_ranges: Vec<SeqRange> = (0..lbrm_wire::codec::MAX_NACK_RANGES)
        .map(|i| SeqRange::single(Seq(i as u32)))
        .collect();
    let big = Bytes::from(vec![0xA5u8; 16 * 1024]);
    let empty = Bytes::new();
    vec![
        Packet::Data {
            group: g,
            source: s,
            seq: Seq(u32::MAX),
            epoch: EpochId(0),
            payload: empty.clone(),
        },
        Packet::Data {
            group: g,
            source: s,
            seq: Seq(0),
            epoch: EpochId(u32::MAX),
            payload: big.clone(),
        },
        Packet::Heartbeat {
            group: g,
            source: s,
            seq: Seq(u32::MAX),
            epoch: EpochId(1),
            hb_index: u32::MAX,
            payload: empty.clone(),
        },
        Packet::Nack {
            group: g,
            source: s,
            requester: HostId(0),
            ranges: vec![],
        },
        Packet::Nack {
            group: g,
            source: s,
            requester: HostId(u64::MAX),
            ranges: max_ranges,
        },
        Packet::Nack {
            group: g,
            source: s,
            requester: HostId(7),
            ranges: vec![wrap],
        },
        Packet::Retrans {
            group: g,
            source: s,
            seq: Seq(u32::MAX),
            payload: big.clone(),
        },
        Packet::LogAck {
            group: g,
            source: s,
            primary_seq: Seq(u32::MAX),
            replica_seq: Seq(0),
        },
        Packet::AckerSelect {
            group: g,
            source: s,
            epoch: EpochId(u32::MAX),
            p_ack: 1.0,
        },
        Packet::AckerVolunteer {
            group: g,
            source: s,
            epoch: EpochId(0),
            logger: HostId(u64::MAX),
        },
        Packet::PacketAck {
            group: g,
            source: s,
            epoch: EpochId(0),
            seq: Seq(u32::MAX),
            logger: HostId(0),
        },
        Packet::DiscoveryQuery {
            group: g,
            nonce: u64::MAX,
            requester: HostId(0),
        },
        Packet::DiscoveryReply {
            group: g,
            nonce: 0,
            logger: HostId(u64::MAX),
            level: u8::MAX,
        },
        Packet::LocatePrimary {
            group: g,
            source: s,
            requester: HostId(u64::MAX),
        },
        Packet::PrimaryIs {
            group: g,
            source: s,
            primary: HostId(u64::MAX),
        },
        Packet::ReplUpdate {
            group: g,
            source: s,
            seq: Seq(0),
            payload: big.clone(),
        },
        Packet::ReplAck {
            group: g,
            source: s,
            seq: Seq(u32::MAX),
        },
        Packet::SrmSession {
            group: g,
            member: HostId(u64::MAX),
            last_seq: Seq(u32::MAX),
        },
        Packet::SrmNack {
            group: g,
            source: s,
            requester: HostId(1),
            ranges: vec![wrap],
        },
        Packet::SrmRepair {
            group: g,
            source: s,
            seq: Seq(u32::MAX),
            responder: HostId(u64::MAX),
            payload: empty,
        },
        Packet::ElectPrepare {
            group: g,
            source: s,
            term: u32::MAX,
            candidate: HostId(u64::MAX),
        },
        Packet::ElectPromise {
            group: g,
            source: s,
            term: u32::MAX,
            voter: HostId(u64::MAX),
            log_end: Seq(u32::MAX),
        },
        Packet::TermAnnounce {
            group: g,
            source: s,
            term: 0,
            leader: HostId(0),
        },
    ]
}

#[test]
fn encoded_len_matches_encode() {
    // The invariant the simulator's zero-serialization send path relies
    // on: `encoded_len()` is exactly `encode(p).len()` for every packet.
    let mut r = rng(0x1E4);
    for i in 0..CASES {
        let p = arb_packet(&mut r);
        let enc = encode(&p).expect("encode");
        assert_eq!(p.encoded_len(), enc.len(), "case {i}: {p:?}");
    }
}

#[test]
fn encoded_len_matches_encode_at_extremes() {
    for p in extreme_packets() {
        let enc = encode(&p).expect("encode");
        assert_eq!(p.encoded_len(), enc.len(), "variant {}", p.kind());
    }
}

#[test]
fn extreme_packets_cover_every_variant() {
    let mut kinds: Vec<&str> = extreme_packets().iter().map(|p| p.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), 20, "one extreme per wire variant: {kinds:?}");
}

/// The payload field of a packet, for the zero-copy aliasing check.
fn payload_of(p: &Packet) -> Option<&Bytes> {
    match p {
        Packet::Data { payload, .. }
        | Packet::Heartbeat { payload, .. }
        | Packet::Retrans { payload, .. }
        | Packet::ReplUpdate { payload, .. }
        | Packet::SrmRepair { payload, .. } => Some(payload),
        _ => None,
    }
}

#[test]
fn decode_bytes_matches_decode_over_all_variants() {
    // `decode` is the compatibility wrapper over `decode_bytes`; this
    // pins the equivalence over random packets of every variant, plus
    // the zero-copy contract: a payload decoded by `decode_bytes` must
    // alias the source buffer's allocation, not a copy of it.
    let mut r = rng(0xB17E5);
    let mut aliased = 0usize;
    for i in 0..CASES {
        let p = arb_packet(&mut r);
        let enc = encode(&p).expect("encode");
        let legacy = decode(&enc).expect("decode");
        let zero = lbrm_wire::decode_bytes(enc.clone()).expect("decode_bytes");
        assert_eq!(legacy, zero, "case {i}: decode and decode_bytes disagree");
        assert_eq!(zero, p, "case {i}");
        if let Some(payload) = payload_of(&zero) {
            if !payload.is_empty() {
                let src = enc.as_ptr() as usize..enc.as_ptr() as usize + enc.len();
                assert!(
                    src.contains(&(payload.as_ptr() as usize)),
                    "case {i}: payload was copied out of the source buffer"
                );
                aliased += 1;
            }
        }
    }
    assert!(aliased > 50, "generator must exercise real payloads");
}

#[test]
fn extreme_packets_decode_bytes_equivalence() {
    for p in extreme_packets() {
        let enc = encode(&p).expect("encode");
        assert_eq!(
            decode(&enc).expect("decode"),
            lbrm_wire::decode_bytes(enc.clone()).expect("decode_bytes"),
            "variant {}",
            p.kind()
        );
    }
}

#[test]
fn bundle_roundtrip_over_all_variants() {
    // Random mixes of every packet variant through the bundler: frames
    // respect the MTU (except single-packet jumbos) and unbundle back
    // to the exact input sequence.
    let mut r = rng(0xB0D7E);
    for case in 0..64 {
        let n = r.random_range(1u64..24) as usize;
        let packets: Vec<Packet> = (0..n).map(|_| arb_packet(&mut r)).collect();
        let frames = lbrm_wire::bundle::encode_bundle(&packets, 1400).expect("bundle");
        let got: Vec<Packet> = frames
            .iter()
            .flat_map(|f| lbrm_wire::decode_bundle(f).expect("decode_bundle"))
            .collect();
        assert_eq!(got, packets, "case {case}");
        for f in &frames {
            let inner = lbrm_wire::decode_bundle(f).unwrap();
            assert!(
                f.len() <= 1400 || inner.len() == 1,
                "case {case}: oversized multi-packet frame"
            );
        }
    }
}

#[test]
fn codec_roundtrip() {
    let mut r = rng(0xC0DEC);
    for i in 0..CASES {
        let p = arb_packet(&mut r);
        let enc = encode(&p).expect("encode");
        let dec = decode(&enc).expect("decode");
        assert_eq!(p, dec, "case {i}");
    }
}

#[test]
fn decode_never_panics() {
    let mut r = rng(0xDEC0DE);
    for _ in 0..CASES {
        let len = r.random_range(0u64..256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.random::<u64>() as u8).collect();
        let _ = decode(&bytes);
    }
}

#[test]
fn decode_rejects_random_bytes_with_valid_header_shape() {
    // Forge a header around random bytes; the checksum makes a false
    // accept astronomically unlikely but decode must never panic and
    // never produce a packet longer than the buffer claims.
    let mut r = rng(0xF0463);
    for _ in 0..CASES {
        let body_len = r.random_range(0u64..64) as usize;
        let body: Vec<u8> = (0..body_len).map(|_| r.random::<u64>() as u8).collect();
        let typ = r.random_range(1u64..=20) as u8;
        let mut pkt = vec![0x4C, 0x42, 1, typ];
        let len = (body.len() + 8) as u16;
        pkt.extend_from_slice(&len.to_be_bytes());
        pkt.extend_from_slice(&[0, 0]);
        pkt.extend_from_slice(&body);
        let _ = decode(&pkt);
    }
}

#[test]
fn seq_total_order_locally() {
    let mut r = rng(0x5E9);
    for _ in 0..CASES {
        let x = Seq(r.random::<u32>());
        let d = r.random_range(1u64..(1 << 30)) as u32;
        let y = x.add(d);
        assert!(x.before(y));
        assert!(!y.before(x));
        assert!(y.after(x));
        assert_eq!(y.distance_from(x), d);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}

#[test]
fn seq_iter_matches_distance() {
    let mut r = rng(0x17E8);
    for _ in 0..CASES {
        let x = Seq(r.random::<u32>());
        let d = r.random_range(0u64..200) as u32;
        let y = x.add(d);
        let v: Vec<_> = x.iter_to(y).collect();
        assert_eq!(v.len() as u32, d + 1);
        assert_eq!(v[0], x);
        assert_eq!(*v.last().unwrap(), y);
    }
}

#[test]
fn text_roundtrip_updates() {
    use lbrm_wire::text::{parse_message, TextMessage};
    let mut r = rng(0x7E87);
    for _ in 0..CASES {
        let m = TextMessage::Update {
            seq: Seq(r.random::<u32>()),
            url: "http://example.org/doc.html".into(),
            retrans: r.random::<bool>(),
        };
        assert_eq!(parse_message(&m.to_string()).unwrap(), m);
    }
}

#[test]
fn text_roundtrip_heartbeats() {
    use lbrm_wire::text::{parse_message, TextMessage};
    let mut r = rng(0x48B7);
    for _ in 0..CASES {
        let m = TextMessage::Heartbeat {
            seq: Seq(r.random::<u32>()),
            hb_index: r.random_range(1u64..=u64::from(u32::MAX)) as u32,
        };
        assert_eq!(parse_message(&m.to_string()).unwrap(), m);
    }
}
