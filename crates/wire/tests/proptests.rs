//! Property tests for the wire layer: arbitrary packets roundtrip through
//! the binary codec, arbitrary bytes never panic the decoder, and
//! sequence arithmetic obeys serial-number laws.

use bytes::Bytes;
use lbrm_wire::packet::{Packet, SeqRange};
use lbrm_wire::{decode, encode, EpochId, GroupId, HostId, Seq, SourceId};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..512).prop_map(Bytes::from)
}

fn arb_ranges() -> impl Strategy<Value = Vec<SeqRange>> {
    proptest::collection::vec((any::<u32>(), 0u32..1000), 0..16).prop_map(|v| {
        v.into_iter()
            .map(|(first, span)| SeqRange { first: Seq(first), last: Seq(first).add(span) })
            .collect()
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    let ids = (any::<u32>(), any::<u64>(), any::<u32>(), any::<u32>());
    prop_oneof![
        (ids, arb_payload()).prop_map(|((g, s, q, e), payload)| Packet::Data {
            group: GroupId(g),
            source: SourceId(s),
            seq: Seq(q),
            epoch: EpochId(e),
            payload,
        }),
        (ids, any::<u32>(), arb_payload()).prop_map(|((g, s, q, e), hb, payload)| {
            Packet::Heartbeat {
                group: GroupId(g),
                source: SourceId(s),
                seq: Seq(q),
                epoch: EpochId(e),
                hb_index: hb,
                payload,
            }
        }),
        (ids, any::<u64>(), arb_ranges()).prop_map(|((g, s, _, _), r, ranges)| Packet::Nack {
            group: GroupId(g),
            source: SourceId(s),
            requester: HostId(r),
            ranges,
        }),
        (ids, arb_payload()).prop_map(|((g, s, q, _), payload)| Packet::Retrans {
            group: GroupId(g),
            source: SourceId(s),
            seq: Seq(q),
            payload,
        }),
        ids.prop_map(|(g, s, p, r)| Packet::LogAck {
            group: GroupId(g),
            source: SourceId(s),
            primary_seq: Seq(p),
            replica_seq: Seq(r),
        }),
        (ids, 0.0f64..=1.0).prop_map(|((g, s, _, e), p_ack)| Packet::AckerSelect {
            group: GroupId(g),
            source: SourceId(s),
            epoch: EpochId(e),
            p_ack,
        }),
        (ids, any::<u64>()).prop_map(|((g, s, _, e), l)| Packet::AckerVolunteer {
            group: GroupId(g),
            source: SourceId(s),
            epoch: EpochId(e),
            logger: HostId(l),
        }),
        (ids, any::<u64>()).prop_map(|((g, s, q, e), l)| Packet::PacketAck {
            group: GroupId(g),
            source: SourceId(s),
            epoch: EpochId(e),
            seq: Seq(q),
            logger: HostId(l),
        }),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(g, n, r)| Packet::DiscoveryQuery {
            group: GroupId(g),
            nonce: n,
            requester: HostId(r),
        }),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u8>()).prop_map(|(g, n, l, lvl)| {
            Packet::DiscoveryReply { group: GroupId(g), nonce: n, logger: HostId(l), level: lvl }
        }),
        (ids, arb_payload()).prop_map(|((g, s, q, _), payload)| Packet::ReplUpdate {
            group: GroupId(g),
            source: SourceId(s),
            seq: Seq(q),
            payload,
        }),
        ids.prop_map(|(g, s, q, _)| Packet::ReplAck {
            group: GroupId(g),
            source: SourceId(s),
            seq: Seq(q),
        }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(g, m, q)| Packet::SrmSession {
            group: GroupId(g),
            member: HostId(m),
            last_seq: Seq(q),
        }),
        (ids, any::<u64>(), arb_ranges()).prop_map(|((g, s, _, _), r, ranges)| Packet::SrmNack {
            group: GroupId(g),
            source: SourceId(s),
            requester: HostId(r),
            ranges,
        }),
        (ids, any::<u64>(), arb_payload()).prop_map(|((g, s, q, _), r, payload)| {
            Packet::SrmRepair {
                group: GroupId(g),
                source: SourceId(s),
                seq: Seq(q),
                responder: HostId(r),
                payload,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrip(p in arb_packet()) {
        let enc = encode(&p).expect("encode");
        let dec = decode(&enc).expect("decode");
        prop_assert_eq!(p, dec);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn decode_rejects_random_bytes_with_valid_header_shape(
        body in proptest::collection::vec(any::<u8>(), 0..64),
        typ in 1u8..=17,
    ) {
        // Forge a header around random bytes; the checksum makes a false
        // accept astronomically unlikely but decode must never panic and
        // never produce a packet longer than the buffer claims.
        let mut pkt = vec![0x4C, 0x42, 1, typ];
        let len = (body.len() + 8) as u16;
        pkt.extend_from_slice(&len.to_be_bytes());
        pkt.extend_from_slice(&[0, 0]);
        pkt.extend_from_slice(&body);
        let _ = decode(&pkt);
    }

    #[test]
    fn seq_total_order_locally(a in any::<u32>(), d in 1u32..(1 << 30)) {
        let x = Seq(a);
        let y = x.add(d);
        prop_assert!(x.before(y));
        prop_assert!(!y.before(x));
        prop_assert!(y.after(x));
        prop_assert_eq!(y.distance_from(x), d);
        prop_assert_eq!(x.max(y), y);
        prop_assert_eq!(x.min(y), x);
    }

    #[test]
    fn seq_iter_matches_distance(a in any::<u32>(), d in 0u32..200) {
        let x = Seq(a);
        let y = x.add(d);
        let v: Vec<_> = x.iter_to(y).collect();
        prop_assert_eq!(v.len() as u32, d + 1);
        prop_assert_eq!(v[0], x);
        prop_assert_eq!(*v.last().unwrap(), y);
    }

    #[test]
    fn text_roundtrip_updates(seq in any::<u32>(), retrans in any::<bool>()) {
        use lbrm_wire::text::{parse_message, TextMessage};
        let m = TextMessage::Update {
            seq: Seq(seq),
            url: "http://example.org/doc.html".into(),
            retrans,
        };
        prop_assert_eq!(parse_message(&m.to_string()).unwrap(), m);
    }

    #[test]
    fn text_roundtrip_heartbeats(seq in any::<u32>(), hb in 1u32..) {
        use lbrm_wire::text::{parse_message, TextMessage};
        let m = TextMessage::Heartbeat { seq: Seq(seq), hb_index: hb };
        prop_assert_eq!(parse_message(&m.to_string()).unwrap(), m);
    }
}
