//! The HTML document invalidation text protocol (Appendix A).
//!
//! Each HTML file associates itself with a multicast address through a
//! comment on its first line:
//!
//! ```text
//! <!MULTICAST.234.12.29.72.>
//! ```
//!
//! The HTTP server multicasts human-readable invalidation messages:
//!
//! ```text
//! TRANS:17.0:UPDATE:http://www-DSG.Stanford.EDU/groupMembers.html
//! TRANS:17.12:HEARTBEAT
//! RETRANS:17.0:UPDATE:http://www-DSG.Stanford.EDU/groupMembers.html
//! ```
//!
//! `TRANS:<seq>.<hb>` identifies the `<hb>`-th heartbeat after update
//! sequence `<seq>` (`hb = 0` is the original transmission). A
//! retransmission from the logging process carries the `RETRANS` tag
//! instead of `TRANS`. The parser accepts optional whitespace after each
//! separator, as in the paper's examples.

use std::fmt;
use std::net::Ipv4Addr;

use crate::seq::Seq;

/// A message of the Appendix-A invalidation protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextMessage {
    /// A document update announcement: caches holding `url` are invalid.
    Update {
        /// Update sequence number.
        seq: Seq,
        /// The invalidated document.
        url: String,
        /// `true` when this is a `RETRANS` from the logging process.
        retrans: bool,
    },
    /// A keep-alive repeating the last update sequence number.
    Heartbeat {
        /// Last update sequence number.
        seq: Seq,
        /// Heartbeat index since that update (1-based).
        hb_index: u32,
    },
}

impl TextMessage {
    /// The update sequence number the message refers to.
    pub fn seq(&self) -> Seq {
        match self {
            TextMessage::Update { seq, .. } | TextMessage::Heartbeat { seq, .. } => *seq,
        }
    }
}

impl fmt::Display for TextMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextMessage::Update { seq, url, retrans } => {
                let tag = if *retrans { "RETRANS" } else { "TRANS" };
                write!(f, "{tag}:{}.0:UPDATE:{url}", seq.raw())
            }
            TextMessage::Heartbeat { seq, hb_index } => {
                write!(f, "TRANS:{}.{hb_index}:HEARTBEAT", seq.raw())
            }
        }
    }
}

/// Errors produced while parsing the text protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// The leading tag was neither `TRANS` nor `RETRANS`.
    BadTag,
    /// The `<seq>.<hb>` pair was malformed.
    BadSequence,
    /// The operation was neither `UPDATE` nor `HEARTBEAT`.
    BadOperation,
    /// An `UPDATE` without a URL, or a heartbeat claiming `hb = 0`.
    Malformed,
    /// The `<!MULTICAST...>` tag was absent or malformed.
    BadMulticastTag,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::BadTag => write!(f, "expected TRANS or RETRANS"),
            TextError::BadSequence => write!(f, "malformed <seq>.<hb> field"),
            TextError::BadOperation => write!(f, "expected UPDATE or HEARTBEAT"),
            TextError::Malformed => write!(f, "malformed message"),
            TextError::BadMulticastTag => write!(f, "missing or malformed <!MULTICAST...> tag"),
        }
    }
}

impl std::error::Error for TextError {}

/// Parses one invalidation-protocol message.
///
/// ```
/// use lbrm_wire::text::{parse_message, TextMessage};
/// use lbrm_wire::Seq;
///
/// // Verbatim from Appendix A:
/// let m = parse_message("TRANS: 17.12: HEARTBEAT").unwrap();
/// assert_eq!(m, TextMessage::Heartbeat { seq: Seq(17), hb_index: 12 });
/// ```
///
/// # Errors
///
/// A [`TextError`] describing the first malformed field.
pub fn parse_message(line: &str) -> Result<TextMessage, TextError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.splitn(3, ':');
    let tag = parts.next().ok_or(TextError::BadTag)?.trim();
    let retrans = match tag {
        "TRANS" => false,
        "RETRANS" => true,
        _ => return Err(TextError::BadTag),
    };

    let seq_field = parts.next().ok_or(TextError::BadSequence)?.trim();
    let (seq_str, hb_str) = seq_field.split_once('.').ok_or(TextError::BadSequence)?;
    let seq: u32 = seq_str.trim().parse().map_err(|_| TextError::BadSequence)?;
    let hb: u32 = hb_str.trim().parse().map_err(|_| TextError::BadSequence)?;

    let rest = parts.next().ok_or(TextError::BadOperation)?.trim_start();
    if let Some(url) = rest.strip_prefix("UPDATE:") {
        let url = url.trim();
        if url.is_empty() {
            return Err(TextError::Malformed);
        }
        if hb != 0 {
            // An UPDATE is by definition the original transmission.
            return Err(TextError::Malformed);
        }
        Ok(TextMessage::Update {
            seq: Seq(seq),
            url: url.to_owned(),
            retrans,
        })
    } else if rest.trim() == "HEARTBEAT" {
        if hb == 0 {
            return Err(TextError::Malformed);
        }
        if retrans {
            // Heartbeats are never retransmitted.
            return Err(TextError::BadTag);
        }
        Ok(TextMessage::Heartbeat {
            seq: Seq(seq),
            hb_index: hb,
        })
    } else {
        Err(TextError::BadOperation)
    }
}

/// Extracts the invalidation multicast address from the first line of an
/// HTML document, per Appendix A: `<!MULTICAST.234.12.29.72.>`.
///
/// # Errors
///
/// [`TextError::BadMulticastTag`] when the tag is absent or the dotted
/// quad is not a valid multicast address.
pub fn parse_multicast_tag(html: &str) -> Result<Ipv4Addr, TextError> {
    let first = html.lines().next().ok_or(TextError::BadMulticastTag)?;
    let start = first
        .find("<!MULTICAST.")
        .ok_or(TextError::BadMulticastTag)?;
    let rest = &first[start + "<!MULTICAST.".len()..];
    let end = rest.find(".>").ok_or(TextError::BadMulticastTag)?;
    let addr: Ipv4Addr = rest[..end]
        .parse()
        .map_err(|_| TextError::BadMulticastTag)?;
    if !addr.is_multicast() {
        return Err(TextError::BadMulticastTag);
    }
    Ok(addr)
}

/// Renders the first-line association tag for `addr`.
pub fn multicast_tag(addr: Ipv4Addr) -> String {
    format!("<!MULTICAST.{addr}.>")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        // Both examples are verbatim from Appendix A (the paper's second
        // example includes whitespace after the separators).
        let m = parse_message("TRANS:17.0:UPDATE: http://www-DSG.Stanford.EDU/groupMembers.html")
            .unwrap();
        assert_eq!(
            m,
            TextMessage::Update {
                seq: Seq(17),
                url: "http://www-DSG.Stanford.EDU/groupMembers.html".into(),
                retrans: false,
            }
        );

        let m = parse_message("TRANS: 17.12: HEARTBEAT").unwrap();
        assert_eq!(
            m,
            TextMessage::Heartbeat {
                seq: Seq(17),
                hb_index: 12
            }
        );
    }

    #[test]
    fn retrans_tag() {
        let m = parse_message("RETRANS:17.0:UPDATE:http://example.org/x.html").unwrap();
        assert!(matches!(m, TextMessage::Update { retrans: true, .. }));
    }

    #[test]
    fn display_roundtrip() {
        let msgs = [
            TextMessage::Update {
                seq: Seq(5),
                url: "http://a/b.html".into(),
                retrans: false,
            },
            TextMessage::Update {
                seq: Seq(5),
                url: "http://a/b.html".into(),
                retrans: true,
            },
            TextMessage::Heartbeat {
                seq: Seq(5),
                hb_index: 3,
            },
        ];
        for m in msgs {
            assert_eq!(parse_message(&m.to_string()).unwrap(), m);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(parse_message("NOPE:1.0:HEARTBEAT"), Err(TextError::BadTag));
        assert_eq!(
            parse_message("TRANS:xy.0:HEARTBEAT"),
            Err(TextError::BadSequence)
        );
        assert_eq!(
            parse_message("TRANS:1:HEARTBEAT"),
            Err(TextError::BadSequence)
        );
        assert_eq!(
            parse_message("TRANS:1.0:FROB:x"),
            Err(TextError::BadOperation)
        );
        assert_eq!(
            parse_message("TRANS:1.0:UPDATE:"),
            Err(TextError::Malformed)
        );
        // hb must be 0 for updates, nonzero for heartbeats
        assert_eq!(
            parse_message("TRANS:1.2:UPDATE:http://x/"),
            Err(TextError::Malformed)
        );
        assert_eq!(
            parse_message("TRANS:1.0:HEARTBEAT"),
            Err(TextError::Malformed)
        );
        // heartbeats are never retransmitted
        assert_eq!(
            parse_message("RETRANS:1.2:HEARTBEAT"),
            Err(TextError::BadTag)
        );
    }

    #[test]
    fn multicast_tag_roundtrip() {
        let addr: Ipv4Addr = "234.12.29.72".parse().unwrap();
        let html = format!("{}\n<html>...</html>", multicast_tag(addr));
        assert_eq!(parse_multicast_tag(&html).unwrap(), addr);
    }

    #[test]
    fn multicast_tag_paper_example() {
        let html = "<!MULTICAST.234.12.29.72.>\n<h1>hello</h1>";
        assert_eq!(
            parse_multicast_tag(html).unwrap(),
            Ipv4Addr::new(234, 12, 29, 72)
        );
    }

    #[test]
    fn multicast_tag_rejects_non_multicast_and_garbage() {
        assert_eq!(
            parse_multicast_tag("<!MULTICAST.10.0.0.1.>\n"),
            Err(TextError::BadMulticastTag)
        );
        assert_eq!(
            parse_multicast_tag("<html>"),
            Err(TextError::BadMulticastTag)
        );
        assert_eq!(parse_multicast_tag(""), Err(TextError::BadMulticastTag));
        assert_eq!(
            parse_multicast_tag("<!MULTICAST.not.an.addr.>\n"),
            Err(TextError::BadMulticastTag)
        );
    }

    #[test]
    fn crlf_tolerated() {
        let m = parse_message("TRANS:3.1:HEARTBEAT\r\n").unwrap();
        assert_eq!(
            m,
            TextMessage::Heartbeat {
                seq: Seq(3),
                hb_index: 1
            }
        );
    }
}
