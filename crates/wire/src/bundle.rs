//! DIS-style PDU bundling: many packets in one datagram.
//!
//! High-rate simulation traffic and NACK-storm repair serving both emit
//! long runs of small packets to one destination; sending each as its
//! own datagram pays per-datagram syscall, header, and checksum costs N
//! times. A bundle frame amortizes all three (all integers big-endian):
//!
//! ```text
//! +--------+---------+-------+--------+----------+-------------------+
//! | magic  | version | count | length | checksum | entries ...       |
//! | u16    | u8      | u8    | u16    | u16      |                   |
//! +--------+---------+-------+--------+----------+-------------------+
//! entry: | len u16 | packet bytes (checksum field zero) |
//! ```
//!
//! * `magic` is `0x4C44` (`"LD"`), distinct from the packet magic so a
//!   receiver classifies a datagram by its first two bytes.
//! * `length` is the total frame length including the 8-byte header.
//! * `checksum` is **one** RFC 1071 pass over the whole frame with the
//!   field zeroed — entries carry zero checksums (verified to be zero on
//!   decode), so bundling N packets never runs N+1 checksums.
//!
//! The MTU flush rule: [`BundleBuilder::push`] seals the in-progress
//! frame when adding the next packet would push it past the configured
//! MTU (or past 255 entries); a packet bigger than the MTU alone still
//! travels, as a one-entry "jumbo" frame, bounded only by
//! [`MAX_PACKET_SIZE`]. Unbundling yields packets in push order, so a
//! receiver observes exactly the sequence it would have seen unbundled.

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{self, WireError, HEADER_LEN, MAX_PACKET_SIZE, VERSION};
use crate::packet::Packet;

/// Magic bytes identifying a bundle frame ("LD").
pub const BUNDLE_MAGIC: u16 = 0x4C44;
/// Bundle frame header length in bytes.
pub const BUNDLE_HEADER_LEN: usize = 8;
/// Per-entry framing overhead (the `len` prefix).
pub const ENTRY_PREFIX_LEN: usize = 2;
/// Default flush threshold: a conservative Ethernet-path MTU, so a full
/// bundle still fits one unfragmented datagram on typical WANs.
pub const DEFAULT_BUNDLE_MTU: usize = 1400;
/// Maximum packets per frame (the `count` field is a `u8`).
pub const MAX_BUNDLE_PACKETS: usize = 255;

/// Whether a received datagram is a bundle frame (vs a bare packet),
/// decided from the magic in its first two bytes.
pub fn is_bundle(data: &[u8]) -> bool {
    data.len() >= 2 && u16::from_be_bytes([data[0], data[1]]) == BUNDLE_MAGIC
}

/// Bytes `p` occupies inside a bundle frame: its encoding plus the
/// entry length prefix. Arithmetic only — this is what the simulator
/// uses to model bundle framing without serializing.
pub fn bundled_entry_len(p: &Packet) -> usize {
    ENTRY_PREFIX_LEN + p.encoded_len()
}

/// Whether bundling is enabled, selected by `LBRM_BUNDLE`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BundleMode {
    /// One packet per datagram (the pre-bundling wire behavior).
    #[default]
    Off,
    /// Runs of same-destination sends coalesce into bundle frames.
    On,
}

impl BundleMode {
    /// Mode selected by the `LBRM_BUNDLE` environment variable. Strict,
    /// mirroring `LBRM_SIM_QUEUE` / `LBRM_LOG_STORE`: only `"on"`,
    /// `"off"`, the empty string, or unset are accepted — a typo in a CI
    /// matrix must fail loudly, not silently run the default leg twice.
    ///
    /// # Panics
    ///
    /// Panics on any other value.
    pub fn from_env() -> BundleMode {
        match std::env::var("LBRM_BUNDLE") {
            Err(std::env::VarError::NotPresent) => BundleMode::Off,
            Err(e) => panic!("LBRM_BUNDLE is not valid unicode: {e}"),
            Ok(v) => match Self::parse(&v) {
                Some(m) => m,
                None => panic!("LBRM_BUNDLE must be \"on\" or \"off\" (or unset), got {v:?}"),
            },
        }
    }

    /// Parses a mode name: `"on"`, `"off"` (case-insensitive), or the
    /// empty string (treated as unset → off).
    pub fn parse(v: &str) -> Option<BundleMode> {
        if v.is_empty() || v.eq_ignore_ascii_case("off") {
            Some(BundleMode::Off)
        } else if v.eq_ignore_ascii_case("on") {
            Some(BundleMode::On)
        } else {
            None
        }
    }

    /// True when bundling is enabled.
    pub fn is_on(self) -> bool {
        self == BundleMode::On
    }
}

/// Incremental, MTU-bounded bundle assembly over two reusable scratch
/// buffers — steady-state bundling never allocates.
///
/// [`push`](Self::push) appends a packet to the in-progress frame; when
/// the packet does not fit, the frame is sealed (count, length and the
/// single checksum patched in place) and returned for sending while the
/// packet starts the next frame. [`flush`](Self::flush) seals whatever
/// remains. Frames come back as `&[u8]` borrows of the builder's own
/// storage, so the caller sends straight from the scratch.
pub struct BundleBuilder {
    mtu: usize,
    buf: BytesMut,
    sealed: BytesMut,
    count: usize,
}

impl BundleBuilder {
    /// A builder flushing at `mtu` bytes per frame. Clamped to
    /// `[BUNDLE_HEADER_LEN + ENTRY_PREFIX_LEN + HEADER_LEN,
    /// MAX_PACKET_SIZE]` so every frame can hold at least a minimal
    /// packet and no frame can exceed a UDP datagram.
    pub fn new(mtu: usize) -> BundleBuilder {
        let floor = BUNDLE_HEADER_LEN + ENTRY_PREFIX_LEN + HEADER_LEN;
        BundleBuilder {
            mtu: mtu.clamp(floor, MAX_PACKET_SIZE),
            buf: BytesMut::with_capacity(DEFAULT_BUNDLE_MTU),
            sealed: BytesMut::with_capacity(DEFAULT_BUNDLE_MTU),
            count: 0,
        }
    }

    /// A builder at [`DEFAULT_BUNDLE_MTU`].
    pub fn with_default_mtu() -> BundleBuilder {
        BundleBuilder::new(DEFAULT_BUNDLE_MTU)
    }

    /// The configured flush threshold.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Packets accumulated in the in-progress (unsealed) frame.
    pub fn pending(&self) -> usize {
        self.count
    }

    /// True when no packets are awaiting a flush.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends `p`. When `p` does not fit the in-progress frame, that
    /// frame is sealed and returned — send it before pushing again —
    /// and `p` opens the next frame.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] when `p` cannot fit even a frame of its
    /// own (its entry would exceed [`MAX_PACKET_SIZE`]); any
    /// [`codec::validate`]-rejected packet errors without disturbing the
    /// in-progress frame.
    pub fn push(&mut self, p: &Packet) -> Result<Option<&[u8]>, WireError> {
        codec::validate(p)?;
        let entry = bundled_entry_len(p);
        if BUNDLE_HEADER_LEN + entry > MAX_PACKET_SIZE {
            return Err(WireError::TooLarge(BUNDLE_HEADER_LEN + entry));
        }
        let flushed = self.count > 0
            && (self.count == MAX_BUNDLE_PACKETS || self.buf.len() + entry > self.mtu);
        if flushed {
            self.seal();
        }
        if self.count == 0 {
            self.buf.put_u16(BUNDLE_MAGIC);
            self.buf.put_u8(VERSION);
            self.buf.put_u8(0); // count placeholder
            self.buf.put_u16(0); // length placeholder
            self.buf.put_u16(0); // checksum placeholder
        }
        let at = self.buf.len();
        self.buf.put_u16(0); // entry length placeholder
        let written = codec::write_packet_zero_checksum(p, &mut self.buf)?;
        let plen = self.buf.len() - written;
        self.buf[at..at + 2].copy_from_slice(&(plen as u16).to_be_bytes());
        self.count += 1;
        Ok(flushed.then(|| &self.sealed[..]))
    }

    /// Seals and returns the in-progress frame, or `None` when empty.
    /// The returned slice stays valid until the next `push`/`flush`.
    pub fn flush(&mut self) -> Option<&[u8]> {
        if self.count == 0 {
            return None;
        }
        self.seal();
        Some(&self.sealed[..])
    }

    /// Patches count, length and the single frame checksum in place,
    /// then swaps the frame into the sealed slot (both allocations are
    /// kept and reused).
    fn seal(&mut self) {
        debug_assert!(self.count >= 1 && self.count <= MAX_BUNDLE_PACKETS);
        let total = self.buf.len();
        debug_assert!(total <= MAX_PACKET_SIZE);
        self.buf[3] = self.count as u8;
        self.buf[4..6].copy_from_slice(&(total as u16).to_be_bytes());
        // The checksum field is still zero, so one pass over the frame
        // is exactly the checksum-with-zeroed-field.
        let cksum = codec::internet_checksum(&self.buf);
        self.buf[6..8].copy_from_slice(&cksum.to_be_bytes());
        std::mem::swap(&mut self.buf, &mut self.sealed);
        self.buf.clear();
        self.count = 0;
    }
}

/// Bundles `packets` into MTU-bounded frames, preserving order. A
/// convenience over [`BundleBuilder`] for callers that want owned
/// frames (tests, benchmarks); transports should drive the builder
/// directly and send from its scratch.
///
/// # Errors
///
/// Any error [`BundleBuilder::push`] reports.
pub fn encode_bundle(packets: &[Packet], mtu: usize) -> Result<Vec<Bytes>, WireError> {
    let mut b = BundleBuilder::new(mtu);
    let mut out = Vec::new();
    for p in packets {
        if let Some(frame) = b.push(p)? {
            out.push(Bytes::copy_from_slice(frame));
        }
    }
    if let Some(frame) = b.flush() {
        out.push(Bytes::copy_from_slice(frame));
    }
    Ok(out)
}

/// Decodes a bundle frame into its packets, in bundled order. Payloads
/// are zero-copy slices of `data` (see [`crate::decode_bytes`]): one
/// frame checksum pass, then per-entry structural decoding with no
/// per-packet checksum and no payload copies.
///
/// # Errors
///
/// Strict, like packet decoding: bad magic/version, a zero count, a
/// length field disagreeing with the buffer, frames over
/// [`MAX_PACKET_SIZE`], checksum mismatch, truncated or trailing entry
/// bytes, and any per-entry decode error all reject the whole frame.
pub fn decode_bundle(data: &Bytes) -> Result<Vec<Packet>, WireError> {
    if data.len() < BUNDLE_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic = u16::from_be_bytes([data[0], data[1]]);
    if magic != BUNDLE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if data[2] != VERSION {
        return Err(WireError::BadVersion(data[2]));
    }
    let count = data[3] as usize;
    let claimed = u16::from_be_bytes([data[4], data[5]]) as usize;
    if claimed != data.len() {
        return Err(WireError::BadLength {
            claimed,
            actual: data.len(),
        });
    }
    if data.len() > MAX_PACKET_SIZE {
        return Err(WireError::TooLarge(data.len()));
    }
    if count == 0 {
        return Err(WireError::FieldOverflow);
    }
    let wire_cksum = u16::from_be_bytes([data[6], data[7]]);
    if codec::checksum_with_zeroed_field(data) != wire_cksum {
        return Err(WireError::BadChecksum);
    }
    let mut out = Vec::with_capacity(count);
    let mut pos = BUNDLE_HEADER_LEN;
    for _ in 0..count {
        if data.len() - pos < ENTRY_PREFIX_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([data[pos], data[pos + 1]]) as usize;
        pos += ENTRY_PREFIX_LEN;
        if data.len() - pos < len {
            return Err(WireError::Truncated);
        }
        let entry = data.slice(pos..pos + len);
        pos += len;
        out.push(codec::decode_packet(entry, false)?);
    }
    if pos != data.len() {
        return Err(WireError::BadLength {
            claimed: pos,
            actual: data.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EpochId, GroupId, HostId, SourceId};
    use crate::packet::SeqRange;
    use crate::seq::Seq;

    fn data(seq: u32, payload: &'static [u8]) -> Packet {
        Packet::Data {
            group: GroupId(1),
            source: SourceId(2),
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(payload),
        }
    }

    fn retrans(seq: u32, size: usize) -> Packet {
        Packet::Retrans {
            group: GroupId(1),
            source: SourceId(2),
            seq: Seq(seq),
            payload: Bytes::from(vec![0x5A; size]),
        }
    }

    #[test]
    fn roundtrip_preserves_order_and_contents() {
        let packets: Vec<Packet> = (0..40).map(|i| retrans(i, 100)).collect();
        let frames = encode_bundle(&packets, DEFAULT_BUNDLE_MTU).unwrap();
        assert!(frames.len() > 1, "40 x ~130B must span several MTU frames");
        let mut got = Vec::new();
        for f in &frames {
            assert!(is_bundle(f));
            got.extend(decode_bundle(f).unwrap());
        }
        assert_eq!(got, packets, "unbundling must yield packets in order");
    }

    #[test]
    fn mtu_flush_rule_bounds_every_frame() {
        let packets: Vec<Packet> = (0..100).map(|i| retrans(i, 64)).collect();
        for mtu in [200, 512, 1400] {
            let frames = encode_bundle(&packets, mtu).unwrap();
            for f in &frames {
                assert!(
                    f.len() <= mtu,
                    "frame of {} bytes exceeds mtu {mtu}",
                    f.len()
                );
            }
            let total: usize = frames.iter().map(|f| decode_bundle(f).unwrap().len()).sum();
            assert_eq!(total, packets.len());
        }
    }

    #[test]
    fn one_checksum_pass_many_packets() {
        // Every inner entry must carry a zero checksum field; only the
        // frame checksum is set.
        let packets: Vec<Packet> = (0..5).map(|i| data(i, b"tick")).collect();
        let frames = encode_bundle(&packets, DEFAULT_BUNDLE_MTU).unwrap();
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_ne!(u16::from_be_bytes([f[6], f[7]]), 0, "frame checksum set");
        let mut pos = BUNDLE_HEADER_LEN;
        for _ in 0..5 {
            let len = u16::from_be_bytes([f[pos], f[pos + 1]]) as usize;
            let entry = &f[pos + 2..pos + 2 + len];
            assert_eq!(entry[6], 0, "inner checksum must stay zero");
            assert_eq!(entry[7], 0);
            pos += 2 + len;
        }
    }

    #[test]
    fn jumbo_packet_travels_as_one_entry_frame() {
        let big = retrans(1, 8000); // far over the default MTU
        let frames = encode_bundle(
            &[data(0, b"a"), big.clone(), data(2, b"b")],
            DEFAULT_BUNDLE_MTU,
        )
        .unwrap();
        assert_eq!(frames.len(), 3, "jumbo forces flushes around it");
        assert_eq!(decode_bundle(&frames[1]).unwrap(), vec![big]);
    }

    #[test]
    fn oversized_packet_is_rejected_not_framed() {
        // An entry that cannot fit MAX_PACKET_SIZE even alone must error
        // on the send side, and must not disturb the in-progress frame.
        let mut b = BundleBuilder::with_default_mtu();
        assert!(b.push(&data(1, b"ok")).unwrap().is_none());
        let too_big = retrans(2, MAX_PACKET_SIZE - HEADER_LEN);
        assert!(matches!(b.push(&too_big), Err(WireError::TooLarge(_))));
        assert_eq!(b.pending(), 1, "rejected push must not disturb the frame");
        let frame = Bytes::copy_from_slice(b.flush().unwrap());
        assert_eq!(decode_bundle(&frame).unwrap(), vec![data(1, b"ok")]);
    }

    #[test]
    fn oversized_bundle_frame_is_rejected_on_decode() {
        // Forge a frame whose length field admits more than
        // MAX_PACKET_SIZE bytes: the u16 length can describe up to
        // 65,535, above the 65,507 UDP bound, and decode must refuse it.
        let total: usize = MAX_PACKET_SIZE + 20;
        let mut f = vec![0u8; total];
        f[0..2].copy_from_slice(&BUNDLE_MAGIC.to_be_bytes());
        f[2] = VERSION;
        f[3] = 1;
        f[4..6].copy_from_slice(&(total as u16).to_be_bytes());
        let ck = codec::internet_checksum(&f);
        f[6..8].copy_from_slice(&ck.to_be_bytes());
        let frame = Bytes::from(f);
        assert_eq!(decode_bundle(&frame), Err(WireError::TooLarge(total)));
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let frames = encode_bundle(&[data(1, b"x"), data(2, b"y")], 1400).unwrap();
        let good = frames[0].clone();

        let mut bad = good.to_vec();
        bad[0] = 0;
        assert!(matches!(
            decode_bundle(&Bytes::from(bad)),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.to_vec();
        bad[2] = 9;
        assert!(matches!(
            decode_bundle(&Bytes::from(bad)),
            Err(WireError::BadVersion(9))
        ));

        // Zero count (checksum refreshed so the count check is what fires).
        let mut bad = good.to_vec();
        bad[3] = 0;
        bad[6] = 0;
        bad[7] = 0;
        let ck = codec::internet_checksum(&bad);
        bad[6..8].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(
            decode_bundle(&Bytes::from(bad)),
            Err(WireError::FieldOverflow)
        );

        // Trailing garbage breaks the length check.
        let mut bad = good.to_vec();
        bad.push(0);
        assert!(matches!(
            decode_bundle(&Bytes::from(bad)),
            Err(WireError::BadLength { .. })
        ));

        // Any single flipped byte is caught.
        for i in 0..good.len() {
            let mut bad = good.to_vec();
            bad[i] ^= 0xFF;
            assert!(
                decode_bundle(&Bytes::from(bad)).is_err(),
                "corruption at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn count_field_caps_entries_per_frame() {
        let tiny: Vec<Packet> = (0..300)
            .map(|i| Packet::ReplAck {
                group: GroupId(1),
                source: SourceId(1),
                seq: Seq(i),
            })
            .collect();
        let frames = encode_bundle(&tiny, MAX_PACKET_SIZE).unwrap();
        assert!(frames.len() >= 2, "count u8 must force a second frame");
        assert_eq!(decode_bundle(&frames[0]).unwrap().len(), MAX_BUNDLE_PACKETS);
        let total: usize = frames.iter().map(|f| decode_bundle(f).unwrap().len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn decoded_payloads_share_the_frame_allocation() {
        let frames = encode_bundle(&[retrans(1, 64), retrans(2, 64)], 1400).unwrap();
        let frame = &frames[0];
        let range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        for p in decode_bundle(frame).unwrap() {
            let Packet::Retrans { payload, .. } = p else {
                panic!("retrans expected");
            };
            assert!(
                range.contains(&(payload.as_ptr() as usize)),
                "payload must alias the frame buffer (zero-copy)"
            );
        }
    }

    #[test]
    fn validate_rejected_packets_do_not_corrupt_state() {
        let mut b = BundleBuilder::with_default_mtu();
        let bad = Packet::AckerSelect {
            group: GroupId(1),
            source: SourceId(1),
            epoch: EpochId(1),
            p_ack: 2.0,
        };
        assert_eq!(b.push(&bad), Err(WireError::BadProbability));
        let bad = Packet::Nack {
            group: GroupId(1),
            source: SourceId(1),
            requester: HostId(1),
            ranges: vec![SeqRange::single(Seq(1)); crate::codec::MAX_NACK_RANGES + 1],
        };
        assert_eq!(b.push(&bad), Err(WireError::FieldOverflow));
        assert!(b.is_empty());
        assert!(b.flush().is_none());
    }

    #[test]
    fn mode_parses_strictly() {
        // Only asserts the parser, not the process env (tests share it).
        assert_eq!(BundleMode::parse("on"), Some(BundleMode::On));
        assert_eq!(BundleMode::parse("ON"), Some(BundleMode::On));
        assert_eq!(BundleMode::parse("off"), Some(BundleMode::Off));
        assert_eq!(BundleMode::parse("Off"), Some(BundleMode::Off));
        assert_eq!(BundleMode::parse(""), Some(BundleMode::Off));
        for typo in ["true", "1", "yes", "bundle", " on"] {
            assert_eq!(BundleMode::parse(typo), None, "{typo:?}");
        }
    }
}
