//! Binary encoding of [`Packet`]s.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! +--------+---------+------+--------+----------+----------------+
//! | magic  | version | type | length | checksum |   body ...     |
//! | u16    | u8      | u8   | u16    | u16      |                |
//! +--------+---------+------+--------+----------+----------------+
//! ```
//!
//! * `magic` is `0x4C42` (`"LB"`).
//! * `length` is the total packet length including the 8-byte header.
//! * `checksum` is the 16-bit internet checksum (RFC 1071) over the whole
//!   packet with the checksum field taken as zero.
//!
//! Variable-length fields (payloads, NACK range lists) are length-
//! prefixed. Decoding is strict: trailing bytes, bad lengths, unknown
//! types and checksum mismatches are all errors, so a corrupted packet is
//! dropped at the wire layer rather than confusing a state machine.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ids::{EpochId, GroupId, HostId, SourceId};
use crate::packet::{Packet, SeqRange};
use crate::seq::Seq;

/// Magic bytes identifying an LBRM packet ("LB").
pub const MAGIC: u16 = 0x4C42;
/// Current wire version.
pub const VERSION: u8 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 8;
/// Maximum encodable packet (fits the `length` field and a UDP datagram).
pub const MAX_PACKET_SIZE: usize = 65_507;

/// Errors produced while decoding a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a header, or body shorter than its length field.
    Truncated,
    /// Magic bytes did not match.
    BadMagic(u16),
    /// Unsupported version.
    BadVersion(u8),
    /// Unknown packet type tag.
    UnknownType(u8),
    /// Length field inconsistent with the buffer.
    BadLength {
        /// Length claimed by the header.
        claimed: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// Checksum mismatch (packet corrupted in flight).
    BadChecksum,
    /// A count or length field exceeds sane protocol limits.
    FieldOverflow,
    /// Packet exceeds [`MAX_PACKET_SIZE`] (encode side).
    TooLarge(usize),
    /// An encoded probability was not a finite value in `[0, 1]`.
    BadProbability,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown packet type {t}"),
            WireError::BadLength { claimed, actual } => {
                write!(
                    f,
                    "bad length: header claims {claimed}, buffer has {actual}"
                )
            }
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::FieldOverflow => write!(f, "field exceeds protocol limits"),
            WireError::TooLarge(n) => write!(f, "packet of {n} bytes exceeds maximum"),
            WireError::BadProbability => write!(f, "probability not in [0,1]"),
        }
    }
}

impl std::error::Error for WireError {}

mod tag {
    pub const DATA: u8 = 1;
    pub const HEARTBEAT: u8 = 2;
    pub const NACK: u8 = 3;
    pub const RETRANS: u8 = 4;
    pub const LOG_ACK: u8 = 5;
    pub const ACKER_SELECT: u8 = 6;
    pub const ACKER_VOLUNTEER: u8 = 7;
    pub const PACKET_ACK: u8 = 8;
    pub const DISCOVERY_QUERY: u8 = 9;
    pub const DISCOVERY_REPLY: u8 = 10;
    pub const LOCATE_PRIMARY: u8 = 11;
    pub const PRIMARY_IS: u8 = 12;
    pub const REPL_UPDATE: u8 = 13;
    pub const REPL_ACK: u8 = 14;
    pub const SRM_SESSION: u8 = 15;
    pub const SRM_NACK: u8 = 16;
    pub const SRM_REPAIR: u8 = 17;
    pub const ELECT_PREPARE: u8 = 18;
    pub const ELECT_PROMISE: u8 = 19;
    pub const TERM_ANNOUNCE: u8 = 20;
}

/// Maximum number of ranges accepted in one NACK.
pub const MAX_NACK_RANGES: usize = 1024;

/// RFC 1071 internet checksum.
pub(crate) fn internet_checksum(data: &[u8]) -> u16 {
    checksum_fold(checksum_accumulate(data))
}

/// Sums `data` as big-endian u16 words (odd tail zero-padded) without
/// final folding, so multiple slices can contribute to one checksum.
///
/// The hot loop adds whole big-endian u64 words with end-around carry:
/// `2^16 ≡ 1 (mod 2^16 − 1)`, so `2^64 ≡ 1` as well, meaning a u64 is
/// congruent to the sum of its four u16 fields and carries wrapped back
/// in preserve the residue. One add-with-carry per 8 bytes replaces
/// four extract-and-add steps. The partial is folded to 32 bits on
/// return (the u16 fold happens in [`checksum_fold`]).
fn checksum_accumulate(data: &[u8]) -> u32 {
    let mut sum: u64 = 0;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
        let (s, carry) = sum.overflowing_add(w);
        sum = s + u64::from(carry);
    }
    // Fold 64 → 32 early so the tail and the caller's u32 arithmetic
    // cannot overflow; the residue mod 2^16 − 1 is unchanged.
    let mut folded = (sum >> 32) + (sum & 0xFFFF_FFFF);
    folded = (folded >> 32) + (folded & 0xFFFF_FFFF);
    let mut sum = ((folded >> 16) + (folded & 0xFFFF)) as u32;
    let mut rest = chunks.remainder().chunks_exact(2);
    for c in &mut rest {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = rest.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds carries and complements per RFC 1071.
fn checksum_fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// The packet checksum with the checksum field itself treated as zero,
/// computed over the two slices around it — no copy of the packet. Both
/// `data[..6]` and `data[8..]` start at even offsets, so word alignment
/// is preserved across the splice and the word sums add directly.
pub(crate) fn checksum_with_zeroed_field(data: &[u8]) -> u16 {
    debug_assert!(data.len() >= HEADER_LEN);
    checksum_fold(checksum_accumulate(&data[..6]) + checksum_accumulate(&data[8..]))
}

fn packet_tag(p: &Packet) -> u8 {
    match p {
        Packet::Data { .. } => tag::DATA,
        Packet::Heartbeat { .. } => tag::HEARTBEAT,
        Packet::Nack { .. } => tag::NACK,
        Packet::Retrans { .. } => tag::RETRANS,
        Packet::LogAck { .. } => tag::LOG_ACK,
        Packet::AckerSelect { .. } => tag::ACKER_SELECT,
        Packet::AckerVolunteer { .. } => tag::ACKER_VOLUNTEER,
        Packet::PacketAck { .. } => tag::PACKET_ACK,
        Packet::DiscoveryQuery { .. } => tag::DISCOVERY_QUERY,
        Packet::DiscoveryReply { .. } => tag::DISCOVERY_REPLY,
        Packet::LocatePrimary { .. } => tag::LOCATE_PRIMARY,
        Packet::PrimaryIs { .. } => tag::PRIMARY_IS,
        Packet::ReplUpdate { .. } => tag::REPL_UPDATE,
        Packet::ReplAck { .. } => tag::REPL_ACK,
        Packet::SrmSession { .. } => tag::SRM_SESSION,
        Packet::SrmNack { .. } => tag::SRM_NACK,
        Packet::SrmRepair { .. } => tag::SRM_REPAIR,
        Packet::ElectPrepare { .. } => tag::ELECT_PREPARE,
        Packet::ElectPromise { .. } => tag::ELECT_PROMISE,
        Packet::TermAnnounce { .. } => tag::TERM_ANNOUNCE,
    }
}

fn put_payload(buf: &mut BytesMut, payload: &Bytes) {
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
}

fn put_ranges(buf: &mut BytesMut, ranges: &[SeqRange]) {
    buf.put_u16(ranges.len() as u16);
    for r in ranges {
        buf.put_u32(r.first.raw());
        buf.put_u32(r.last.raw());
    }
}

impl Packet {
    /// Exact length in bytes that [`encode`] produces for this packet,
    /// computed arithmetically over the wire layout — no buffer is
    /// allocated and no checksum is run.
    ///
    /// This is the simulator's hot path: every simulated transmission
    /// needs the on-wire size for bandwidth/queueing accounting but never
    /// the bytes themselves. The invariant `p.encoded_len() ==
    /// encode(&p)?.len()` holds for every packet [`encode`] accepts and is
    /// pinned by a property test over all variants
    /// (`crates/wire/tests/proptests.rs`); any change to the encoded
    /// layout must update both sides or that test fails.
    pub fn encoded_len(&self) -> usize {
        // Per-field sizes mirror the `put_*` calls in `encode`:
        // group u32, source/host u64, seq/epoch u32, payload 4+len,
        // range list 2+8n.
        let body = match self {
            Packet::Data { payload, .. } => 4 + 8 + 4 + 4 + (4 + payload.len()),
            Packet::Heartbeat { payload, .. } => 4 + 8 + 4 + 4 + 4 + (4 + payload.len()),
            Packet::Nack { ranges, .. } => 4 + 8 + 8 + (2 + 8 * ranges.len()),
            Packet::Retrans { payload, .. } => 4 + 8 + 4 + (4 + payload.len()),
            Packet::LogAck { .. } => 4 + 8 + 4 + 4,
            Packet::AckerSelect { .. } => 4 + 8 + 4 + 8,
            Packet::AckerVolunteer { .. } => 4 + 8 + 4 + 8,
            Packet::PacketAck { .. } => 4 + 8 + 4 + 4 + 8,
            Packet::DiscoveryQuery { .. } => 4 + 8 + 8,
            Packet::DiscoveryReply { .. } => 4 + 8 + 8 + 1,
            Packet::LocatePrimary { .. } => 4 + 8 + 8,
            Packet::PrimaryIs { .. } => 4 + 8 + 8,
            Packet::ReplUpdate { payload, .. } => 4 + 8 + 4 + (4 + payload.len()),
            Packet::ReplAck { .. } => 4 + 8 + 4,
            Packet::SrmSession { .. } => 4 + 8 + 4,
            Packet::SrmNack { ranges, .. } => 4 + 8 + 8 + (2 + 8 * ranges.len()),
            Packet::SrmRepair { payload, .. } => 4 + 8 + 4 + 8 + (4 + payload.len()),
            Packet::ElectPrepare { .. } => 4 + 8 + 4 + 8,
            Packet::ElectPromise { .. } => 4 + 8 + 4 + 8 + 4,
            Packet::TermAnnounce { .. } => 4 + 8 + 4 + 8,
        };
        HEADER_LEN + body
    }
}

/// Encodes a packet into a fresh buffer.
///
/// ```
/// use lbrm_wire::{encode, decode, Packet, GroupId, SourceId, Seq, EpochId};
/// use bytes::Bytes;
///
/// let pkt = Packet::Data {
///     group: GroupId(1),
///     source: SourceId(7),
///     seq: Seq(42),
///     epoch: EpochId(0),
///     payload: Bytes::from_static(b"bridge destroyed"),
/// };
/// let wire = encode(&pkt).unwrap();
/// assert_eq!(decode(&wire).unwrap(), pkt);
/// ```
///
/// # Errors
///
/// [`WireError::TooLarge`] if the encoding would exceed
/// [`MAX_PACKET_SIZE`]; [`WireError::FieldOverflow`] if a list exceeds its
/// length-prefix range; [`WireError::BadProbability`] for a non-finite or
/// out-of-range `p_ack`.
pub fn encode(p: &Packet) -> Result<Bytes, WireError> {
    // `encoded_len()` is exact (property-tested equal to the bytes
    // produced), so one allocation serves the whole encode.
    let mut buf = BytesMut::with_capacity(p.encoded_len());
    encode_into(p, &mut buf)?;
    Ok(buf.freeze())
}

/// Appends the full encoding of `p` — checksum included — to `buf`
/// without allocating a fresh buffer. This is the steady-state send
/// path: a transport clears and reuses one scratch `BytesMut` across
/// sends instead of paying one allocation per packet ([`encode`] is now
/// a thin wrapper over this).
///
/// # Errors
///
/// Same conditions as [`encode`]. On error nothing useful is in `buf`;
/// callers reusing a scratch buffer should `clear()` before retrying.
pub fn encode_into(p: &Packet, buf: &mut BytesMut) -> Result<(), WireError> {
    let base = write_packet_zero_checksum(p, buf)?;
    let cksum = internet_checksum(&buf[base..]);
    buf[base + 6..base + 8].copy_from_slice(&cksum.to_be_bytes());
    Ok(())
}

/// Rejects packets the encoder cannot represent, without writing
/// anything: oversized range lists, out-of-range probabilities, and
/// encodings over [`MAX_PACKET_SIZE`]. Bundle building validates before
/// appending so a bad packet never leaves a half-written entry behind.
pub(crate) fn validate(p: &Packet) -> Result<(), WireError> {
    let len = p.encoded_len();
    if len > MAX_PACKET_SIZE {
        return Err(WireError::TooLarge(len));
    }
    match p {
        Packet::Nack { ranges, .. } | Packet::SrmNack { ranges, .. }
            if ranges.len() > MAX_NACK_RANGES =>
        {
            Err(WireError::FieldOverflow)
        }
        Packet::AckerSelect { p_ack, .. } if !p_ack.is_finite() || !(0.0..=1.0).contains(p_ack) => {
            Err(WireError::BadProbability)
        }
        _ => Ok(()),
    }
}

/// Appends the encoding of `p` with the length field patched and the
/// checksum field left zero, returning the offset where the packet
/// starts. Shared by [`encode_into`] (which then patches the checksum)
/// and the bundle builder (whose single frame checksum covers every
/// entry, so inner checksums stay zero).
pub(crate) fn write_packet_zero_checksum(
    p: &Packet,
    buf: &mut BytesMut,
) -> Result<usize, WireError> {
    validate(p)?;
    let len = p.encoded_len();
    let base = buf.len();
    buf.reserve(len);
    // Header; length is patched afterwards, checksum stays zero.
    buf.put_u16(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(packet_tag(p));
    buf.put_u16(0); // length placeholder
    buf.put_u16(0); // checksum (zero until the caller patches it)

    match p {
        Packet::Data {
            group,
            source,
            seq,
            epoch,
            payload,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(seq.raw());
            buf.put_u32(epoch.raw());
            put_payload(buf, payload);
        }
        Packet::Heartbeat {
            group,
            source,
            seq,
            epoch,
            hb_index,
            payload,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(seq.raw());
            buf.put_u32(epoch.raw());
            buf.put_u32(*hb_index);
            put_payload(buf, payload);
        }
        Packet::Nack {
            group,
            source,
            requester,
            ranges,
        } => {
            if ranges.len() > MAX_NACK_RANGES {
                return Err(WireError::FieldOverflow);
            }
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u64(requester.raw());
            put_ranges(buf, ranges);
        }
        Packet::Retrans {
            group,
            source,
            seq,
            payload,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(seq.raw());
            put_payload(buf, payload);
        }
        Packet::LogAck {
            group,
            source,
            primary_seq,
            replica_seq,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(primary_seq.raw());
            buf.put_u32(replica_seq.raw());
        }
        Packet::AckerSelect {
            group,
            source,
            epoch,
            p_ack,
        } => {
            if !p_ack.is_finite() || !(0.0..=1.0).contains(p_ack) {
                return Err(WireError::BadProbability);
            }
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(epoch.raw());
            buf.put_u64(p_ack.to_bits());
        }
        Packet::AckerVolunteer {
            group,
            source,
            epoch,
            logger,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(epoch.raw());
            buf.put_u64(logger.raw());
        }
        Packet::PacketAck {
            group,
            source,
            epoch,
            seq,
            logger,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(epoch.raw());
            buf.put_u32(seq.raw());
            buf.put_u64(logger.raw());
        }
        Packet::DiscoveryQuery {
            group,
            nonce,
            requester,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(*nonce);
            buf.put_u64(requester.raw());
        }
        Packet::DiscoveryReply {
            group,
            nonce,
            logger,
            level,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(*nonce);
            buf.put_u64(logger.raw());
            buf.put_u8(*level);
        }
        Packet::LocatePrimary {
            group,
            source,
            requester,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u64(requester.raw());
        }
        Packet::PrimaryIs {
            group,
            source,
            primary,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u64(primary.raw());
        }
        Packet::ReplUpdate {
            group,
            source,
            seq,
            payload,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(seq.raw());
            put_payload(buf, payload);
        }
        Packet::ReplAck { group, source, seq } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(seq.raw());
        }
        Packet::SrmSession {
            group,
            member,
            last_seq,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(member.raw());
            buf.put_u32(last_seq.raw());
        }
        Packet::SrmNack {
            group,
            source,
            requester,
            ranges,
        } => {
            if ranges.len() > MAX_NACK_RANGES {
                return Err(WireError::FieldOverflow);
            }
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u64(requester.raw());
            put_ranges(buf, ranges);
        }
        Packet::SrmRepair {
            group,
            source,
            seq,
            responder,
            payload,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(seq.raw());
            buf.put_u64(responder.raw());
            put_payload(buf, payload);
        }
        Packet::ElectPrepare {
            group,
            source,
            term,
            candidate,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(*term);
            buf.put_u64(candidate.raw());
        }
        Packet::ElectPromise {
            group,
            source,
            term,
            voter,
            log_end,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(*term);
            buf.put_u64(voter.raw());
            buf.put_u32(log_end.raw());
        }
        Packet::TermAnnounce {
            group,
            source,
            term,
            leader,
        } => {
            buf.put_u32(group.raw());
            buf.put_u64(source.raw());
            buf.put_u32(*term);
            buf.put_u64(leader.raw());
        }
    }

    debug_assert_eq!(
        buf.len() - base,
        len,
        "encoded_len must match the bytes written"
    );
    buf[base + 4..base + 6].copy_from_slice(&(len as u16).to_be_bytes());
    Ok(base)
}

/// A cursor over one encoded packet. Scalar fields read by value; a
/// trailing payload is validated here ([`Reader::tail_payload_start`])
/// and carved zero-copy out of the packet's own [`Bytes`] by the caller
/// — the decoded packet shares the datagram's allocation instead of
/// copying every payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.len() - self.pos < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.need(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(u8::from_be_bytes(self.take::<1>()?))
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take::<8>()?))
    }

    /// Validates the length-prefixed payload that ends the packet and
    /// returns its start offset. Every payload-bearing variant stores
    /// the payload as its *last* field, so the caller can hand the
    /// packet's own `Bytes` to the payload by advancing it in place —
    /// no new reference count, no slice bookkeeping.
    fn tail_payload_start(&mut self) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if self.buf.len() - self.pos != len {
            return Err(WireError::BadLength {
                claimed: len,
                actual: self.buf.len() - self.pos,
            });
        }
        Ok(self.pos)
    }

    fn ranges(&mut self) -> Result<Vec<SeqRange>, WireError> {
        let n = self.u16()? as usize;
        if n > MAX_NACK_RANGES {
            return Err(WireError::FieldOverflow);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let first = Seq(self.u32()?);
            let last = Seq(self.u32()?);
            out.push(SeqRange { first, last });
        }
        Ok(out)
    }

    fn group(&mut self) -> Result<GroupId, WireError> {
        Ok(GroupId(self.u32()?))
    }

    fn source(&mut self) -> Result<SourceId, WireError> {
        Ok(SourceId(self.u64()?))
    }

    fn host(&mut self) -> Result<HostId, WireError> {
        Ok(HostId(self.u64()?))
    }

    fn seq(&mut self) -> Result<Seq, WireError> {
        Ok(Seq(self.u32()?))
    }

    fn epoch(&mut self) -> Result<EpochId, WireError> {
        Ok(EpochId(self.u32()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadLength {
                claimed: 0,
                actual: self.buf.len() - self.pos,
            })
        }
    }
}

/// Decodes one packet from `data`, which must contain exactly one encoded
/// packet.
///
/// Compatibility wrapper over [`decode_bytes`]: the slice is copied into
/// a fresh [`Bytes`] once, then decoded with payloads sliced out of that
/// copy. Receive paths that already hold the datagram as [`Bytes`]
/// should call [`decode_bytes`] directly and skip the copy; the two are
/// equivalence-property-tested over every packet variant.
///
/// # Errors
///
/// Any [`WireError`] on malformed input; corrupted packets fail the
/// checksum and are reported as [`WireError::BadChecksum`].
pub fn decode(data: &[u8]) -> Result<Packet, WireError> {
    decode_bytes(Bytes::copy_from_slice(data))
}

/// Decodes one packet from `data` zero-copy: payload fields are
/// [`Bytes::slice`]s sharing `data`'s allocation, so decoding a data or
/// repair packet never copies its payload. This is the receive hot
/// path — one datagram buffer in, packets whose payloads alias it out.
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn decode_bytes(data: Bytes) -> Result<Packet, WireError> {
    decode_packet(data, true)
}

/// The decode core. `verify_checksum` is true for standalone packets;
/// bundle entries carry a zero checksum field (the frame checksum covers
/// them), so the bundle decoder passes false and this instead insists the
/// field really is zero — a nonzero inner checksum means the entry was
/// not produced by the bundle builder.
pub(crate) fn decode_packet(data: Bytes, verify_checksum: bool) -> Result<Packet, WireError> {
    if data.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic = u16::from_be_bytes([data[0], data[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = data[2];
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let typ = data[3];
    let claimed = u16::from_be_bytes([data[4], data[5]]) as usize;
    if claimed != data.len() {
        return Err(WireError::BadLength {
            claimed,
            actual: data.len(),
        });
    }
    let wire_cksum = u16::from_be_bytes([data[6], data[7]]);
    if verify_checksum {
        if checksum_with_zeroed_field(&data) != wire_cksum {
            return Err(WireError::BadChecksum);
        }
    } else if wire_cksum != 0 {
        return Err(WireError::BadChecksum);
    }

    let mut r = Reader {
        buf: &data[..],
        pos: HEADER_LEN,
    };
    // Takes ownership of the packet's buffer as the tail payload: after
    // `tail_payload_start` has verified the payload runs exactly to the
    // end, advancing the buffer in place yields the payload without a
    // reference-count round trip.
    let tail = |start: usize, mut data: Bytes| -> Bytes {
        data.advance(start);
        data
    };
    let pkt = match typ {
        tag::DATA => {
            let group = r.group()?;
            let source = r.source()?;
            let seq = r.seq()?;
            let epoch = r.epoch()?;
            let start = r.tail_payload_start()?;
            return Ok(Packet::Data {
                group,
                source,
                seq,
                epoch,
                payload: tail(start, data),
            });
        }
        tag::HEARTBEAT => {
            let group = r.group()?;
            let source = r.source()?;
            let seq = r.seq()?;
            let epoch = r.epoch()?;
            let hb_index = r.u32()?;
            let start = r.tail_payload_start()?;
            return Ok(Packet::Heartbeat {
                group,
                source,
                seq,
                epoch,
                hb_index,
                payload: tail(start, data),
            });
        }
        tag::NACK => Packet::Nack {
            group: r.group()?,
            source: r.source()?,
            requester: r.host()?,
            ranges: r.ranges()?,
        },
        tag::RETRANS => {
            let group = r.group()?;
            let source = r.source()?;
            let seq = r.seq()?;
            let start = r.tail_payload_start()?;
            return Ok(Packet::Retrans {
                group,
                source,
                seq,
                payload: tail(start, data),
            });
        }
        tag::LOG_ACK => Packet::LogAck {
            group: r.group()?,
            source: r.source()?,
            primary_seq: r.seq()?,
            replica_seq: r.seq()?,
        },
        tag::ACKER_SELECT => {
            let group = r.group()?;
            let source = r.source()?;
            let epoch = r.epoch()?;
            let p_ack = f64::from_bits(r.u64()?);
            if !p_ack.is_finite() || !(0.0..=1.0).contains(&p_ack) {
                return Err(WireError::BadProbability);
            }
            Packet::AckerSelect {
                group,
                source,
                epoch,
                p_ack,
            }
        }
        tag::ACKER_VOLUNTEER => Packet::AckerVolunteer {
            group: r.group()?,
            source: r.source()?,
            epoch: r.epoch()?,
            logger: r.host()?,
        },
        tag::PACKET_ACK => Packet::PacketAck {
            group: r.group()?,
            source: r.source()?,
            epoch: r.epoch()?,
            seq: r.seq()?,
            logger: r.host()?,
        },
        tag::DISCOVERY_QUERY => Packet::DiscoveryQuery {
            group: r.group()?,
            nonce: r.u64()?,
            requester: r.host()?,
        },
        tag::DISCOVERY_REPLY => Packet::DiscoveryReply {
            group: r.group()?,
            nonce: r.u64()?,
            logger: r.host()?,
            level: r.u8()?,
        },
        tag::LOCATE_PRIMARY => Packet::LocatePrimary {
            group: r.group()?,
            source: r.source()?,
            requester: r.host()?,
        },
        tag::PRIMARY_IS => Packet::PrimaryIs {
            group: r.group()?,
            source: r.source()?,
            primary: r.host()?,
        },
        tag::REPL_UPDATE => {
            let group = r.group()?;
            let source = r.source()?;
            let seq = r.seq()?;
            let start = r.tail_payload_start()?;
            return Ok(Packet::ReplUpdate {
                group,
                source,
                seq,
                payload: tail(start, data),
            });
        }
        tag::REPL_ACK => Packet::ReplAck {
            group: r.group()?,
            source: r.source()?,
            seq: r.seq()?,
        },
        tag::SRM_SESSION => Packet::SrmSession {
            group: r.group()?,
            member: r.host()?,
            last_seq: r.seq()?,
        },
        tag::SRM_NACK => Packet::SrmNack {
            group: r.group()?,
            source: r.source()?,
            requester: r.host()?,
            ranges: r.ranges()?,
        },
        tag::SRM_REPAIR => {
            let group = r.group()?;
            let source = r.source()?;
            let seq = r.seq()?;
            let responder = r.host()?;
            let start = r.tail_payload_start()?;
            return Ok(Packet::SrmRepair {
                group,
                source,
                seq,
                responder,
                payload: tail(start, data),
            });
        }
        tag::ELECT_PREPARE => Packet::ElectPrepare {
            group: r.group()?,
            source: r.source()?,
            term: r.u32()?,
            candidate: r.host()?,
        },
        tag::ELECT_PROMISE => Packet::ElectPromise {
            group: r.group()?,
            source: r.source()?,
            term: r.u32()?,
            voter: r.host()?,
            log_end: r.seq()?,
        },
        tag::TERM_ANNOUNCE => Packet::TermAnnounce {
            group: r.group()?,
            source: r.source()?,
            term: r.u32()?,
            leader: r.host()?,
        },
        other => return Err(WireError::UnknownType(other)),
    };
    r.finish()?;
    Ok(pkt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SeqRange;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::Data {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(3),
                epoch: EpochId(4),
                payload: Bytes::from_static(b"bridge destroyed"),
            },
            Packet::Heartbeat {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(3),
                epoch: EpochId(4),
                hb_index: 7,
                payload: Bytes::new(),
            },
            Packet::Nack {
                group: GroupId(1),
                source: SourceId(2),
                requester: HostId(9),
                ranges: vec![
                    SeqRange {
                        first: Seq(5),
                        last: Seq(5),
                    },
                    SeqRange {
                        first: Seq(8),
                        last: Seq(12),
                    },
                ],
            },
            Packet::Retrans {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(5),
                payload: Bytes::from_static(b"payload"),
            },
            Packet::LogAck {
                group: GroupId(1),
                source: SourceId(2),
                primary_seq: Seq(10),
                replica_seq: Seq(8),
            },
            Packet::AckerSelect {
                group: GroupId(1),
                source: SourceId(2),
                epoch: EpochId(5),
                p_ack: 0.04,
            },
            Packet::AckerVolunteer {
                group: GroupId(1),
                source: SourceId(2),
                epoch: EpochId(5),
                logger: HostId(33),
            },
            Packet::PacketAck {
                group: GroupId(1),
                source: SourceId(2),
                epoch: EpochId(5),
                seq: Seq(33),
                logger: HostId(33),
            },
            Packet::DiscoveryQuery {
                group: GroupId(1),
                nonce: 0xDEAD_BEEF,
                requester: HostId(3),
            },
            Packet::DiscoveryReply {
                group: GroupId(1),
                nonce: 0xDEAD_BEEF,
                logger: HostId(44),
                level: 1,
            },
            Packet::LocatePrimary {
                group: GroupId(1),
                source: SourceId(2),
                requester: HostId(3),
            },
            Packet::PrimaryIs {
                group: GroupId(1),
                source: SourceId(2),
                primary: HostId(50),
            },
            Packet::ReplUpdate {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(6),
                payload: Bytes::from_static(b"replica copy"),
            },
            Packet::ReplAck {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(6),
            },
            Packet::SrmSession {
                group: GroupId(1),
                member: HostId(7),
                last_seq: Seq(99),
            },
            Packet::SrmNack {
                group: GroupId(1),
                source: SourceId(2),
                requester: HostId(7),
                ranges: vec![SeqRange::single(Seq(42))],
            },
            Packet::SrmRepair {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(42),
                responder: HostId(8),
                payload: Bytes::from_static(b"repair"),
            },
            Packet::ElectPrepare {
                group: GroupId(1),
                source: SourceId(2),
                term: 3,
                candidate: HostId(0),
            },
            Packet::ElectPromise {
                group: GroupId(1),
                source: SourceId(2),
                term: 3,
                voter: HostId(51),
                log_end: Seq(12),
            },
            Packet::TermAnnounce {
                group: GroupId(1),
                source: SourceId(2),
                term: 3,
                leader: HostId(51),
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for p in sample_packets() {
            let enc = encode(&p).expect("encode");
            let dec = decode(&enc).expect("decode");
            assert_eq!(p, dec, "roundtrip failed for {}", p.kind());
        }
    }

    #[test]
    fn encoded_len_matches_encode_for_samples() {
        for p in sample_packets() {
            let enc = encode(&p).expect("encode");
            assert_eq!(
                p.encoded_len(),
                enc.len(),
                "length mismatch for {}",
                p.kind()
            );
        }
    }

    #[test]
    fn header_fields() {
        let p = &sample_packets()[0];
        let enc = encode(p).unwrap();
        assert_eq!(&enc[0..2], &MAGIC.to_be_bytes());
        assert_eq!(enc[2], VERSION);
        let len = u16::from_be_bytes([enc[4], enc[5]]) as usize;
        assert_eq!(len, enc.len());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let enc = encode(&sample_packets()[2]).unwrap();
        for cut in 0..enc.len() {
            let err = decode(&enc[..cut]);
            assert!(err.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn rejects_single_byte_corruption() {
        // Flipping any byte must be caught by magic/version/length/checksum
        // validation or produce a decode error — never a silent wrong packet.
        let enc = encode(&sample_packets()[0]).unwrap();
        for i in 0..enc.len() {
            let mut bad = enc.to_vec();
            bad[i] ^= 0xFF;
            match decode(&bad) {
                Err(_) => {}
                Ok(p) => panic!("corruption at byte {i} decoded as {p:?}"),
            }
        }
    }

    #[test]
    fn rejects_bad_magic_version_type() {
        let enc = encode(&sample_packets()[0]).unwrap();
        let mut bad = enc.to_vec();
        bad[0] = 0x00;
        assert!(matches!(decode(&bad), Err(WireError::BadMagic(_))));

        let mut bad = enc.to_vec();
        bad[2] = 99;
        // checksum now wrong too; fix it so the version check is what fires
        bad[6] = 0;
        bad[7] = 0;
        let ck = internet_checksum(&bad);
        bad[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(decode(&bad), Err(WireError::BadVersion(99))));

        let mut bad = enc.to_vec();
        bad[3] = 250;
        bad[6] = 0;
        bad[7] = 0;
        let ck = internet_checksum(&bad);
        bad[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(decode(&bad), Err(WireError::UnknownType(250))));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let enc = encode(&sample_packets()[0]).unwrap();
        let mut bad = enc.to_vec();
        bad.push(0);
        assert!(matches!(decode(&bad), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn rejects_bad_probability() {
        let p = Packet::AckerSelect {
            group: GroupId(1),
            source: SourceId(1),
            epoch: EpochId(1),
            p_ack: 1.5,
        };
        assert_eq!(encode(&p), Err(WireError::BadProbability));
        let p = Packet::AckerSelect {
            group: GroupId(1),
            source: SourceId(1),
            epoch: EpochId(1),
            p_ack: f64::NAN,
        };
        assert_eq!(encode(&p), Err(WireError::BadProbability));
    }

    #[test]
    fn rejects_oversized_range_list() {
        let ranges = vec![SeqRange::single(Seq(1)); MAX_NACK_RANGES + 1];
        let p = Packet::Nack {
            group: GroupId(1),
            source: SourceId(1),
            requester: HostId(1),
            ranges,
        };
        assert_eq!(encode(&p), Err(WireError::FieldOverflow));
    }

    #[test]
    fn checksum_known_vectors() {
        // RFC 1071 example: the checksum of this sequence is 0xddf2's complement.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
        // Odd length pads with zero.
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn split_checksum_equals_zeroed_copy() {
        // The copy-free decode verification must agree with the naive
        // zero-the-field-and-copy formulation on even and odd lengths.
        for extra in 0..5usize {
            let data: Vec<u8> = (0..HEADER_LEN + 13 + extra)
                .map(|i| (i * 37) as u8)
                .collect();
            let mut zeroed = data.clone();
            zeroed[6] = 0;
            zeroed[7] = 0;
            assert_eq!(
                checksum_with_zeroed_field(&data),
                internet_checksum(&zeroed),
                "length {}",
                data.len()
            );
        }
    }

    #[test]
    fn heartbeat_with_repeated_payload() {
        let p = Packet::Heartbeat {
            group: GroupId(9),
            source: SourceId(9),
            seq: Seq(100),
            epoch: EpochId(2),
            hb_index: 3,
            payload: Bytes::from_static(b"small state"),
        };
        let dec = decode(&encode(&p).unwrap()).unwrap();
        assert_eq!(p, dec);
    }
}
