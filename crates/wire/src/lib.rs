//! Wire formats for Log-Based Receiver-Reliable Multicast (LBRM).
//!
//! This crate defines everything that crosses a network boundary in the
//! LBRM protocol suite (Holbrook, Singhal & Cheriton, SIGCOMM '95):
//!
//! * [`ids`] — strongly typed identifiers for hosts, sites, groups,
//!   sources and epochs.
//! * [`seq`] — 32-bit wrapping sequence numbers with serial-number
//!   comparison (in the style of RFC 1982).
//! * [`packet`] — the LBRM packet vocabulary: data, heartbeats, NACKs,
//!   retransmissions, logger acknowledgements, Acker Selection packets,
//!   discovery, replication and failover messages, and the session /
//!   repair messages used by the SRM-style (*wb*) baseline.
//! * [`codec`] — a compact, versioned binary encoding with an internet
//!   checksum, built on [`bytes`].
//! * [`bundle`] — DIS-style PDU bundling: MTU-bounded frames carrying
//!   many packets per datagram under a single checksum pass.
//! * [`text`] — the human-readable HTML document invalidation protocol of
//!   Appendix A (`TRANS` / `HEARTBEAT` / `RETRANS` lines and the
//!   `<!MULTICAST...>` association tag).
//!
//! The binary codec is deliberately simple: a fixed header (magic,
//! version, type, length, checksum) followed by a per-type body. It is
//! self-contained — no serde — so that the encoded layout is stable,
//! inspectable, and identical across the simulator and the real UDP
//! transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod codec;
pub mod ids;
pub mod packet;
pub mod seq;
pub mod text;

pub use bundle::{
    bundled_entry_len, decode_bundle, encode_bundle, is_bundle, BundleBuilder, BundleMode,
    BUNDLE_HEADER_LEN, DEFAULT_BUNDLE_MTU,
};
pub use codec::{decode, decode_bytes, encode, encode_into, WireError, MAX_PACKET_SIZE};
pub use ids::{EpochId, GroupId, HostId, SiteId, SourceId};
pub use packet::{Packet, SeqRange, TtlScope};
pub use seq::Seq;
