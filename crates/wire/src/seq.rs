//! Wrapping 32-bit sequence numbers.
//!
//! LBRM receivers detect loss from gaps in the data sequence space, and
//! heartbeats repeat the most recent data sequence number. Sequence
//! numbers use *serial number arithmetic* (RFC 1982 with `SERIAL_BITS =
//! 32`): `a < b` iff `b - a` (wrapping) is in `(0, 2^31)`. This keeps
//! comparisons correct across wraparound for any stream whose reordering
//! window is under 2^31 packets — far beyond anything a low-rate LBRM
//! source produces.

use std::fmt;

/// A 32-bit wrapping sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Seq(pub u32);

impl Seq {
    /// The conventional first data sequence number.
    pub const FIRST: Seq = Seq(1);

    /// The zero sequence number, used before any data has been sent.
    pub const ZERO: Seq = Seq(0);

    /// Returns the raw value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the sequence number `n` steps ahead (wrapping).
    // Deliberately named like the operator: `seq.add(n)` reads naturally
    // and the wrapping semantics differ from an arithmetic `+`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, n: u32) -> Seq {
        Seq(self.0.wrapping_add(n))
    }

    /// Returns the next sequence number.
    #[inline]
    pub fn next(self) -> Seq {
        self.add(1)
    }

    /// Returns the previous sequence number.
    #[inline]
    pub fn prev(self) -> Seq {
        Seq(self.0.wrapping_sub(1))
    }

    /// Serial-number comparison: `true` iff `self` is strictly before
    /// `other` in sequence space.
    #[inline]
    pub fn before(self, other: Seq) -> bool {
        let diff = other.0.wrapping_sub(self.0);
        diff != 0 && diff < (1 << 31)
    }

    /// `true` iff `self` is before or equal to `other`.
    #[inline]
    pub fn before_eq(self, other: Seq) -> bool {
        self == other || self.before(other)
    }

    /// `true` iff `self` is strictly after `other`.
    #[inline]
    pub fn after(self, other: Seq) -> bool {
        other.before(self)
    }

    /// `true` iff `self` is after or equal to `other`.
    #[inline]
    pub fn after_eq(self, other: Seq) -> bool {
        self == other || self.after(other)
    }

    /// Distance from `earlier` to `self` (wrapping). Meaningful when
    /// `earlier.before_eq(self)`.
    #[inline]
    pub fn distance_from(self, earlier: Seq) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }

    /// The larger of two sequence numbers under serial comparison.
    #[inline]
    pub fn max(self, other: Seq) -> Seq {
        if self.before(other) {
            other
        } else {
            self
        }
    }

    /// The smaller of two sequence numbers under serial comparison.
    #[inline]
    pub fn min(self, other: Seq) -> Seq {
        if self.before(other) {
            self
        } else {
            other
        }
    }

    /// Iterates the inclusive range `self ..= end` in sequence order.
    /// Yields nothing if `end` is before `self`.
    pub fn iter_to(self, end: Seq) -> impl Iterator<Item = Seq> {
        let count = if self.before_eq(end) {
            end.distance_from(self) as u64 + 1
        } else {
            0
        };
        (0..count).map(move |i| self.add(i as u32))
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for Seq {
    #[inline]
    fn from(v: u32) -> Self {
        Seq(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_basic() {
        assert!(Seq(1).before(Seq(2)));
        assert!(!Seq(2).before(Seq(1)));
        assert!(!Seq(5).before(Seq(5)));
        assert!(Seq(5).before_eq(Seq(5)));
        assert!(Seq(9).after(Seq(3)));
    }

    #[test]
    fn ordering_across_wrap() {
        let near_max = Seq(u32::MAX - 1);
        let wrapped = near_max.add(5); // = 3
        assert_eq!(wrapped, Seq(3));
        assert!(near_max.before(wrapped));
        assert!(wrapped.after(near_max));
        assert_eq!(wrapped.distance_from(near_max), 5);
    }

    #[test]
    fn min_max() {
        assert_eq!(Seq(3).max(Seq(7)), Seq(7));
        assert_eq!(Seq(3).min(Seq(7)), Seq(3));
        let a = Seq(u32::MAX);
        let b = Seq(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn iter_to_counts() {
        let got: Vec<_> = Seq(3).iter_to(Seq(6)).collect();
        assert_eq!(got, vec![Seq(3), Seq(4), Seq(5), Seq(6)]);
        assert_eq!(Seq(6).iter_to(Seq(3)).count(), 0);
        assert_eq!(Seq(9).iter_to(Seq(9)).count(), 1);
    }

    #[test]
    fn iter_to_across_wrap() {
        let got: Vec<_> = Seq(u32::MAX).iter_to(Seq(1)).collect();
        assert_eq!(got, vec![Seq(u32::MAX), Seq(0), Seq(1)]);
    }

    #[test]
    fn prev_next_inverse() {
        assert_eq!(Seq(0).prev(), Seq(u32::MAX));
        assert_eq!(Seq(u32::MAX).next(), Seq(0));
        assert_eq!(Seq(17).next().prev(), Seq(17));
    }
}
