//! Strongly typed protocol identifiers.
//!
//! LBRM groups are *fine-grained*: each multicast group carries a single
//! data source (e.g. one DIS terrain entity), so a `(GroupId, SourceId)`
//! pair names one logical stream. Hosts are identified by a transport-
//! independent [`HostId`]; the transports (`lbrm-sim`, `lbrm-net`) map
//! host ids to simulator node handles or UDP socket addresses.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type! {
    /// A multicast group. In the UDP transport this maps to a multicast
    /// address + port; in the simulator it is an abstract channel.
    GroupId(u32)
}

id_type! {
    /// A data source within a group. LBRM groups normally contain exactly
    /// one source, but the id keeps streams distinct when a transport
    /// multiplexes several groups onto one socket.
    SourceId(u64)
}

id_type! {
    /// A host — sender, receiver, or logging server. Transport-independent.
    HostId(u64)
}

id_type! {
    /// A site: a topologically localized part of the network (hosts behind
    /// one tail circuit, a LAN, or a single host). Secondary loggers serve
    /// one site.
    SiteId(u32)
}

id_type! {
    /// A statistical-acknowledgement epoch (§2.3.1). The source bumps the
    /// epoch whenever it re-selects Designated Ackers.
    EpochId(u32)
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl EpochId {
    /// The epoch that precedes the first Acker Selection.
    pub const INITIAL: EpochId = EpochId(0);

    /// Returns the next epoch id (wrapping).
    #[inline]
    pub fn next(self) -> EpochId {
        EpochId(self.0.wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(GroupId(7).to_string(), "g7");
        assert_eq!(SourceId(3).to_string(), "src3");
        assert_eq!(HostId(12).to_string(), "h12");
        assert_eq!(SiteId(4).to_string(), "site4");
        assert_eq!(EpochId(9).to_string(), "e9");
    }

    #[test]
    fn epoch_next_wraps() {
        assert_eq!(EpochId(u32::MAX).next(), EpochId(0));
        assert_eq!(EpochId::INITIAL.next(), EpochId(1));
    }

    #[test]
    fn raw_roundtrip() {
        assert_eq!(HostId::from(42).raw(), 42);
        assert_eq!(GroupId::from(1).raw(), 1);
    }
}
