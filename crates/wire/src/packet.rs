//! The LBRM packet vocabulary.
//!
//! One enum covers the whole protocol suite: the base receiver-reliable
//! protocol (§2), distributed logging (§2.2) including replication and
//! failover (§2.2.3), statistical acknowledgement (§2.3), logger
//! discovery (§2.2.1), and the session/repair messages of the SRM-style
//! (*wb*) baseline used for the §6 comparison.
//!
//! Packets carry *logical* identities ([`HostId`]) where the protocol
//! needs them; transport addresses are a transport concern.

use bytes::Bytes;

use crate::ids::{EpochId, GroupId, HostId, SourceId};
use crate::seq::Seq;

/// An inclusive range of sequence numbers `[first, last]`, used in NACKs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeqRange {
    /// First missing sequence number.
    pub first: Seq,
    /// Last missing sequence number (inclusive).
    pub last: Seq,
}

impl SeqRange {
    /// A single-packet range.
    #[inline]
    pub fn single(seq: Seq) -> Self {
        SeqRange {
            first: seq,
            last: seq,
        }
    }

    /// Number of sequence numbers covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.last.distance_from(self.first) as u64 + 1
    }

    /// `true` iff the range covers no valid span (never produced by the
    /// protocol; kept for defensive checks after decoding).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.last.before(self.first)
    }

    /// Iterates the sequence numbers in the range.
    pub fn iter(&self) -> impl Iterator<Item = Seq> {
        self.first.iter_to(self.last)
    }

    /// `true` iff `seq` falls within the range.
    #[inline]
    pub fn contains(&self, seq: Seq) -> bool {
        self.first.before_eq(seq) && seq.before_eq(self.last)
    }
}

/// Multicast scope for a transmission, realized as an IP TTL in the UDP
/// transport and as a delivery-domain filter in the simulator.
///
/// Secondary loggers re-multicast repairs with [`TtlScope::Site`] so that
/// local recovery never loads the tail circuit or WAN (§2.2.1); expanding-
/// ring discovery walks `Site → Region → Global`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TtlScope {
    /// Confined to the sender's site (LAN).
    Site,
    /// Reaches nearby sites (administrative region).
    Region,
    /// The whole group.
    Global,
}

impl TtlScope {
    /// A representative IP TTL for this scope.
    pub fn ttl(self) -> u8 {
        match self {
            TtlScope::Site => 1,
            TtlScope::Region => 32,
            TtlScope::Global => 127,
        }
    }

    /// The next wider scope, if any.
    pub fn widen(self) -> Option<TtlScope> {
        match self {
            TtlScope::Site => Some(TtlScope::Region),
            TtlScope::Region => Some(TtlScope::Global),
            TtlScope::Global => None,
        }
    }
}

/// Every message exchanged by the LBRM protocol suite.
///
/// Not `Eq` because [`Packet::AckerSelect`] carries its probability as an
/// `f64` (always finite and in `[0, 1]`, enforced by the codec).
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// An application data packet, multicast by the source. Also used for
    /// the source's reliable unicast handoff to the primary logger when a
    /// multicast copy was lost on the way to it.
    Data {
        /// Multicast group.
        group: GroupId,
        /// Originating source.
        source: SourceId,
        /// Data sequence number (increments per data packet only).
        seq: Seq,
        /// Statistical-ack epoch in force when the packet was sent.
        epoch: EpochId,
        /// Application payload.
        payload: Bytes,
    },

    /// A keep-alive repeating the previous data sequence number (§2).
    /// Emitted on the variable-heartbeat schedule.
    Heartbeat {
        /// Multicast group.
        group: GroupId,
        /// Originating source.
        source: SourceId,
        /// Sequence number of the most recent data packet.
        seq: Seq,
        /// Current epoch.
        epoch: EpochId,
        /// Index of this heartbeat since the last data packet (1-based);
        /// lets receivers and tests observe the backoff schedule.
        hb_index: u32,
        /// Optional repeat of the previous (small) data payload — the §7
        /// "retransmit the original packet instead of an empty heartbeat"
        /// extension. Empty when disabled.
        payload: Bytes,
    },

    /// A retransmission request, unicast from a receiver to its logger or
    /// from a secondary logger up the hierarchy (§2.2).
    Nack {
        /// Multicast group.
        group: GroupId,
        /// Source whose packets are missing.
        source: SourceId,
        /// Who is asking (replies go to this host).
        requester: HostId,
        /// Missing spans, ascending and disjoint.
        ranges: Vec<SeqRange>,
    },

    /// A retransmitted data packet, unicast to a requester or re-multicast
    /// (site-scoped by a secondary logger, globally by the source under
    /// statistical ack).
    Retrans {
        /// Multicast group.
        group: GroupId,
        /// Originating source.
        source: SourceId,
        /// Sequence number being repaired.
        seq: Seq,
        /// The original payload.
        payload: Bytes,
    },

    /// Cumulative acknowledgement from the primary logger to the source
    /// (§2.2.3). Carries *two* sequence numbers: the highest contiguously
    /// logged packet at the primary, and the highest contiguously
    /// replicated packet. The source may free its buffer only up to
    /// `replica_seq` (or `primary_seq` when replication is disabled).
    LogAck {
        /// Multicast group.
        group: GroupId,
        /// Source being acknowledged.
        source: SourceId,
        /// Highest contiguous sequence logged at the primary.
        primary_seq: Seq,
        /// Highest contiguous sequence held by the most up-to-date replica.
        replica_seq: Seq,
    },

    /// Acker Selection Packet (§2.3.1): starts a new epoch. Each secondary
    /// logger volunteers as a Designated Acker with probability `p_ack`.
    AckerSelect {
        /// Multicast group.
        group: GroupId,
        /// Source selecting its ackers.
        source: SourceId,
        /// The new epoch.
        epoch: EpochId,
        /// Volunteer probability, `k / N_sl`.
        p_ack: f64,
    },

    /// A secondary logger volunteering as Designated Acker for an epoch.
    AckerVolunteer {
        /// Multicast group.
        group: GroupId,
        /// Source being acked.
        source: SourceId,
        /// Epoch volunteered for.
        epoch: EpochId,
        /// The volunteering logger.
        logger: HostId,
    },

    /// Per-data-packet acknowledgement from a Designated Acker (§2.3.1).
    PacketAck {
        /// Multicast group.
        group: GroupId,
        /// Source being acked.
        source: SourceId,
        /// Epoch the acker belongs to.
        epoch: EpochId,
        /// The acknowledged data sequence number.
        seq: Seq,
        /// The acking logger.
        logger: HostId,
    },

    /// Scoped multicast discovery query for a nearby logging service
    /// (§2.2.1). Sent with expanding TTL scopes.
    DiscoveryQuery {
        /// Group the requester participates in.
        group: GroupId,
        /// Matches replies to queries.
        nonce: u64,
        /// Who is searching.
        requester: HostId,
    },

    /// Reply to a discovery query, unicast to the requester.
    DiscoveryReply {
        /// Group.
        group: GroupId,
        /// Echoed nonce.
        nonce: u64,
        /// The responding logging server.
        logger: HostId,
        /// Hierarchy level of the responder (0 = primary, 1 = secondary,
        /// 2+ = deeper site-level loggers).
        level: u8,
    },

    /// A receiver or secondary logger asking the source for the identity
    /// of the current primary logger after a primary failure (§2.2.3).
    LocatePrimary {
        /// Group.
        group: GroupId,
        /// Source queried.
        source: SourceId,
        /// Who asks (reply goes here).
        requester: HostId,
    },

    /// The source's answer: the current primary logging server.
    PrimaryIs {
        /// Group.
        group: GroupId,
        /// Source answering.
        source: SourceId,
        /// Current primary logger host.
        primary: HostId,
    },

    /// Election phase 1 (§2.2.3 hardening): the source, acting as the
    /// single election proposer, asks a replica to promise a new term.
    /// Terms increase monotonically; a replica promises at most one
    /// candidate per term.
    ElectPrepare {
        /// Group.
        group: GroupId,
        /// Source running the election.
        source: SourceId,
        /// Proposed term (strictly greater than any term the source has
        /// started before).
        term: u32,
        /// The host proposing (replies go here).
        candidate: HostId,
    },

    /// Election phase 1 reply: the replica promises to ignore any term
    /// older than `term` and reports how much of the log it holds so the
    /// proposer can pick the most up-to-date replica.
    ElectPromise {
        /// Group.
        group: GroupId,
        /// Source being elected for.
        source: SourceId,
        /// Term being promised.
        term: u32,
        /// The promising replica.
        voter: HostId,
        /// One past the highest contiguously held sequence at the voter.
        log_end: Seq,
    },

    /// Election phase 2, multicast globally: `leader` is the primary
    /// logger for `term`. Every machine that sees this fences the
    /// previous primary — its repairs and LogAcks are rejected until it
    /// rejoins under the new term.
    TermAnnounce {
        /// Group.
        group: GroupId,
        /// Source announcing.
        source: SourceId,
        /// The new term.
        term: u32,
        /// Primary logger for `term`.
        leader: HostId,
    },

    /// Replication stream: primary logger → replica (§2.2.3). Reliable via
    /// [`Packet::ReplAck`] cumulative acks and retransmission.
    ReplUpdate {
        /// Group.
        group: GroupId,
        /// Source of the replicated packet.
        source: SourceId,
        /// Sequence number of the replicated packet.
        seq: Seq,
        /// The payload being replicated.
        payload: Bytes,
    },

    /// Cumulative acknowledgement from a replica to the primary.
    ReplAck {
        /// Group.
        group: GroupId,
        /// Source of the replicated stream.
        source: SourceId,
        /// Highest contiguous sequence held by the replica.
        seq: Seq,
    },

    /// SRM-style session message (the *wb* baseline, §6): members
    /// periodically multicast the highest sequence they have seen so that
    /// others can detect loss of the most recent packet.
    SrmSession {
        /// Group.
        group: GroupId,
        /// Reporting member.
        member: HostId,
        /// Highest sequence the member has received from the source.
        last_seq: Seq,
    },

    /// SRM-style repair request, multicast to the whole group after a
    /// randomized suppression delay.
    SrmNack {
        /// Group.
        group: GroupId,
        /// Source whose data is missing.
        source: SourceId,
        /// The requesting member.
        requester: HostId,
        /// Missing spans.
        ranges: Vec<SeqRange>,
    },

    /// SRM-style repair, multicast to the whole group by whichever member
    /// holds the data and wins the suppression race.
    SrmRepair {
        /// Group.
        group: GroupId,
        /// Source of the repaired packet.
        source: SourceId,
        /// Repaired sequence number.
        seq: Seq,
        /// The member sending the repair.
        responder: HostId,
        /// The payload.
        payload: Bytes,
    },
}

impl Packet {
    /// The group this packet belongs to.
    pub fn group(&self) -> GroupId {
        match self {
            Packet::Data { group, .. }
            | Packet::Heartbeat { group, .. }
            | Packet::Nack { group, .. }
            | Packet::Retrans { group, .. }
            | Packet::LogAck { group, .. }
            | Packet::AckerSelect { group, .. }
            | Packet::AckerVolunteer { group, .. }
            | Packet::PacketAck { group, .. }
            | Packet::DiscoveryQuery { group, .. }
            | Packet::DiscoveryReply { group, .. }
            | Packet::LocatePrimary { group, .. }
            | Packet::PrimaryIs { group, .. }
            | Packet::ElectPrepare { group, .. }
            | Packet::ElectPromise { group, .. }
            | Packet::TermAnnounce { group, .. }
            | Packet::ReplUpdate { group, .. }
            | Packet::ReplAck { group, .. }
            | Packet::SrmSession { group, .. }
            | Packet::SrmNack { group, .. }
            | Packet::SrmRepair { group, .. } => *group,
        }
    }

    /// Short name for tracing and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Packet::Data { .. } => "data",
            Packet::Heartbeat { .. } => "heartbeat",
            Packet::Nack { .. } => "nack",
            Packet::Retrans { .. } => "retrans",
            Packet::LogAck { .. } => "log-ack",
            Packet::AckerSelect { .. } => "acker-select",
            Packet::AckerVolunteer { .. } => "acker-volunteer",
            Packet::PacketAck { .. } => "packet-ack",
            Packet::DiscoveryQuery { .. } => "discovery-query",
            Packet::DiscoveryReply { .. } => "discovery-reply",
            Packet::LocatePrimary { .. } => "locate-primary",
            Packet::PrimaryIs { .. } => "primary-is",
            Packet::ElectPrepare { .. } => "elect-prepare",
            Packet::ElectPromise { .. } => "elect-promise",
            Packet::TermAnnounce { .. } => "term-announce",
            Packet::ReplUpdate { .. } => "repl-update",
            Packet::ReplAck { .. } => "repl-ack",
            Packet::SrmSession { .. } => "srm-session",
            Packet::SrmNack { .. } => "srm-nack",
            Packet::SrmRepair { .. } => "srm-repair",
        }
    }

    /// `true` for packets that constitute protocol *overhead* rather than
    /// application data — used by bandwidth-accounting experiments.
    pub fn is_overhead(&self) -> bool {
        !matches!(self, Packet::Data { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_range_basics() {
        let r = SeqRange {
            first: Seq(5),
            last: Seq(9),
        };
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(r.contains(Seq(5)));
        assert!(r.contains(Seq(9)));
        assert!(!r.contains(Seq(10)));
        assert_eq!(r.iter().count(), 5);
        assert_eq!(SeqRange::single(Seq(3)).len(), 1);
    }

    #[test]
    fn seq_range_wraparound() {
        let r = SeqRange {
            first: Seq(u32::MAX),
            last: Seq(1),
        };
        assert_eq!(r.len(), 3);
        assert!(r.contains(Seq(0)));
        assert!(!r.contains(Seq(2)));
    }

    #[test]
    fn scope_widening() {
        assert_eq!(TtlScope::Site.widen(), Some(TtlScope::Region));
        assert_eq!(TtlScope::Region.widen(), Some(TtlScope::Global));
        assert_eq!(TtlScope::Global.widen(), None);
        assert!(TtlScope::Site.ttl() < TtlScope::Region.ttl());
        assert!(TtlScope::Region.ttl() < TtlScope::Global.ttl());
    }

    #[test]
    fn overhead_classification() {
        let data = Packet::Data {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(1),
            epoch: EpochId(0),
            payload: Bytes::new(),
        };
        assert!(!data.is_overhead());
        assert_eq!(data.kind(), "data");
        let hb = Packet::Heartbeat {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(1),
            epoch: EpochId(0),
            hb_index: 1,
            payload: Bytes::new(),
        };
        assert!(hb.is_overhead());
        assert_eq!(hb.group(), GroupId(1));
    }
}
