//! `chaos` — the consensus-failover chaos scenario matrix.
//!
//! Runs every failure shape (primary crash mid-NACK-service, partition
//! then heal with a stale primary, simultaneous primary + replica
//! failure, replica rejoin with an empty log, repeated crash/re-elect
//! churn) across one or more seeds and event-queue backends, audits
//! each run with the recovery forensics, and exits nonzero if any cell
//! fails — incomplete delivery or a non-clean forensic verdict
//! (unrecovered gaps, stalled settlements, split-brain double-serve).
//!
//! ```text
//! chaos [--shape NAME] [--seeds N,N,...] [--backend wheel|heap|both]
//!       [--json] [--write-json PATH]
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use lbrm_bench::chaos::{matrix_to_json, run_shape, ChaosOutcome, SHAPES};
use lbrm_sim::queue::QueueBackend;

struct Args {
    shape: Option<String>,
    seeds: Vec<u64>,
    backends: Vec<QueueBackend>,
    json: bool,
    write_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shape: None,
        seeds: vec![1, 2, 3],
        backends: vec![QueueBackend::Wheel, QueueBackend::Heap],
        json: false,
        write_json: None,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |name: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or(format!("{name} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shape" => args.shape = Some(next_val("--shape", &mut it)?),
            "--seeds" => {
                args.seeds = next_val("--seeds", &mut it)?
                    .split(',')
                    .map(|s| s.trim().parse::<u64>().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.seeds.is_empty() {
                    return Err("--seeds needs at least one seed".into());
                }
            }
            "--backend" => {
                args.backends = match next_val("--backend", &mut it)?.as_str() {
                    "wheel" => vec![QueueBackend::Wheel],
                    "heap" => vec![QueueBackend::Heap],
                    "both" => vec![QueueBackend::Wheel, QueueBackend::Heap],
                    other => return Err(format!("--backend: unknown backend {other:?}")),
                };
            }
            "--json" => args.json = true,
            "--write-json" => args.write_json = Some(next_val("--write-json", &mut it)?),
            "--help" | "-h" => {
                return Err("usage: chaos [--shape NAME] [--seeds N,N,...] \
                     [--backend wheel|heap|both] [--json] [--write-json PATH]"
                    .into());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if let Some(s) = &args.shape {
        if !SHAPES.contains(&s.as_str()) {
            return Err(format!("--shape: unknown shape {s:?} (known: {SHAPES:?})"));
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let shapes: Vec<&'static str> = match &args.shape {
        Some(s) => SHAPES.iter().copied().filter(|k| k == s).collect(),
        None => SHAPES.to_vec(),
    };
    let mut outcomes: Vec<ChaosOutcome> = Vec::new();
    for shape in shapes {
        for &seed in &args.seeds {
            for &backend in &args.backends {
                let o = run_shape(shape, seed, backend);
                if !args.json {
                    println!("{}", o.render());
                }
                outcomes.push(o);
            }
        }
    }
    let json = matrix_to_json(&outcomes);
    if args.json {
        println!("{json}");
    }
    if let Some(path) = &args.write_json {
        if let Err(e) = std::fs::File::create(path).and_then(|mut f| {
            f.write_all(json.as_bytes())?;
            f.write_all(b"\n")
        }) {
            eprintln!("chaos: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let failed: Vec<&ChaosOutcome> = outcomes.iter().filter(|o| !o.passed()).collect();
    if failed.is_empty() {
        if !args.json {
            println!("chaos: all {} cells clean", outcomes.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "chaos: {}/{} cells failed the clean-failover gate",
            failed.len(),
            outcomes.len()
        );
        ExitCode::FAILURE
    }
}
