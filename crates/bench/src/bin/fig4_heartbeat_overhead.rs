//! Regenerates one evaluation result; see `lbrm_bench::experiments`.
fn main() {
    print!(
        "{}",
        lbrm_bench::experiments::fig4_heartbeat_overhead::run()
    );
}
