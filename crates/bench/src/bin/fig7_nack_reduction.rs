//! Regenerates one evaluation result; see `lbrm_bench::experiments`.
fn main() {
    print!("{}", lbrm_bench::experiments::fig7_nack_reduction::run());
}
