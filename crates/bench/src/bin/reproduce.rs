//! Runs every experiment, regenerating all tables and figures of the
//! paper's evaluation in one go (used to fill EXPERIMENTS.md).

use lbrm_bench::experiments as e;

type Experiment = fn() -> String;

fn main() {
    let sections: Vec<(&str, Experiment)> = vec![
        ("Figure 4", e::fig4_heartbeat_overhead::run),
        ("Figure 5", e::fig5_overhead_ratio::run),
        ("Table 1", e::table1_backoff::run),
        ("Table 2", e::table2_estimation::run),
        ("Table 3", e::table3_breakdown::run),
        ("Figure 7 / §2.2.2 NACK reduction", e::fig7_nack_reduction::run),
        ("§2.2.2 recovery latency", e::exp_recovery_latency::run),
        ("§2.1.1 burst detection bound", e::exp_burst_detection::run),
        ("§2.3 statistical acknowledgement", e::exp_statistical_ack::run),
        ("§2.3.3 group-size churn", e::exp_group_churn::run),
        ("§6 wb comparison", e::exp_wb_comparison::run),
        ("§7 hierarchy ablation", e::exp_hierarchy::run),
        ("§2.2.1 re-multicast ablation", e::exp_remulticast::run),
        ("§2.1.2 DIS scenario", e::exp_dis_scenario::run),
    ];
    for (name, run) in sections {
        println!("{}", "=".repeat(72));
        println!("== {name}");
        println!("{}", "=".repeat(72));
        println!("{}", run());
    }
}
