//! Runs every experiment — in parallel across cores, reported in a fixed
//! order — regenerating all tables and figures of the paper's evaluation
//! in one go (used to fill EXPERIMENTS.md), then closes with a
//! protocol-trace summary and a recovery-forensics report from one seeded
//! lossy run (whose full event stream is saved to
//! `target/reproduce_trace.jsonl` for `trace_doctor` replay).

use std::io::BufWriter;
use std::sync::Arc;

use lbrm_bench::doctor;
use lbrm_bench::experiments as e;
use lbrm_core::trace::{JsonLinesSink, OnlineConfig, TraceSink};
use lbrm_sim::time::SimTime;

type Experiment = fn() -> String;

/// One seeded lossy run, reported entirely through the trace layer:
/// per-role [`lbrm_core::trace::MetricsRegistry`] aggregates, the sim's
/// queue gauges, and the forensic analyzer's recovery report — produced
/// by the streaming correlator riding the live run as a sink, the same
/// bounded-memory path `trace_doctor --stream` uses.
fn trace_summary() -> String {
    let path = "target/reproduce_trace.jsonl";
    let jsonl: Option<Arc<JsonLinesSink<BufWriter<std::fs::File>>>> = std::fs::File::create(path)
        .ok()
        .map(|f| Arc::new(JsonLinesSink::new(BufWriter::new(f))));
    let (run, sc) = doctor::run_scenario_online(
        doctor::demo_config(77),
        20,
        SimTime::from_secs(30),
        OnlineConfig::default(),
        jsonl.clone().map(|s| s as Arc<dyn TraceSink>),
    );
    let mut out = String::from(
        "Protocol observability: per-role trace registries after a seeded\n\
         run (6 sites x 5 receivers, 5% tail-circuit loss, 20 packets).\n\n",
    );
    for (role, reg) in [
        ("sender", &sc.sender_metrics),
        ("primary+replicas", &sc.primary_metrics),
        ("secondaries", &sc.secondary_metrics),
        ("receivers", &sc.receiver_metrics),
        ("network", &sc.net_metrics),
    ] {
        out.push_str(role);
        out.push('\n');
        out.push_str(&reg.render());
        out.push('\n');
    }
    out.push_str("Recovery forensics (trace_doctor over the same stream):\n\n");
    out.push_str(&run.report.render());
    assert!(
        run.report.is_clean(),
        "reproduce trace not clean: {:?}",
        run.report.anomalies
    );
    // The capture is replayable: `trace_doctor target/reproduce_trace.jsonl`.
    if let Some(sink) = jsonl {
        sink.flush();
        out.push_str(&format!("\nFull event stream saved to {path}\n"));
    }
    out
}

fn main() {
    let sections: Vec<(&str, Experiment)> = vec![
        ("Figure 4", e::fig4_heartbeat_overhead::run),
        ("Figure 5", e::fig5_overhead_ratio::run),
        ("Table 1", e::table1_backoff::run),
        ("Table 2", e::table2_estimation::run),
        ("Table 3", e::table3_breakdown::run),
        (
            "Figure 7 / §2.2.2 NACK reduction",
            e::fig7_nack_reduction::run,
        ),
        ("§2.2.2 recovery latency", e::exp_recovery_latency::run),
        ("§2.1.1 burst detection bound", e::exp_burst_detection::run),
        (
            "§2.3 statistical acknowledgement",
            e::exp_statistical_ack::run,
        ),
        ("§2.3.3 group-size churn", e::exp_group_churn::run),
        ("§6 wb comparison", e::exp_wb_comparison::run),
        ("§7 hierarchy ablation", e::exp_hierarchy::run),
        ("§2.2.1 re-multicast ablation", e::exp_remulticast::run),
        ("§2.1.2 DIS scenario", e::exp_dis_scenario::run),
        ("PDU bundling NACK storm", e::exp_bundle_storm::run),
        ("Trace-layer summary", trace_summary),
    ];
    // Sections are independent experiments, so they run on all cores;
    // `run_sections` hands back (name, body) in input order and nothing
    // prints until every body is in, so stdout — and the trace capture,
    // written by the single `trace_summary` section — stays byte-identical
    // to a serial run.
    for (name, body) in lbrm_bench::parallel::run_sections(sections) {
        println!("{}", "=".repeat(72));
        println!("== {name}");
        println!("{}", "=".repeat(72));
        println!("{body}");
    }
}
