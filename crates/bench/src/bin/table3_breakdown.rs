//! Regenerates one evaluation result; see `lbrm_bench::experiments`.
fn main() {
    print!("{}", lbrm_bench::experiments::table3_breakdown::run());
}
