//! `trace_doctor` — recovery forensics over a protocol-event stream.
//!
//! Replays a `JsonLinesSink` capture (pass the file path) or runs the
//! built-in seeded lossy DIS scenario, correlates the events into
//! per-`(host, seq)` recovery timelines, and reports per-stage latency
//! histograms, the repair-source breakdown, and any protocol-health
//! anomalies (unrecovered gaps, NACK implosion, excess duplicate
//! repairs, heartbeat silence, stalled settlements).
//!
//! ```text
//! trace_doctor [TRACE.jsonl] [--seed N] [--json] [--write-json PATH]
//!              [--assert-clean]
//! ```
//!
//! `--assert-clean` exits nonzero when any anomaly is detected (CI
//! gate); `--write-json` saves the machine-readable report.

use std::io::Write as _;
use std::process::ExitCode;

use lbrm_bench::doctor::{analyze_jsonl_reader, demo_run, DoctorRun};
use lbrm_core::trace::analyze::AnalyzeConfig;

struct Args {
    file: Option<String>,
    seed: u64,
    json: bool,
    write_json: Option<String>,
    assert_clean: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        seed: 77,
        json: false,
        write_json: None,
        assert_clean: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => args.json = true,
            "--write-json" => {
                args.write_json = Some(it.next().ok_or("--write-json needs a path")?);
            }
            "--assert-clean" => args.assert_clean = true,
            "--help" | "-h" => {
                return Err("usage: trace_doctor [TRACE.jsonl] [--seed N] [--json] \
                     [--write-json PATH] [--assert-clean]"
                    .into());
            }
            other if !other.starts_with('-') && args.file.is_none() => {
                args.file = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<DoctorRun, String> {
    match &args.file {
        Some(path) => {
            // Stream the capture line-by-line: replaying a million-event
            // JSONL file should cost the parsed records, not an extra
            // whole-file string.
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            analyze_jsonl_reader(std::io::BufReader::new(file), &AnalyzeConfig::default())
                .map_err(|e| format!("{path}: {e}"))
        }
        None => Ok(demo_run(args.seed)),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match run(&args) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("trace_doctor: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        println!("{}", doc.to_json());
    } else {
        match &args.file {
            Some(path) => println!(
                "trace_doctor: {path} ({} records, {} malformed lines skipped)\n",
                doc.records, doc.skipped
            ),
            None => println!(
                "trace_doctor: built-in lossy DIS scenario, seed {} ({} records)\n",
                args.seed, doc.records
            ),
        }
        print!("{}", doc.report.render());
    }
    if let Some(path) = &args.write_json {
        if let Err(e) = std::fs::File::create(path).and_then(|mut f| {
            f.write_all(doc.to_json().as_bytes())?;
            f.write_all(b"\n")
        }) {
            eprintln!("trace_doctor: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.assert_clean && !doc.report.is_clean() {
        eprintln!(
            "trace_doctor: --assert-clean failed: {} anomalies",
            doc.report.anomalies.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
