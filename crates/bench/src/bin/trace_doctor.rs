//! `trace_doctor` — recovery forensics over a protocol-event stream.
//!
//! Replays a `JsonLinesSink` capture (pass the file path) or runs the
//! built-in seeded lossy DIS scenario, correlates the events into
//! per-`(host, seq)` recovery timelines, and reports per-stage latency
//! histograms, the repair-source breakdown, and any protocol-health
//! anomalies (unrecovered gaps, NACK implosion, excess duplicate
//! repairs, heartbeat silence, stalled settlements).
//!
//! ```text
//! trace_doctor [TRACE.jsonl] [--seed N] [--json] [--write-json PATH]
//!              [--assert-clean] [--stream | --batch]
//!              [--max-live-timelines N] [--horizon-ms N] [--reservoir N]
//!              [--mem-budget BYTES[K|M|G]]
//!              [--sites N] [--receivers N] [--packets N]
//!              [--write-trace PATH]
//! ```
//!
//! The default engine is the streaming correlator (`--stream`): one
//! record at a time in bounded memory, with `--max-live-timelines` /
//! `--horizon-ms` / `--reservoir` controlling eviction and sampling.
//! `--batch` selects the materializing reference analyzer instead.
//! `--mem-budget` exits nonzero when the analyzer's peak resident state
//! exceeds the budget (the CI memory gate); `--assert-clean` exits
//! nonzero on any anomaly. `--sites`/`--receivers`/`--packets` scale
//! the built-in scenario (CI uses this to generate a ≥1M-event capture
//! via `--write-trace`).

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use lbrm_bench::doctor::{
    analyze_jsonl_reader, analyze_jsonl_reader_online, demo_config, demo_run, parse_bytes,
    run_scenario, run_scenario_online, DoctorRun,
};
use lbrm_core::trace::analyze::AnalyzeConfig;
use lbrm_core::trace::{JsonLinesSink, OnlineConfig, TraceSink};
use lbrm_sim::time::SimTime;

struct Args {
    file: Option<String>,
    seed: u64,
    json: bool,
    write_json: Option<String>,
    assert_clean: bool,
    stream: bool,
    max_live_timelines: Option<usize>,
    horizon_ms: Option<u64>,
    reservoir: Option<usize>,
    mem_budget: Option<u64>,
    sites: Option<u32>,
    receivers: Option<u32>,
    packets: u64,
    write_trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        seed: 77,
        json: false,
        write_json: None,
        assert_clean: false,
        stream: true,
        max_live_timelines: None,
        horizon_ms: None,
        reservoir: None,
        mem_budget: None,
        sites: None,
        receivers: None,
        packets: 20,
        write_trace: None,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |name: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or(format!("{name} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = next_val("--seed", &mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => args.json = true,
            "--write-json" => {
                args.write_json = Some(next_val("--write-json", &mut it)?);
            }
            "--assert-clean" => args.assert_clean = true,
            "--stream" => args.stream = true,
            "--batch" => args.stream = false,
            "--max-live-timelines" => {
                args.max_live_timelines = Some(
                    next_val("--max-live-timelines", &mut it)?
                        .parse()
                        .map_err(|e| format!("--max-live-timelines: {e}"))?,
                );
            }
            "--horizon-ms" => {
                args.horizon_ms = Some(
                    next_val("--horizon-ms", &mut it)?
                        .parse()
                        .map_err(|e| format!("--horizon-ms: {e}"))?,
                );
            }
            "--reservoir" => {
                args.reservoir = Some(
                    next_val("--reservoir", &mut it)?
                        .parse()
                        .map_err(|e| format!("--reservoir: {e}"))?,
                );
            }
            "--mem-budget" => {
                args.mem_budget = Some(
                    parse_bytes(&next_val("--mem-budget", &mut it)?)
                        .map_err(|e| format!("--mem-budget: {e}"))?,
                );
            }
            "--sites" => {
                args.sites = Some(
                    next_val("--sites", &mut it)?
                        .parse()
                        .map_err(|e| format!("--sites: {e}"))?,
                );
            }
            "--receivers" => {
                args.receivers = Some(
                    next_val("--receivers", &mut it)?
                        .parse()
                        .map_err(|e| format!("--receivers: {e}"))?,
                );
            }
            "--packets" => {
                args.packets = next_val("--packets", &mut it)?
                    .parse()
                    .map_err(|e| format!("--packets: {e}"))?;
            }
            "--write-trace" => {
                args.write_trace = Some(next_val("--write-trace", &mut it)?);
            }
            "--help" | "-h" => {
                return Err("usage: trace_doctor [TRACE.jsonl] [--seed N] [--json] \
                     [--write-json PATH] [--assert-clean] [--stream | --batch] \
                     [--max-live-timelines N] [--horizon-ms N] [--reservoir N] \
                     [--mem-budget BYTES[K|M|G]] [--sites N] [--receivers N] \
                     [--packets N] [--write-trace PATH]"
                    .into());
            }
            other if !other.starts_with('-') && args.file.is_none() => {
                args.file = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn online_config(args: &Args) -> OnlineConfig {
    let mut cfg = OnlineConfig {
        analyze: AnalyzeConfig::default(),
        max_live_timelines: args.max_live_timelines,
        horizon_nanos: args.horizon_ms.map(|ms| ms * 1_000_000),
        ..OnlineConfig::default()
    };
    if let Some(r) = args.reservoir {
        cfg.stage_reservoir = r;
        cfg.timeline_reservoir = r;
    }
    cfg
}

fn run(args: &Args) -> Result<DoctorRun, String> {
    match &args.file {
        Some(path) => {
            // Stream the capture line-by-line: replaying a million-event
            // JSONL file should cost the parsed records, not an extra
            // whole-file string.
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let reader = std::io::BufReader::new(file);
            if args.stream {
                analyze_jsonl_reader_online(reader, online_config(args))
            } else {
                analyze_jsonl_reader(reader, &AnalyzeConfig::default())
            }
            .map_err(|e| format!("{path}: {e}"))
        }
        None => {
            let mut config = demo_config(args.seed);
            if let Some(s) = args.sites {
                config.sites = s as usize;
            }
            if let Some(r) = args.receivers {
                config.receivers_per_site = r as usize;
            }
            // Sends run at 250 ms spacing from t = 1 s; leave the tail
            // room the demo run gives its 20 packets over 30 s.
            let until = SimTime::from_millis((1_000 + 250 * args.packets + 25_000).max(30_000));
            let capture: Option<Arc<JsonLinesSink<std::io::BufWriter<std::fs::File>>>> =
                match &args.write_trace {
                    Some(path) => {
                        let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                        Some(Arc::new(JsonLinesSink::new(std::io::BufWriter::new(f))))
                    }
                    None => None,
                };
            let extra = capture.clone().map(|s| s as Arc<dyn TraceSink>);
            let run = if args.stream {
                run_scenario_online(config, args.packets, until, online_config(args), extra).0
            } else if extra.is_none() && args.packets == 20 {
                demo_run(args.seed)
            } else {
                run_scenario(
                    config,
                    args.packets,
                    until,
                    &AnalyzeConfig::default(),
                    extra,
                )
                .0
            };
            if let Some(sink) = capture {
                sink.flush();
            }
            Ok(run)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match run(&args) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("trace_doctor: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        println!("{}", doc.to_json());
    } else {
        let engine = if args.stream { "streaming" } else { "batch" };
        match &args.file {
            Some(path) => println!(
                "trace_doctor: {path} ({} records, {} malformed lines skipped, {engine})\n",
                doc.records, doc.skipped
            ),
            None => println!(
                "trace_doctor: built-in lossy DIS scenario, seed {} ({} records, {engine})\n",
                args.seed, doc.records
            ),
        }
        print!("{}", doc.report.render());
    }
    if let Some(path) = &args.write_json {
        if let Err(e) = std::fs::File::create(path).and_then(|mut f| {
            f.write_all(doc.to_json().as_bytes())?;
            f.write_all(b"\n")
        }) {
            eprintln!("trace_doctor: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut failed = false;
    if let Some(budget) = args.mem_budget {
        let peak = doc.report.stream.peak_resident_bytes;
        if peak > budget {
            eprintln!(
                "trace_doctor: --mem-budget failed: peak resident {peak} bytes > budget {budget}"
            );
            failed = true;
        }
    }
    if let Some(cap) = args.max_live_timelines {
        let peak = doc.report.stream.peak_live_timelines;
        if peak > cap as u64 {
            eprintln!("trace_doctor: live-timeline budget failed: peak {peak} > cap {cap}");
            failed = true;
        }
    }
    if args.assert_clean && !doc.report.is_clean() {
        eprintln!(
            "trace_doctor: --assert-clean failed: {} anomalies",
            doc.report.anomalies.len()
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
