//! `trace_doctor` — recovery forensics over a protocol-event stream.
//!
//! Replays a `JsonLinesSink` capture (pass the file path) or runs the
//! built-in seeded lossy DIS scenario, correlates the events into
//! per-`(host, seq)` recovery timelines, and reports per-stage latency
//! histograms, the repair-source breakdown, and any protocol-health
//! anomalies (unrecovered gaps, NACK implosion, excess duplicate
//! repairs, heartbeat silence, stalled settlements).
//!
//! ```text
//! trace_doctor [TRACE.jsonl] [--seed N] [--json] [--write-json PATH]
//!              [--assert-clean] [--stream | --batch]
//!              [--max-live-timelines N] [--horizon-ms N] [--reservoir N]
//!              [--mem-budget BYTES[K|M|G]]
//!              [--sites N] [--receivers N] [--packets N]
//!              [--write-trace PATH]
//!              [--live [--admin-addr HOST:PORT] [--loss RATE]
//!               [--spacing-ms N] [--settle-ms N] [--linger-ms N]
//!               [--hub] [--port N]]
//!              [--follow TRACE.jsonl [--quiet-ms N]]
//! ```
//!
//! `--live` runs real endpoint threads (UDP multicast on loopback when
//! available, the in-process hub otherwise, or always with `--hub`)
//! with the doctor sidecar attached, induced receiver-side data loss
//! (`--loss`), and — with `--admin-addr` — the hand-rolled HTTP admin
//! surface (`/stats`, `/timelines/live`, `/anomalies/tail?n=`,
//! `/deltas/last`, `/mem`, `/healthz`) answering while traffic flows.
//! `--follow` tails a *growing* capture through the same incremental
//! path, stopping once the file has been quiet for `--quiet-ms`.
//!
//! The default engine is the streaming correlator (`--stream`): one
//! record at a time in bounded memory, with `--max-live-timelines` /
//! `--horizon-ms` / `--reservoir` controlling eviction and sampling.
//! `--batch` selects the materializing reference analyzer instead.
//! `--mem-budget` exits nonzero when the analyzer's peak resident state
//! exceeds the budget (the CI memory gate); `--assert-clean` exits
//! nonzero on any anomaly. `--sites`/`--receivers`/`--packets` scale
//! the built-in scenario (CI uses this to generate a ≥1M-event capture
//! via `--write-trace`).

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use lbrm_bench::doctor::{
    analyze_jsonl_reader, analyze_jsonl_reader_online, demo_config, demo_run, follow_jsonl,
    parse_bytes, run_scenario, run_scenario_online, DoctorRun,
};
use lbrm_bench::live::{run_live, LiveOptions};
use lbrm_core::trace::analyze::AnalyzeConfig;
use lbrm_core::trace::{JsonLinesSink, OnlineConfig, ReportBasis, TraceSink};
use lbrm_sim::time::SimTime;

struct Args {
    file: Option<String>,
    seed: u64,
    json: bool,
    write_json: Option<String>,
    assert_clean: bool,
    stream: bool,
    max_live_timelines: Option<usize>,
    horizon_ms: Option<u64>,
    reservoir: Option<usize>,
    mem_budget: Option<u64>,
    sites: Option<u32>,
    receivers: Option<u32>,
    packets: u64,
    write_trace: Option<String>,
    live: bool,
    admin_addr: Option<String>,
    follow: bool,
    quiet_ms: u64,
    loss: f64,
    spacing_ms: u64,
    settle_ms: u64,
    linger_ms: u64,
    hub: bool,
    port: u16,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        seed: 77,
        json: false,
        write_json: None,
        assert_clean: false,
        stream: true,
        max_live_timelines: None,
        horizon_ms: None,
        reservoir: None,
        mem_budget: None,
        sites: None,
        receivers: None,
        packets: 20,
        write_trace: None,
        live: false,
        admin_addr: None,
        follow: false,
        quiet_ms: 2_000,
        loss: 0.15,
        spacing_ms: 25,
        settle_ms: 5_000,
        linger_ms: 0,
        hub: false,
        port: 49_501,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |name: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or(format!("{name} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = next_val("--seed", &mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => args.json = true,
            "--write-json" => {
                args.write_json = Some(next_val("--write-json", &mut it)?);
            }
            "--assert-clean" => args.assert_clean = true,
            "--stream" => args.stream = true,
            "--batch" => args.stream = false,
            "--max-live-timelines" => {
                args.max_live_timelines = Some(
                    next_val("--max-live-timelines", &mut it)?
                        .parse()
                        .map_err(|e| format!("--max-live-timelines: {e}"))?,
                );
            }
            "--horizon-ms" => {
                args.horizon_ms = Some(
                    next_val("--horizon-ms", &mut it)?
                        .parse()
                        .map_err(|e| format!("--horizon-ms: {e}"))?,
                );
            }
            "--reservoir" => {
                args.reservoir = Some(
                    next_val("--reservoir", &mut it)?
                        .parse()
                        .map_err(|e| format!("--reservoir: {e}"))?,
                );
            }
            "--mem-budget" => {
                args.mem_budget = Some(
                    parse_bytes(&next_val("--mem-budget", &mut it)?)
                        .map_err(|e| format!("--mem-budget: {e}"))?,
                );
            }
            "--sites" => {
                args.sites = Some(
                    next_val("--sites", &mut it)?
                        .parse()
                        .map_err(|e| format!("--sites: {e}"))?,
                );
            }
            "--receivers" => {
                args.receivers = Some(
                    next_val("--receivers", &mut it)?
                        .parse()
                        .map_err(|e| format!("--receivers: {e}"))?,
                );
            }
            "--packets" => {
                args.packets = next_val("--packets", &mut it)?
                    .parse()
                    .map_err(|e| format!("--packets: {e}"))?;
            }
            "--write-trace" => {
                args.write_trace = Some(next_val("--write-trace", &mut it)?);
            }
            "--live" => args.live = true,
            "--admin-addr" => {
                args.admin_addr = Some(next_val("--admin-addr", &mut it)?);
            }
            "--follow" => args.follow = true,
            "--quiet-ms" => {
                args.quiet_ms = next_val("--quiet-ms", &mut it)?
                    .parse()
                    .map_err(|e| format!("--quiet-ms: {e}"))?;
            }
            "--loss" => {
                args.loss = next_val("--loss", &mut it)?
                    .parse()
                    .map_err(|e| format!("--loss: {e}"))?;
            }
            "--spacing-ms" => {
                args.spacing_ms = next_val("--spacing-ms", &mut it)?
                    .parse()
                    .map_err(|e| format!("--spacing-ms: {e}"))?;
            }
            "--settle-ms" => {
                args.settle_ms = next_val("--settle-ms", &mut it)?
                    .parse()
                    .map_err(|e| format!("--settle-ms: {e}"))?;
            }
            "--linger-ms" => {
                args.linger_ms = next_val("--linger-ms", &mut it)?
                    .parse()
                    .map_err(|e| format!("--linger-ms: {e}"))?;
            }
            "--hub" => args.hub = true,
            "--port" => {
                args.port = next_val("--port", &mut it)?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: trace_doctor [TRACE.jsonl] [--seed N] [--json] \
                     [--write-json PATH] [--assert-clean] [--stream | --batch] \
                     [--max-live-timelines N] [--horizon-ms N] [--reservoir N] \
                     [--mem-budget BYTES[K|M|G]] [--sites N] [--receivers N] \
                     [--packets N] [--write-trace PATH] \
                     [--live [--admin-addr HOST:PORT] [--loss RATE] [--spacing-ms N] \
                     [--settle-ms N] [--linger-ms N] [--hub] [--port N]] \
                     [--follow TRACE.jsonl [--quiet-ms N]]"
                    .into());
            }
            other if !other.starts_with('-') && args.file.is_none() => {
                args.file = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.admin_addr.is_some() && !args.live {
        return Err("--admin-addr requires --live".into());
    }
    if args.follow && args.live {
        return Err("--follow and --live are mutually exclusive".into());
    }
    if args.follow && args.file.is_none() {
        return Err("--follow needs a capture path to tail".into());
    }
    Ok(args)
}

fn online_config(args: &Args) -> OnlineConfig {
    let mut cfg = OnlineConfig {
        analyze: AnalyzeConfig::default(),
        max_live_timelines: args.max_live_timelines,
        horizon_nanos: args.horizon_ms.map(|ms| ms * 1_000_000),
        ..OnlineConfig::default()
    };
    if let Some(r) = args.reservoir {
        cfg.stage_reservoir = r;
        cfg.timeline_reservoir = r;
    }
    cfg
}

fn run(args: &Args) -> Result<DoctorRun, String> {
    match &args.file {
        Some(path) => {
            // Stream the capture line-by-line: replaying a million-event
            // JSONL file should cost the parsed records, not an extra
            // whole-file string.
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let reader = std::io::BufReader::new(file);
            if args.stream {
                analyze_jsonl_reader_online(reader, online_config(args))
            } else {
                analyze_jsonl_reader(reader, &AnalyzeConfig::default())
            }
            .map_err(|e| format!("{path}: {e}"))
        }
        None => {
            let mut config = demo_config(args.seed);
            if let Some(s) = args.sites {
                config.sites = s as usize;
            }
            if let Some(r) = args.receivers {
                config.receivers_per_site = r as usize;
            }
            // Sends run at 250 ms spacing from t = 1 s; leave the tail
            // room the demo run gives its 20 packets over 30 s.
            let until = SimTime::from_millis((1_000 + 250 * args.packets + 25_000).max(30_000));
            let capture: Option<Arc<JsonLinesSink<std::io::BufWriter<std::fs::File>>>> =
                match &args.write_trace {
                    Some(path) => {
                        let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                        Some(Arc::new(JsonLinesSink::new(std::io::BufWriter::new(f))))
                    }
                    None => None,
                };
            let extra = capture.clone().map(|s| s as Arc<dyn TraceSink>);
            let run = if args.stream {
                run_scenario_online(config, args.packets, until, online_config(args), extra).0
            } else if extra.is_none() && args.packets == 20 {
                demo_run(args.seed)
            } else {
                run_scenario(
                    config,
                    args.packets,
                    until,
                    &AnalyzeConfig::default(),
                    extra,
                )
                .0
            };
            if let Some(sink) = capture {
                sink.flush();
            }
            Ok(run)
        }
    }
}

/// Tails a growing capture (`--follow`), stopping once the file has
/// been quiet for `--quiet-ms`.
fn run_follow(args: &Args) -> Result<DoctorRun, String> {
    let path = args.file.as_deref().expect("checked in parse_args");
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let quiet = Duration::from_millis(args.quiet_ms.max(1));
    follow_jsonl(
        std::io::BufReader::new(file),
        online_config(args),
        Duration::from_millis(25),
        |p| p.quiet_for >= quiet,
    )
    .map_err(|e| format!("{path}: {e}"))
}

/// Runs the real-endpoint scenario (`--live`) with the doctor sidecar
/// attached and, optionally, the HTTP admin surface bound. Returns the
/// run plus whether a hard live-mode invariant failed (delta-fold
/// fidelity broken, or — under `--assert-clean` — events dropped at the
/// sidecar sink).
fn run_live_cmd(args: &Args) -> Result<(DoctorRun, bool), String> {
    let capture: Option<Arc<JsonLinesSink<std::io::BufWriter<std::fs::File>>>> =
        match &args.write_trace {
            Some(path) => {
                let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                Some(Arc::new(JsonLinesSink::new(std::io::BufWriter::new(f))))
            }
            None => None,
        };
    let opts = LiveOptions {
        receivers: args.receivers.map(|r| r as usize).unwrap_or(3),
        packets: args.packets,
        loss: args.loss,
        seed: args.seed,
        spacing: Duration::from_millis(args.spacing_ms),
        settle: Duration::from_millis(args.settle_ms),
        port: args.port,
        use_hub: args.hub,
        admin_addr: args.admin_addr.clone(),
        capture: capture.clone().map(|s| s as Arc<dyn TraceSink>),
        doctor: lbrm_core::trace::DoctorConfig::default(),
        bundle: None,
    };
    let linger = Duration::from_millis(args.linger_ms);
    let outcome = run_live(opts, |air| {
        if let Some(addr) = air.admin_addr {
            println!("trace_doctor: admin surface listening on http://{addr}/");
        }
        if !linger.is_zero() {
            std::thread::sleep(linger);
        }
    })
    .map_err(|e| format!("--live: {e}"))?;
    if let Some(sink) = capture {
        sink.flush();
    }

    // The live fidelity contract: the fold of every emitted delta must
    // telescope to exactly the final report.
    let fold_ok = outcome.finish.fold.basis == ReportBasis::of_report(&outcome.finish.report);
    let dropped = outcome.finish.dropped_events;
    eprintln!(
        "trace_doctor: live over {} — {} delivered ({} recovered), {} induced drops, \
         {} sink drops, {} ticks, fold==batch: {fold_ok}",
        outcome.transport,
        outcome.delivered,
        outcome.recovered,
        outcome.induced_drops,
        dropped,
        outcome.finish.records,
    );
    if !fold_ok {
        eprintln!("trace_doctor: delta-fold fidelity violated in live mode");
    }
    let failed = !fold_ok || (args.assert_clean && dropped > 0);
    if args.assert_clean && dropped > 0 {
        eprintln!("trace_doctor: --assert-clean failed: {dropped} events dropped at the sink");
    }
    let records = outcome.finish.records as usize;
    Ok((
        DoctorRun {
            report: outcome.finish.report,
            records,
            skipped: 0,
        },
        failed,
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut live_failed = false;
    let doc = if args.live {
        match run_live_cmd(&args) {
            Ok((d, failed)) => {
                live_failed = failed;
                d
            }
            Err(msg) => {
                eprintln!("trace_doctor: {msg}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.follow {
        match run_follow(&args) {
            Ok(d) => d,
            Err(msg) => {
                eprintln!("trace_doctor: {msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match run(&args) {
            Ok(d) => d,
            Err(msg) => {
                eprintln!("trace_doctor: {msg}");
                return ExitCode::FAILURE;
            }
        }
    };

    if args.json {
        println!("{}", doc.to_json());
    } else {
        let engine = if args.stream { "streaming" } else { "batch" };
        if args.live {
            println!(
                "trace_doctor: live endpoint scenario, seed {} ({} records, incremental)\n",
                args.seed, doc.records
            );
        } else if args.follow {
            println!(
                "trace_doctor: followed {} ({} records, {} malformed lines skipped, incremental)\n",
                args.file.as_deref().unwrap_or("?"),
                doc.records,
                doc.skipped
            );
        } else {
            match &args.file {
                Some(path) => println!(
                    "trace_doctor: {path} ({} records, {} malformed lines skipped, {engine})\n",
                    doc.records, doc.skipped
                ),
                None => println!(
                    "trace_doctor: built-in lossy DIS scenario, seed {} ({} records, {engine})\n",
                    args.seed, doc.records
                ),
            }
        }
        print!("{}", doc.report.render());
    }
    if let Some(path) = &args.write_json {
        if let Err(e) = std::fs::File::create(path).and_then(|mut f| {
            f.write_all(doc.to_json().as_bytes())?;
            f.write_all(b"\n")
        }) {
            eprintln!("trace_doctor: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut failed = live_failed;
    if let Some(budget) = args.mem_budget {
        let peak = doc.report.stream.peak_resident_bytes;
        if peak > budget {
            eprintln!(
                "trace_doctor: --mem-budget failed: peak resident {peak} bytes > budget {budget}"
            );
            failed = true;
        }
    }
    if let Some(cap) = args.max_live_timelines {
        let peak = doc.report.stream.peak_live_timelines;
        if peak > cap as u64 {
            eprintln!("trace_doctor: live-timeline budget failed: peak {peak} > cap {cap}");
            failed = true;
        }
    }
    if args.assert_clean && !doc.report.is_clean() {
        eprintln!(
            "trace_doctor: --assert-clean failed: {} anomalies",
            doc.report.anomalies.len()
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
