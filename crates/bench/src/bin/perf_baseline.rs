//! Persisted performance baseline for the simulator's hot paths.
//!
//! Times the simulator's representative workloads — the DIS scenario's
//! event-loop step rate, dense timer churn on the event queue itself,
//! wire codec encode/decode, the logger's NACK fan-in service path, and
//! the streaming forensics correlator's event-consumption rate — and
//! writes the results to `BENCH_sim.json` at the repo root so
//! regressions are visible in review.
//!
//! ```text
//! perf_baseline            # measure and rewrite BENCH_sim.json
//! perf_baseline --check    # measure and FAIL on a large regression:
//!                          # >25% on the DIS scenario step rate, >60%
//!                          # on the codec and logger microbenches
//! ```
//!
//! `--check` gates hardest on the step rate (the end-to-end number);
//! the codec and logger floors are looser because short microbenches
//! are noisier. All thresholds are loose on purpose: CI machines are
//! noisy, and the committed file may have been produced on different
//! hardware — the check catches order-of-magnitude mistakes (an
//! accidental serialize on the send path, a linear scan in the log),
//! not single-digit-percent drift.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm_bench::experiments::table3_breakdown::{loaded_logger, serve_once};
use lbrm_bench::microbench::bench_function;
use lbrm_core::machine::{Actions, Machine};
use lbrm_sim::loss::LossModel;
use lbrm_sim::queue::{EventQueue, QueueBackend};
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;
use lbrm_wire::packet::SeqRange;
use lbrm_wire::{
    decode_bytes, encode, encode_bundle, BundleBuilder, EpochId, GroupId, HostId, Packet, Seq,
    SourceId, DEFAULT_BUNDLE_MTU,
};

/// Where the committed baseline lives (repo root).
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");

/// `--check` fails when the measured step rate drops below this fraction
/// of the committed one.
const CHECK_FLOOR: f64 = 0.75;

/// Looser floor for the codec and logger microbenches: tiny kernels
/// whiplash more under CI noise, so only a >60% collapse (a lost
/// zero-copy, an accidental re-encode) fails the check.
const AUX_CHECK_FLOOR: f64 = 0.40;

/// One measured workload.
#[derive(Debug, Clone, PartialEq)]
struct Workload {
    name: String,
    /// Throughput in events (or iterations) per second.
    events_per_sec: f64,
    /// Wall-clock spent measuring, in seconds.
    wall_secs: f64,
}

/// Runs the DIS scenario once and returns (events processed, wall time).
///
/// Deterministic: fixed seed, fixed loss schedule, so the event count is
/// identical run-to-run and only the wall time varies.
fn dis_scenario_events() -> (u64, Duration) {
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 10,
        receivers_per_site: 5,
        secondary_loggers: true,
        site_params: SiteParams {
            tail_in_loss: LossModel::rate(0.05),
            ..SiteParams::distant()
        },
        site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
        seed: 7,
        ..DisScenarioConfig::default()
    });
    for i in 0..20u64 {
        sc.send_at(
            SimTime::from_millis(1000 + i * 400),
            Bytes::from_static(b"perf-baseline-update"),
        );
    }
    let limit = SimTime::from_secs(60);
    let start = Instant::now();
    let mut events = 0u64;
    while sc.world.now() <= limit && sc.world.step() {
        events += 1;
    }
    (events, start.elapsed())
}

/// DIS scenario step rate: best-of-many runs (the metric `--check`
/// gates on, so take the least noisy sample and accumulate enough wall
/// time that one scheduler hiccup can't dominate the measurement).
fn bench_dis_scenario() -> Workload {
    let mut best_rate = 0.0f64;
    let mut total_wall = Duration::ZERO;
    let mut runs = 0u32;
    while runs < 3 || (total_wall < Duration::from_millis(250) && runs < 100) {
        let (events, wall) = dis_scenario_events();
        total_wall += wall;
        runs += 1;
        best_rate = best_rate.max(events as f64 / wall.as_secs_f64());
    }
    Workload {
        name: "dis_scenario_step".into(),
        events_per_sec: best_rate,
        wall_secs: total_wall.as_secs_f64(),
    }
}

/// How many shards the 1000-site workload runs with here: one per core
/// up to 8, so the committed number reflects the parallel simulator on
/// multi-core boxes and degrades to the serial path on one core.
fn bench_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// The committed 1000-site × 30-receiver DIS workload: the scale the
/// shard-invariance matrix pins, run through `run_until` so the sharded
/// epoch scheduler (not the serial `step()` path) is what gets timed.
/// The event count is seed-determined and shard-invariant; only wall
/// time varies.
fn dis_1000x30_events(shards: usize) -> (u64, Duration) {
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 1_000,
        receivers_per_site: 30,
        site_params: SiteParams {
            tail_in_loss: LossModel::rate(0.05),
            ..SiteParams::distant()
        },
        shards: Some(shards),
        seed: 1995,
        ..DisScenarioConfig::default()
    });
    for i in 0..4u64 {
        sc.send_at(
            SimTime::from_millis(1_000 + i * 400),
            Bytes::from_static(b"perf-baseline-1000x30"),
        );
    }
    let start = Instant::now();
    sc.world.run_until(SimTime::from_millis(3_000));
    (sc.world.events_processed(), start.elapsed())
}

/// Best-of-runs rate for the 1000×30 workload at `shards` shards.
fn dis_1000x30_rate(shards: usize) -> Workload {
    let mut best_rate = 0.0f64;
    let mut total_wall = Duration::ZERO;
    let mut runs = 0u32;
    while runs < 2 || (total_wall < Duration::from_millis(500) && runs < 20) {
        let (events, wall) = dis_1000x30_events(shards);
        total_wall += wall;
        runs += 1;
        best_rate = best_rate.max(events as f64 / wall.as_secs_f64());
    }
    Workload {
        name: "dis_scenario_1000x30".into(),
        events_per_sec: best_rate,
        wall_secs: total_wall.as_secs_f64(),
    }
}

fn bench_dis_1000x30() -> Workload {
    dis_1000x30_rate(bench_shards())
}

/// Dense timer arm/fire churn on the event queue alone: a steady
/// population of timers where every pop re-arms with a delta drawn from
/// the bands the DIS scenario schedules in (same-tick LAN deliveries,
/// 5–80 ms link latencies, the 250 ms heartbeat, multi-second idle
/// backoff). Exercises bucket pushes, cascades, and the ready list
/// without any actor work in the way.
fn bench_event_queue_churn() -> Workload {
    const RESIDENT: usize = 4096;
    const ITERS: u64 = 400_000;
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn delta(r: u64) -> Duration {
        Duration::from_nanos(match r % 10 {
            0..=2 => r % 1_000_000,                  // same tick
            3..=6 => 5_000_000 + r % 75_000_000,     // link latencies
            7..=8 => 250_000_000,                    // h_min heartbeat
            _ => 2_000_000_000 + r % 30_000_000_000, // h_max backoff band
        })
    }
    let run = || {
        let mut q: EventQueue<u64> = EventQueue::new(QueueBackend::Wheel);
        let mut s = 0x5EED_CAFE_u64;
        for i in 0..RESIDENT as u64 {
            q.push(SimTime::from_nanos(splitmix(&mut s) % 1_000_000_000), i);
        }
        let start = Instant::now();
        for _ in 0..ITERS {
            let (at, item) = q.pop().expect("queue stays resident");
            q.push(at + delta(splitmix(&mut s)), item);
        }
        std::hint::black_box(q.len());
        start.elapsed()
    };
    let mut best_rate = 0.0f64;
    let mut total_wall = Duration::ZERO;
    let mut runs = 0u32;
    while runs < 3 || (total_wall < Duration::from_millis(250) && runs < 100) {
        let wall = run();
        total_wall += wall;
        runs += 1;
        best_rate = best_rate.max(ITERS as f64 / wall.as_secs_f64());
    }
    Workload {
        name: "event_queue_churn".into(),
        events_per_sec: best_rate,
        wall_secs: total_wall.as_secs_f64(),
    }
}

fn sample_data_packet() -> Packet {
    Packet::Data {
        group: GroupId(1),
        source: SourceId(1),
        seq: Seq(42),
        epoch: EpochId(0),
        payload: Bytes::from(vec![0x5Au8; 128]),
    }
}

fn bench_codec_encode() -> Workload {
    let p = sample_data_packet();
    let start = Instant::now();
    let m = bench_function("codec_encode_data_128B", |b| {
        b.iter(|| encode(&p).expect("encodable"))
    });
    Workload {
        name: "codec_encode_data_128B".into(),
        events_per_sec: m.iters_per_sec(),
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

fn bench_codec_decode() -> Workload {
    // The receive path as the transports actually run it: the datagram
    // arrives as `Bytes` and `decode_bytes` carves the payload out of it
    // zero-copy. Handing each iteration its own `Bytes` is setup, not
    // decoding, so it is batched out of the measurement.
    let wire = encode(&sample_data_packet()).expect("encodable");
    let start = Instant::now();
    let m = bench_function("codec_decode_data_128B", |b| {
        b.iter_batched_ref(
            || Some(wire.clone()),
            |data| decode_bytes(data.take().expect("fresh state")).expect("decodable"),
        )
    });
    Workload {
        name: "codec_decode_data_128B".into(),
        events_per_sec: m.iters_per_sec(),
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// How many 128-byte data packets the bundle workloads frame per pass,
/// chosen so the whole run fits one MTU-sized frame (checked by the
/// decode workload's single-frame assertion).
const BUNDLE_RUN: usize = 8;

fn bundle_run_packets() -> Vec<Packet> {
    (1..=BUNDLE_RUN as u32)
        .map(|i| Packet::Data {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(i),
            epoch: EpochId(0),
            payload: Bytes::from(vec![0x5Au8; 128]),
        })
        .collect()
}

/// Steady-state bundling rate: a [`BundleBuilder`] framing a run of
/// data packets into MTU-bounded frames, reusing its scratch buffers —
/// the sender/logger emit path with bundling on. Each framed packet
/// counts as one event.
fn bench_bundle_encode() -> Workload {
    let packets = bundle_run_packets();
    let mut builder = BundleBuilder::with_default_mtu();
    let start = Instant::now();
    let m = bench_function("bundle_encode", |b| {
        b.iter(|| {
            let mut sealed = 0usize;
            for p in &packets {
                if let Some(frame) = builder.push(p).expect("bundleable") {
                    sealed += frame.len();
                }
            }
            if let Some(frame) = builder.flush() {
                sealed += frame.len();
            }
            sealed
        })
    });
    Workload {
        name: "bundle_encode".into(),
        events_per_sec: m.iters_per_sec() * BUNDLE_RUN as f64,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Bundle receive rate: one checksum pass over the frame, then each
/// entry decoded with its payload sliced zero-copy out of the shared
/// datagram allocation. Each unbundled packet counts as one event.
fn bench_bundle_decode() -> Workload {
    let frames = encode_bundle(&bundle_run_packets(), DEFAULT_BUNDLE_MTU).expect("bundleable");
    assert_eq!(frames.len(), 1, "run should fit one frame");
    let frame = frames.into_iter().next().expect("one frame");
    let start = Instant::now();
    let m = bench_function("bundle_decode_zero_copy", |b| {
        b.iter(|| lbrm_wire::decode_bundle(&frame).expect("decodable"))
    });
    Workload {
        name: "bundle_decode_zero_copy".into(),
        events_per_sec: m.iters_per_sec() * BUNDLE_RUN as f64,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Bundled repair serving: one wide NACK is decoded, the logger's
/// collect-span answers it with a contiguous run of retransmissions,
/// and the run is framed into MTU-full bundles instead of per-packet
/// datagrams — the NACK-storm fast path end to end. Each served
/// retransmission counts as one event.
fn bench_repair_serve_bundled() -> Workload {
    const SPAN: u32 = 16;
    let mut logger = loaded_logger(1024, 128);
    let nacks: Vec<Vec<u8>> = (0..64u32)
        .map(|i| {
            let first = i * SPAN + 1;
            encode(&Packet::Nack {
                group: GroupId(1),
                source: SourceId(1),
                requester: HostId(400 + u64::from(i % 97)),
                ranges: vec![SeqRange {
                    first: Seq(first),
                    last: Seq(first + SPAN - 1),
                }],
            })
            .expect("encodable")
            .to_vec()
        })
        .collect();
    let mut builder = BundleBuilder::with_default_mtu();
    let mut out = Actions::new();
    let mut i = 0usize;
    let start = Instant::now();
    let m = bench_function("repair_serve_bundled", |b| {
        b.iter(|| {
            let nack = decode_bytes(Bytes::from(nacks[i % nacks.len()].clone())).expect("nack");
            i += 1;
            logger.on_packet(lbrm_core::time::Time::ZERO, HostId(400), nack, &mut out);
            let mut bytes = 0usize;
            for a in out.drain(..) {
                if let lbrm_core::machine::Action::Unicast { packet, .. } = a {
                    if let Some(frame) = builder.push(&packet).expect("bundleable") {
                        bytes += frame.len();
                    }
                }
            }
            if let Some(frame) = builder.flush() {
                bytes += frame.len();
            }
            bytes
        })
    });
    Workload {
        name: "repair_serve_bundled".into(),
        events_per_sec: m.iters_per_sec() * SPAN as f64,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Logger NACK fan-in: decode → log lookup → retransmission encode,
/// rotating requests through a 1,024-entry log.
fn bench_logger_fanin() -> Workload {
    let mut logger = loaded_logger(1024, 128);
    let nacks: Vec<Vec<u8>> = (1..=1024u32)
        .map(|i| {
            encode(&Packet::Nack {
                group: GroupId(1),
                source: SourceId(1),
                requester: HostId(400 + u64::from(i % 97)),
                ranges: vec![SeqRange::single(Seq(i))],
            })
            .expect("encodable")
            .to_vec()
        })
        .collect();
    let mut out = Actions::new();
    let mut i = 0usize;
    let start = Instant::now();
    let m = bench_function("logger_nack_fanin", |b| {
        b.iter(|| {
            let bytes = serve_once(&mut logger, &nacks[i % nacks.len()], &mut out);
            i += 1;
            bytes
        })
    });
    Workload {
        name: "logger_nack_fanin".into(),
        events_per_sec: m.iters_per_sec(),
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Raw log-store serving rate: batched `collect_span` over a loaded
/// store — the kernel under the logger's NACK fan-in, measured without
/// codec or state-machine overhead. A 64-seq window rotates through an
/// 8,192-entry log with a 1-in-8 presence hole so both the present
/// word-scan and the missing-run coalescing run every pass; each served
/// sequence counts as one event.
fn bench_logstore_serve() -> Workload {
    use lbrm_core::logstore::{LogStore, Retention};
    use lbrm_core::time::Time;

    const LOG: u32 = 8_192;
    const WINDOW: u64 = 64;
    let mut store = LogStore::new(Retention::All);
    let payload = Bytes::from(vec![0x5Au8; 128]);
    for i in 1..=LOG {
        if i % 8 != 0 {
            store.insert(Time::ZERO, Seq(i), payload.clone());
        }
    }
    let mut present = Vec::new();
    let mut missing = Vec::new();
    let mut first = 1u32;
    let start = Instant::now();
    let m = bench_function("logstore_serve", |b| {
        b.iter(|| {
            present.clear();
            missing.clear();
            store.collect_span(Seq(first), WINDOW, &mut present, &mut missing);
            first = first % (LOG - WINDOW as u32) + 1;
            std::hint::black_box(present.len() + missing.len())
        })
    });
    Workload {
        name: "logstore_serve".into(),
        // One iteration scans WINDOW sequences.
        events_per_sec: m.iters_per_sec() * WINDOW as f64,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Election-storm rate: the sender's consensus hot path under repeated
/// leader loss. One sender with four log replicas and a permanently
/// un-acked buffer cycles through full failover rounds — handoff
/// retries time out, `ElectPrepare` fans out, every reachable replica
/// answers `ElectPromise`, the term commits and the buffer re-aims at
/// the winner — which then also never acks, starting the next round.
/// Each committed election (prepare fan-out, promise fan-in, winner
/// selection, term bookkeeping, buffer refill) counts as one event.
/// Time is virtual, so this measures pure state-machine cost.
fn bench_election_storm() -> Workload {
    use lbrm_core::machine::Action;
    use lbrm_core::sender::{Sender, SenderConfig};
    use lbrm_core::time::Time;

    const REPLICAS: u64 = 4;
    const ROUNDS: u64 = 2_000;
    let run = || {
        let replicas: Vec<HostId> = (0..REPLICAS).map(|i| HostId(300 + i)).collect();
        let mut cfg = SenderConfig::new(GroupId(1), SourceId(1), HostId(1), HostId(2));
        cfg.replicas = replicas;
        let mut s = Sender::new(cfg);
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"election-storm"), &mut out);
        out.clear();
        let start = Instant::now();
        let mut elected = 0u64;
        while elected < ROUNDS {
            let now = s.next_deadline().expect("sender keeps timers armed");
            s.poll(now, &mut out);
            let prepares: Vec<(HostId, u32)> = out
                .iter()
                .filter_map(|a| match a {
                    Action::Unicast {
                        to,
                        packet: Packet::ElectPrepare { term, .. },
                    } => Some((*to, *term)),
                    _ => None,
                })
                .collect();
            out.clear();
            if prepares.is_empty() {
                continue;
            }
            for &(voter, term) in &prepares {
                s.on_packet(
                    now,
                    voter,
                    Packet::ElectPromise {
                        group: GroupId(1),
                        source: SourceId(1),
                        term,
                        voter,
                        log_end: Seq(voter.raw() as u32),
                    },
                    &mut out,
                );
            }
            out.clear();
            elected += 1;
        }
        std::hint::black_box(s.term());
        start.elapsed()
    };
    let mut best_rate = 0.0f64;
    let mut total_wall = Duration::ZERO;
    let mut runs = 0u32;
    while runs < 3 || (total_wall < Duration::from_millis(250) && runs < 100) {
        let wall = run();
        total_wall += wall;
        runs += 1;
        best_rate = best_rate.max(ROUNDS as f64 / wall.as_secs_f64());
    }
    Workload {
        name: "election_storm".into(),
        events_per_sec: best_rate,
        wall_secs: total_wall.as_secs_f64(),
    }
}

/// Streaming forensics correlation rate: a seeded lossy DIS capture is
/// collected once, then pushed through a fresh [`OnlineAnalyzer`] per
/// run — gap/NACK/repair correlation, histogram folding, reservoir
/// maintenance and resident-byte metering included. This is the
/// events/s a live `reproduce` self-audit or a `trace_doctor --stream`
/// replay sustains per core.
///
/// [`OnlineAnalyzer`]: lbrm_core::trace::OnlineAnalyzer
fn bench_forensics_stream() -> Workload {
    use lbrm_core::trace::{CollectorSink, OnlineAnalyzer, OnlineConfig, TraceSink};

    let collector = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        lbrm_bench::doctor::demo_config(7),
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    for i in 0..100u64 {
        sc.send_at(
            SimTime::from_millis(1_000 + 250 * i),
            Bytes::from_static(b"forensics-bench-update"),
        );
    }
    sc.world.run_until(SimTime::from_secs(45));
    let records = collector.take();
    assert!(records.len() > 1_000, "capture should have real volume");

    // One timed run is many full correlation passes, so each sample is
    // milliseconds of work rather than a timer-resolution coin flip.
    const PASSES: usize = 25;
    let run = || {
        let start = Instant::now();
        for _ in 0..PASSES {
            let mut analyzer = OnlineAnalyzer::new(OnlineConfig::default());
            for r in &records {
                analyzer.push_record(r);
            }
            std::hint::black_box(analyzer.finish().recovered);
        }
        start.elapsed()
    };
    let mut best_rate = 0.0f64;
    let mut total_wall = Duration::ZERO;
    let mut runs = 0u32;
    while runs < 3 || (total_wall < Duration::from_millis(250) && runs < 100) {
        let wall = run();
        total_wall += wall;
        runs += 1;
        best_rate = best_rate.max((PASSES * records.len()) as f64 / wall.as_secs_f64());
    }
    Workload {
        name: "forensics_stream".into(),
        events_per_sec: best_rate,
        wall_secs: total_wall.as_secs_f64(),
    }
}

/// Renders the workloads as the committed JSON document.
fn to_json(workloads: &[Workload]) -> String {
    let mut s = String::from("{\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"events_per_sec\": {:.1}, \"wall_secs\": {:.3} }}{}\n",
            w.name,
            w.events_per_sec,
            w.wall_secs,
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parses the document [`to_json`] writes. Not a general JSON parser —
/// just enough to read our own output back: scans for `"name"` /
/// `"events_per_sec"` / `"wall_secs"` key-value pairs in order.
fn from_json(doc: &str) -> Vec<Workload> {
    fn str_after<'a>(s: &'a str, key: &str) -> Option<(&'a str, &'a str)> {
        let at = s.find(key)? + key.len();
        let rest = &s[at..];
        let open = rest.find('"')? + 1;
        let rest = &rest[open..];
        let close = rest.find('"')?;
        Some((&rest[..close], &rest[close..]))
    }
    fn num_after<'a>(s: &'a str, key: &str) -> Option<(f64, &'a str)> {
        let at = s.find(key)? + key.len();
        let rest = s[at..].trim_start_matches([':', ' ']);
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .unwrap_or(rest.len());
        Some((rest[..end].parse().ok()?, &rest[end..]))
    }
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some((name, after)) = str_after(rest, "\"name\"") {
        let Some((events_per_sec, after)) = num_after(after, "\"events_per_sec\"") else {
            break;
        };
        let Some((wall_secs, after)) = num_after(after, "\"wall_secs\"") else {
            break;
        };
        out.push(Workload {
            name: name.to_string(),
            events_per_sec,
            wall_secs,
        });
        rest = after;
    }
    out
}

/// Every gated workload and its `--check` floor, in measurement order.
const GATES: [(&str, f64); 12] = [
    ("dis_scenario_step", CHECK_FLOOR),
    ("dis_scenario_1000x30", CHECK_FLOOR),
    ("event_queue_churn", AUX_CHECK_FLOOR),
    ("codec_encode_data_128B", AUX_CHECK_FLOOR),
    ("codec_decode_data_128B", AUX_CHECK_FLOOR),
    ("bundle_encode", AUX_CHECK_FLOOR),
    ("bundle_decode_zero_copy", AUX_CHECK_FLOOR),
    ("logger_nack_fanin", AUX_CHECK_FLOOR),
    ("repair_serve_bundled", AUX_CHECK_FLOOR),
    ("logstore_serve", AUX_CHECK_FLOOR),
    ("election_storm", AUX_CHECK_FLOOR),
    ("forensics_stream", AUX_CHECK_FLOOR),
];

fn measure_all() -> Vec<Workload> {
    vec![
        bench_dis_scenario(),
        bench_dis_1000x30(),
        bench_event_queue_churn(),
        bench_codec_encode(),
        bench_codec_decode(),
        bench_bundle_encode(),
        bench_bundle_decode(),
        bench_logger_fanin(),
        bench_repair_serve_bundled(),
        bench_logstore_serve(),
        bench_election_storm(),
        bench_forensics_stream(),
    ]
}

/// Multi-shard speedup gate: on a machine with at least four cores the
/// sharded 1000×30 run must beat the serial one by ≥ 1.5×. On smaller
/// boxes (CI runners are often 1–2 cores) there is no parallelism to
/// measure, so the gate is skipped rather than reporting noise.
fn check_shard_speedup() -> bool {
    const SPEEDUP_FLOOR: f64 = 1.5;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        println!("check: shard speedup            skipped ({cores} cores < 4)");
        return true;
    }
    let serial = dis_1000x30_rate(1);
    let sharded = dis_1000x30_rate(bench_shards());
    let speedup = sharded.events_per_sec / serial.events_per_sec;
    println!(
        "check: shard speedup            {speedup:.2}x ({:.0} vs {:.0} events/s, floor {SPEEDUP_FLOOR}x)",
        sharded.events_per_sec, serial.events_per_sec
    );
    if speedup < SPEEDUP_FLOOR {
        eprintln!(
            "perf_baseline --check: FAIL — {} shards only {speedup:.2}x over serial",
            bench_shards()
        );
        return false;
    }
    true
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    eprintln!("perf_baseline: measuring {} workloads...", GATES.len());
    let measured = measure_all();
    for w in &measured {
        println!(
            "{:<28} {:>14.1} events/s   ({:.2}s wall)",
            w.name, w.events_per_sec, w.wall_secs
        );
    }

    if check {
        let doc = match std::fs::read_to_string(BASELINE_PATH) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("perf_baseline --check: cannot read {BASELINE_PATH}: {e}");
                std::process::exit(1);
            }
        };
        let committed = from_json(&doc);
        println!();
        let mut failed = false;
        for (name, floor) in GATES {
            let Some(base) = committed.iter().find(|w| w.name == name) else {
                eprintln!("perf_baseline --check: no {name} entry in baseline");
                failed = true;
                continue;
            };
            let now = measured
                .iter()
                .find(|w| w.name == name)
                .expect("measured above");
            let ratio = now.events_per_sec / base.events_per_sec;
            println!(
                "check: {name:<24} {:>14.0} events/s vs committed {:.0} ({}% of baseline, floor {}%)",
                now.events_per_sec,
                base.events_per_sec,
                (ratio * 100.0).round(),
                (floor * 100.0) as u32,
            );
            if ratio < floor {
                eprintln!(
                    "perf_baseline --check: FAIL — {name} regressed below {}% of baseline",
                    (floor * 100.0) as u32
                );
                failed = true;
            }
        }
        if !check_shard_speedup() {
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check: OK");
    } else {
        std::fs::write(BASELINE_PATH, to_json(&measured)).expect("write BENCH_sim.json");
        println!("\nwrote {BASELINE_PATH}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips() {
        let ws = vec![
            Workload {
                name: "dis_scenario_step".into(),
                events_per_sec: 12345.6,
                wall_secs: 1.234,
            },
            Workload {
                name: "codec_encode_data_128B".into(),
                events_per_sec: 9.9e6,
                wall_secs: 0.5,
            },
        ];
        let doc = to_json(&ws);
        let back = from_json(&doc);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "dis_scenario_step");
        assert!((back[0].events_per_sec - 12345.6).abs() < 0.1);
        assert!((back[1].events_per_sec - 9.9e6).abs() < 1.0);
        assert!((back[1].wall_secs - 0.5).abs() < 1e-9);
    }

    #[test]
    fn from_json_rejects_garbage_gracefully() {
        assert!(from_json("").is_empty());
        assert!(from_json("{\"workloads\": []}").is_empty());
        // A truncated entry parses nothing rather than panicking.
        assert!(from_json("{\"name\": \"x\", \"events_per_sec\": ").is_empty());
    }

    #[test]
    fn dis_scenario_event_count_is_deterministic() {
        let (a, _) = dis_scenario_events();
        let (b, _) = dis_scenario_events();
        assert_eq!(a, b);
        assert!(a > 1_000, "scenario should generate real work, got {a}");
    }

    #[test]
    fn dis_1000x30_event_count_is_shard_invariant() {
        let (serial, _) = dis_1000x30_events(1);
        let (sharded, _) = dis_1000x30_events(4);
        assert_eq!(serial, sharded);
        assert!(
            serial > 100_000,
            "1000x30 should generate real work, got {serial}"
        );
    }
}
