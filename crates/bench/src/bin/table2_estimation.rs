//! Regenerates one evaluation result; see `lbrm_bench::experiments`.
fn main() {
    print!("{}", lbrm_bench::experiments::table2_estimation::run());
}
