//! Regenerates one evaluation result; see `lbrm_bench::experiments`.
fn main() {
    print!("{}", lbrm_bench::experiments::exp_bundle_storm::run());
}
