//! Dependency-free parallel map for experiment sweeps.
//!
//! Experiment binaries sweep an independent variable (heartbeat interval,
//! site count, hierarchy depth) and run one full simulation per point.
//! The points share no state, so they are embarrassingly parallel — but
//! the container has no rayon and crates.io is unreachable, so this is a
//! small `std::thread::scope` fan-out instead.
//!
//! Results are merged **in input order**: `par_map(items, f)` returns
//! exactly what `items.into_iter().map(f).collect()` would, so report
//! rendering downstream stays byte-identical to a serial run. On a
//! single-core host (or for trivially small sweeps) it falls back to the
//! serial path outright.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Number of worker threads a sweep of `n` items would use.
///
/// At most one thread per item, at most `available_parallelism`, and 1
/// (serial) when the host reports a single core.
fn thread_count(n: usize) -> usize {
    let cores = thread::available_parallelism().map_or(1, |c| c.get());
    cores.min(n).max(1)
}

/// Maps `f` over `items` on a scoped thread pool, preserving input order.
///
/// Falls back to a plain serial map when the host has one core or there
/// is at most one item. The closure must be `Sync` because all workers
/// share it; items are handed out through an atomic work index so a slow
/// point does not stall the others.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = thread_count(items.len());
    par_map_with_threads(items, threads, f)
}

/// [`par_map`] with an explicit worker count (`threads <= 1` is serial).
///
/// Exposed so tests can force the multi-threaded path even on a
/// single-core host.
pub fn par_map_with_threads<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());

    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = work[idx]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work slot claimed twice");
                let out = f(item);
                results.lock().expect("result slot poisoned")[idx] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("worker skipped a slot"))
        .collect()
}

/// One named report section: a title and the experiment that renders its
/// body.
pub type Section = (&'static str, fn() -> String);

/// Runs named report sections concurrently, returning them in input
/// order.
///
/// This is `reproduce`'s whole-experiment fan-out: each section is an
/// independent experiment (its own worlds, own seeds), so they can run on
/// all cores while the rendered report — printed only after every body is
/// collected — stays byte-identical to a serial run.
pub fn run_sections(sections: Vec<Section>) -> Vec<(&'static str, String)> {
    let names: Vec<&'static str> = sections.iter().map(|&(name, _)| name).collect();
    let bodies = par_map(sections.into_iter().map(|(_, f)| f).collect(), |f| f());
    names.into_iter().zip(bodies).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_sections_keeps_names_with_bodies_in_order() {
        fn a() -> String {
            "alpha".into()
        }
        fn b() -> String {
            "beta".into()
        }
        fn c() -> String {
            "gamma".into()
        }
        let got = run_sections(vec![("A", a as fn() -> String), ("B", b), ("C", c)]);
        assert_eq!(
            got,
            vec![
                ("A", "alpha".to_string()),
                ("B", "beta".to_string()),
                ("C", "gamma".to_string())
            ]
        );
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        // Force the threaded path regardless of host core count.
        let got = par_map_with_threads(items, 4, |i| i * i);
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_serial_map_for_stateful_work() {
        // Each point runs a small deterministic computation; parallel and
        // serial schedules must agree element-for-element.
        let f = |seed: u64| {
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let items: Vec<u64> = (0..17).collect();
        let serial: Vec<u64> = items.iter().copied().map(f).collect();
        assert_eq!(par_map_with_threads(items.clone(), 8, f), serial);
        assert_eq!(par_map(items, f), serial);
    }

    #[test]
    fn handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map(none, |x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map(vec![41], |x| x + 1), vec![42]);
        assert_eq!(par_map_with_threads(vec![41], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let got = par_map_with_threads(vec![1, 2, 3], 32, |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }
}
