//! Live doctor scenario: real UDP endpoints with a sidecar attached.
//!
//! This is the workload behind `trace_doctor --live`: a sender, a
//! primary logger, and N receivers run as real endpoint threads (UDP
//! multicast on loopback when the environment allows it, the in-process
//! [`Hub`] otherwise), with every receiver's transport wrapped in a
//! seeded [`LossyTransport`] so NACK recovery actually happens. All
//! machines trace into one [`SerialFanoutSink`] feeding the
//! [`DoctorSidecar`]'s non-blocking sink, a [`MetricsRegistry`], and an
//! optional capture — and an optional [`AdminServer`] answers HTTP on
//! the side while the traffic flows.

use std::net::{Ipv4Addr, SocketAddr};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use lbrm::net::{
    recv_gauge_probe, send_gauge_probe, Endpoint, EndpointEvent, GroupMap, Hub, LossyTransport,
    Transport, UdpTransport,
};
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::receiver::{Receiver, ReceiverConfig};
use lbrm_core::sender::{Sender, SenderConfig};
use lbrm_core::trace::doctor::{DoctorFinish, DoctorHandle};
use lbrm_core::trace::{
    AdminServer, DoctorConfig, DoctorSidecar, MetricsRegistry, SerialFanoutSink, TraceSink, Tracer,
};
use lbrm_wire::{BundleMode, GroupId, HostId, SourceId};

const GROUP: GroupId = GroupId(9);
const SRC: SourceId = SourceId(1);

/// Tunables for one live run.
pub struct LiveOptions {
    /// Receiver endpoints (each behind its own lossy wrapper).
    pub receivers: usize,
    /// Data packets to publish.
    pub packets: u64,
    /// Per-receiver induced data-loss rate.
    pub loss: f64,
    /// Seed for the loss processes (receiver i derives its own stream).
    pub seed: u64,
    /// Gap between publishes.
    pub spacing: Duration,
    /// How long to wait for stragglers after the last publish.
    pub settle: Duration,
    /// UDP group port (each concurrent run needs its own).
    pub port: u16,
    /// Force the in-process hub even if UDP multicast would work.
    pub use_hub: bool,
    /// Bind the HTTP admin surface here (e.g. `"127.0.0.1:0"`).
    pub admin_addr: Option<String>,
    /// Extra sink fanned in serially (e.g. a `JsonLinesSink` capture).
    pub capture: Option<Arc<dyn TraceSink>>,
    /// Sidecar tuning.
    pub doctor: DoctorConfig,
    /// Pin the UDP transports' bundling mode (`None` inherits
    /// `LBRM_BUNDLE` from the environment) — env-independent, so tests
    /// can run a bundled leg without mutating process globals.
    pub bundle: Option<BundleMode>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            receivers: 3,
            packets: 40,
            loss: 0.15,
            seed: 42,
            spacing: Duration::from_millis(25),
            settle: Duration::from_secs(5),
            port: 49_501,
            use_hub: false,
            admin_addr: None,
            capture: None,
            doctor: DoctorConfig::default(),
            bundle: None,
        }
    }
}

/// What the in-flight callback gets to see.
pub struct LiveAir {
    /// Query surface of the running sidecar.
    pub doctor: DoctorHandle,
    /// Where the admin server actually bound (when requested).
    pub admin_addr: Option<SocketAddr>,
}

/// The completed run.
pub struct LiveOutcome {
    /// Final report, delta fold, and drop accounting from the sidecar.
    pub finish: DoctorFinish,
    /// Packets the receivers' applications saw (recoveries included).
    pub delivered: u64,
    /// Of those, how many arrived via recovery.
    pub recovered: u64,
    /// Data packets the lossy wrappers discarded.
    pub induced_drops: u64,
    /// Which transport actually ran: `"udp"` or `"hub"`.
    pub transport: &'static str,
    /// The registry the scenario's gauges and counters landed in.
    pub registry: Arc<MetricsRegistry>,
    /// Still-running admin server (drop it to stop serving); callers
    /// may keep it alive to serve the final snapshot after the run.
    pub admin: Option<AdminServer>,
}

struct DriveStats {
    delivered: u64,
    recovered: u64,
}

/// Runs the scenario, invoking `during` once while traffic is in
/// flight (after the last publish, before shutdown). Prefers real UDP
/// multicast on loopback and falls back to the in-process hub when the
/// environment forbids it (bind or join failure), so the harness runs
/// everywhere.
///
/// # Errors
///
/// Only admin-surface bind failures are fatal; transport trouble falls
/// back to the hub.
pub fn run_live(opts: LiveOptions, during: impl FnOnce(&LiveAir)) -> std::io::Result<LiveOutcome> {
    let sidecar = DoctorSidecar::spawn(opts.doctor.clone());
    let registry = Arc::new(MetricsRegistry::default());
    sidecar.register_registry("live", Arc::clone(&registry));

    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![
        sidecar.sink() as Arc<dyn TraceSink>,
        Arc::clone(&registry) as Arc<dyn TraceSink>,
    ];
    if let Some(c) = &opts.capture {
        sinks.push(Arc::clone(c));
    }
    // Serial fanout: capture order and doctor arrival order stay
    // identical even with endpoint threads tracing concurrently.
    let tracer = Tracer::to(Arc::new(SerialFanoutSink::new(sinks)));

    let admin = match &opts.admin_addr {
        Some(a) => Some(AdminServer::bind(a.as_str(), sidecar.handle())?),
        None => None,
    };
    let air = LiveAir {
        doctor: sidecar.handle(),
        admin_addr: admin.as_ref().map(AdminServer::local_addr),
    };
    let origin = Instant::now();
    let mut during = Some(during);
    let mut induced: Vec<Arc<AtomicU64>> = Vec::new();

    let mut transport = "hub";
    let mut stats = None;
    if !opts.use_hub {
        if let Some((s, l, rs)) = bind_udp(&opts, &sidecar, &registry, &mut induced) {
            transport = "udp";
            stats = Some(drive(s, l, rs, &tracer, origin, &opts, || {
                if let Some(f) = during.take() {
                    f(&air);
                }
            }));
        } else {
            eprintln!("live doctor: UDP multicast unavailable, using in-process hub");
        }
    }
    let stats = match stats {
        Some(s) => s,
        None => {
            induced.clear();
            let hub = Hub::new();
            let sender_t = hub.attach(HostId(1));
            let logger_t = hub.attach(HostId(2));
            let rxs: Vec<_> = (0..opts.receivers)
                .map(|i| {
                    let lossy = LossyTransport::new(
                        hub.attach(HostId(3 + i as u64)),
                        opts.loss,
                        rx_seed(opts.seed, i),
                    );
                    induced.push(lossy.shared_dropped());
                    lossy
                })
                .collect();
            drive(sender_t, logger_t, rxs, &tracer, origin, &opts, || {
                if let Some(f) = during.take() {
                    f(&air);
                }
            })
        }
    };

    let finish = sidecar.finish();
    Ok(LiveOutcome {
        finish,
        delivered: stats.delivered,
        recovered: stats.recovered,
        induced_drops: induced.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        transport,
        registry,
        admin,
    })
}

/// Receiver `i`'s loss stream: decorrelated from the others but fully
/// determined by the run seed.
fn rx_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Binds all UDP transports, probing that multicast join actually works
/// here; registers each endpoint's receive *and* send counters as
/// sidecar gauge probes, so `/stats` exposes the live
/// datagrams-vs-packets ratio (the bundling savings) per endpoint.
/// `None` means "this environment can't do it — use the hub".
fn bind_udp(
    opts: &LiveOptions,
    sidecar: &DoctorSidecar,
    registry: &Arc<MetricsRegistry>,
    induced: &mut Vec<Arc<AtomicU64>>,
) -> Option<(
    UdpTransport,
    UdpTransport,
    Vec<LossyTransport<UdpTransport>>,
)> {
    let bind = || {
        UdpTransport::bind(Ipv4Addr::LOCALHOST, GroupMap::new(opts.port))
            .ok()
            .map(|mut t| {
                if let Some(mode) = opts.bundle {
                    t.set_bundle_mode(mode);
                }
                t
            })
    };
    let probe = |t: &mut UdpTransport| t.join(GROUP).is_ok();

    let sender_t = bind()?;
    let mut logger_t = bind()?;
    if !probe(&mut logger_t) {
        return None;
    }
    let watch = |t: &UdpTransport| {
        sidecar.register_probe(recv_gauge_probe(
            t.local_host(),
            t.shared_recv_counters(),
            Arc::clone(registry),
        ));
        sidecar.register_probe(send_gauge_probe(
            t.local_host(),
            t.shared_send_counters(),
            Arc::clone(registry),
        ));
    };
    watch(&sender_t);
    watch(&logger_t);
    let mut rxs = Vec::with_capacity(opts.receivers);
    for i in 0..opts.receivers {
        let t = bind()?;
        watch(&t);
        let lossy = LossyTransport::new(t, opts.loss, rx_seed(opts.seed, i));
        induced.push(lossy.shared_dropped());
        rxs.push(lossy);
    }
    Some((sender_t, logger_t, rxs))
}

/// Spawns the endpoints, publishes the traffic, and shuts everything
/// down cleanly; transport-agnostic.
fn drive<S: Transport, L: Transport, R: Transport>(
    sender_t: S,
    logger_t: L,
    rx_ts: Vec<R>,
    tracer: &Tracer,
    origin: Instant,
    opts: &LiveOptions,
    during: impl FnOnce(),
) -> DriveStats {
    let src_host = sender_t.local_host();
    let log_host = logger_t.local_host();
    let mut endpoints = Vec::new();

    let (mut ep, sender) = Endpoint::new(
        Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
        sender_t,
        vec![],
    );
    ep.set_tracer(tracer.clone());
    ep.set_origin(origin);
    endpoints.push(ep.spawn());

    let (mut ep, logger) = Endpoint::new(
        Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
        logger_t,
        vec![GROUP],
    );
    ep.set_tracer(tracer.clone());
    ep.set_origin(origin);
    endpoints.push(ep.spawn());

    let delivered = Arc::new(AtomicU64::new(0));
    let recovered = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut collectors = Vec::new();
    for rx_t in rx_ts {
        let rx_host = rx_t.local_host();
        let (mut ep, mut handle) = Endpoint::new(
            Receiver::new(ReceiverConfig::new(
                GROUP,
                SRC,
                rx_host,
                src_host,
                vec![log_host],
            )),
            rx_t,
            vec![GROUP],
        );
        ep.set_tracer(tracer.clone());
        ep.set_origin(origin);
        endpoints.push(ep.spawn());
        let (d, r, s) = (
            Arc::clone(&delivered),
            Arc::clone(&recovered),
            Arc::clone(&stop),
        );
        // The collector owns the handle: it drains events until told to
        // stop, and dropping the handle is what shuts the endpoint down.
        collectors.push(std::thread::spawn(move || {
            while !s.load(Ordering::Relaxed) {
                if let Some(EndpointEvent::Delivery(dv)) =
                    handle.event_timeout(Duration::from_millis(25))
                {
                    d.fetch_add(1, Ordering::Relaxed);
                    if dv.recovered {
                        r.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    // Let reader threads and group joins settle before the first send.
    std::thread::sleep(Duration::from_millis(100));
    for i in 0..opts.packets {
        let payload = Bytes::from(format!("live-{i}").into_bytes());
        let _ = sender.call(move |s: &mut Sender, now, out| s.send(now, payload, out));
        std::thread::sleep(opts.spacing);
    }

    during();

    // Wait for stragglers: induced losses recover through the logger.
    let target = opts.packets * opts.receivers as u64;
    let deadline = Instant::now() + opts.settle;
    while delivered.load(Ordering::Relaxed) < target && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    // Grace for trailing settlement traces to be emitted.
    std::thread::sleep(Duration::from_millis(150));

    stop.store(true, Ordering::Relaxed);
    for c in collectors {
        let _ = c.join();
    }
    drop(sender);
    drop(logger);
    for ep in endpoints {
        let _ = ep.join();
    }
    DriveStats {
        delivered: delivered.load(Ordering::Relaxed),
        recovered: recovered.load(Ordering::Relaxed),
    }
}
