//! Experiment harness regenerating every table and figure in the LBRM
//! paper's evaluation.
//!
//! Each experiment lives in [`experiments`] as a `run()` function
//! returning a formatted report; the binaries in `src/bin/` are thin
//! wrappers, and `src/bin/reproduce.rs` runs everything.
//! Microbenchmarks (Table 3's measurement analogues) live in `benches/`
//! and run on the self-contained [`microbench`] harness.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod doctor;
pub mod experiments;
pub mod live;
pub mod microbench;
pub mod parallel;
pub mod report;

pub use report::{mean, percentile, Table};
