//! Small reporting utilities: aligned tables and summary statistics.

use std::fmt::Write as _;
use std::time::Duration;

/// A plain-text aligned table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", c, width = widths[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Arithmetic mean of durations (zero when empty).
pub fn mean(values: &[Duration]) -> Duration {
    if values.is_empty() {
        return Duration::ZERO;
    }
    let total: Duration = values.iter().sum();
    total / values.len() as u32
}

/// The p-th percentile (0–100) by nearest-rank (zero when empty).
pub fn percentile(values: &[Duration], p: f64) -> Duration {
    if values.is_empty() {
        return Duration::ZERO;
    }
    let mut v = values.to_vec();
    v.sort();
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "value"]);
        t.row(&["1".into(), "10".into()]);
        t.row(&["22".into(), "5".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[2].ends_with("10"));
    }

    #[test]
    fn stats() {
        let v = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        assert_eq!(mean(&v), Duration::from_millis(20));
        assert_eq!(percentile(&v, 0.0), Duration::from_millis(10));
        assert_eq!(percentile(&v, 100.0), Duration::from_millis(30));
        assert_eq!(percentile(&v, 50.0), Duration::from_millis(20));
        assert_eq!(mean(&[]), Duration::ZERO);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_dur(Duration::from_micros(7)), "7.0 µs");
    }
}
