//! Recovery forensics: the shared driver behind the `trace_doctor`
//! binary and the experiments' self-audit.
//!
//! Two engines produce the same [`RecoveryReport`]: the streaming
//! [`OnlineAnalyzer`] (the default — one record at a time in bounded
//! memory, whether replaying a `JsonLinesSink` capture or plugged
//! straight into a live [`DisScenario`] as a sink) and the batch
//! [`lbrm_core::trace::analyze::analyze`] reference it is
//! differentially tested against.

use std::io::BufRead;
use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm_core::trace::analyze::{analyze, AnalyzeConfig, RecoveryReport};
use lbrm_core::trace::{
    CollectorSink, FanoutSink, OnlineAnalyzer, OnlineAnalyzerSink, OnlineConfig, TraceSink,
};
use lbrm_sim::loss::LossModel;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

/// Outcome of one doctor pass.
pub struct DoctorRun {
    /// The forensic analysis.
    pub report: RecoveryReport,
    /// Trace records analyzed.
    pub records: usize,
    /// Malformed replay lines skipped (always 0 for live runs).
    pub skipped: usize,
}

impl DoctorRun {
    /// Wraps the report JSON with replay bookkeeping.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"records\":{},\"skipped\":{},\"report\":{}}}",
            self.records,
            self.skipped,
            self.report.to_json()
        )
    }
}

/// Replays a `JsonLinesSink` capture held in memory.
pub fn analyze_jsonl(text: &str, cfg: &AnalyzeConfig) -> DoctorRun {
    let (records, skipped) = lbrm_core::trace::analyze::parse_json_lines(text);
    DoctorRun {
        report: analyze(&records, cfg),
        records: records.len(),
        skipped,
    }
}

/// Replays a `JsonLinesSink` capture from a buffered reader, one line at
/// a time through a reused buffer — `trace_doctor` uses this so a
/// million-event capture costs the parsed records, never a second copy
/// of the whole file as text. Line handling (blank lines ignored,
/// malformed non-blank lines counted as skipped) matches
/// [`analyze_jsonl`] exactly.
pub fn analyze_jsonl_reader<R: BufRead>(
    mut reader: R,
    cfg: &AnalyzeConfig,
) -> std::io::Result<DoctorRun> {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let l = line.strip_suffix('\n').unwrap_or(&line);
        let l = l.strip_suffix('\r').unwrap_or(l);
        if l.trim().is_empty() {
            continue;
        }
        match lbrm_core::trace::analyze::parse_json_line(l) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    Ok(DoctorRun {
        report: analyze(&records, cfg),
        records: records.len(),
        skipped,
    })
}

/// Replays a `JsonLinesSink` capture from a buffered reader through the
/// streaming [`OnlineAnalyzer`]: each parsed line is pushed and
/// dropped, so the whole pass holds one line buffer, the open
/// timelines, and the analyzer's bounded reservoirs — never the record
/// vector the batch path materializes. This is `trace_doctor`'s default
/// engine (`--stream`).
pub fn analyze_jsonl_reader_online<R: BufRead>(
    mut reader: R,
    cfg: OnlineConfig,
) -> std::io::Result<DoctorRun> {
    let mut analyzer = OnlineAnalyzer::new(cfg);
    let mut skipped = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let l = line.strip_suffix('\n').unwrap_or(&line);
        let l = l.strip_suffix('\r').unwrap_or(l);
        if l.trim().is_empty() {
            continue;
        }
        match lbrm_core::trace::analyze::parse_json_line(l) {
            Some(r) => analyzer.push_record(&r),
            None => skipped += 1,
        }
    }
    let records = analyzer.records() as usize;
    Ok(DoctorRun {
        report: analyzer.finish(),
        records,
        skipped,
    })
}

/// What [`follow_jsonl_into`] hands the stop predicate between polls.
#[derive(Debug, Clone, Copy)]
pub struct FollowProgress {
    /// Complete records parsed and fed so far.
    pub records: u64,
    /// Malformed complete lines skipped so far.
    pub skipped: usize,
    /// Time since the file last yielded a complete line.
    pub quiet_for: Duration,
}

/// Tails a growing `JsonLinesSink` capture, feeding each complete line
/// into `sink` as it appears (the same incremental path a live sidecar
/// consumes). A final line without a trailing newline is treated as
/// in-flight: it is buffered across polls and only parsed — or counted
/// as skipped — once the follow stops, so a writer caught mid-`write`
/// never corrupts the stream. Polls every `poll` at EOF until `stop`
/// returns true; returns `(records, skipped)`.
///
/// # Errors
///
/// Propagates reader I/O errors.
pub fn follow_jsonl_into<R: BufRead>(
    mut reader: R,
    sink: &dyn TraceSink,
    poll: Duration,
    mut stop: impl FnMut(&FollowProgress) -> bool,
) -> std::io::Result<(u64, usize)> {
    let mut progress = FollowProgress {
        records: 0,
        skipped: 0,
        quiet_for: Duration::ZERO,
    };
    // Partial tail carried across polls; read_line appends to it, so a
    // line split across two writes reassembles for free.
    let mut pending = String::new();
    let feed = |l: &str, progress: &mut FollowProgress| {
        if l.trim().is_empty() {
            return;
        }
        match lbrm_core::trace::analyze::parse_json_line(l) {
            Some(r) => {
                sink.record(r.at_nanos, r.host, &r.event);
                progress.records += 1;
            }
            None => progress.skipped += 1,
        }
    };
    loop {
        let n = reader.read_line(&mut pending)?;
        if n == 0 {
            if stop(&progress) {
                break;
            }
            std::thread::sleep(poll);
            progress.quiet_for += poll;
            continue;
        }
        if !pending.ends_with('\n') {
            // Hit EOF mid-line; keep accumulating on the next poll.
            continue;
        }
        let l = pending.trim_end_matches(['\n', '\r']).to_string();
        pending.clear();
        feed(&l, &mut progress);
        progress.quiet_for = Duration::ZERO;
    }
    // Whatever is left at stop time is either a complete line the
    // writer never terminated (parse it) or torn mid-write (skip it).
    let tail = std::mem::take(&mut pending);
    feed(&tail, &mut progress);
    Ok((progress.records, progress.skipped))
}

/// Tails a growing capture through the streaming [`OnlineAnalyzer`] —
/// `trace_doctor --follow`. See [`follow_jsonl_into`] for line
/// semantics.
///
/// # Errors
///
/// Propagates reader I/O errors.
pub fn follow_jsonl<R: BufRead>(
    reader: R,
    cfg: OnlineConfig,
    poll: Duration,
    stop: impl FnMut(&FollowProgress) -> bool,
) -> std::io::Result<DoctorRun> {
    let online = OnlineAnalyzerSink::new(cfg);
    let (records, skipped) = follow_jsonl_into(reader, &online, poll, stop)?;
    Ok(DoctorRun {
        report: online.finish(),
        records: records as usize,
        skipped,
    })
}

/// The doctor's built-in workload: a small DIS scenario with 5%
/// tail-circuit loss — every site sees losses, every recovery path
/// (secondary serve, parent fetch, late original) gets exercised.
pub fn demo_config(seed: u64) -> DisScenarioConfig {
    DisScenarioConfig {
        sites: 6,
        receivers_per_site: 5,
        site_params: SiteParams {
            tail_in_loss: LossModel::rate(0.05),
            ..SiteParams::distant()
        },
        receiver_nack_delay: Duration::from_millis(5),
        seed,
        ..DisScenarioConfig::default()
    }
}

/// Builds `config`, injects a collector (fanned out with `extra` when
/// given, e.g. a `JsonLinesSink` capturing a replayable trace), sends
/// `packets` updates at 250 ms spacing from t = 1 s, runs to `until`,
/// and analyzes the collected stream.
pub fn run_scenario(
    config: DisScenarioConfig,
    packets: u64,
    until: SimTime,
    cfg: &AnalyzeConfig,
    extra: Option<Arc<dyn TraceSink>>,
) -> (DoctorRun, DisScenario) {
    let collector = Arc::new(CollectorSink::default());
    let sink: Arc<dyn TraceSink> = match extra {
        Some(e) => Arc::new(FanoutSink::new(vec![
            collector.clone() as Arc<dyn TraceSink>,
            e,
        ])),
        None => collector.clone(),
    };
    let mut sc = DisScenario::build_with_sink(config, Some(sink));
    for i in 0..packets {
        sc.send_at(SimTime::from_millis(1_000 + 250 * i), format!("update-{i}"));
    }
    sc.world.run_until(until);
    let records = collector.take();
    let run = DoctorRun {
        report: analyze(&records, cfg),
        records: records.len(),
        skipped: 0,
    };
    (run, sc)
}

/// Like [`run_scenario`], but the scenario feeds an
/// [`OnlineAnalyzerSink`] directly: the trace is correlated as it is
/// emitted and no record vector ever exists. This is how `reproduce`
/// self-audits.
pub fn run_scenario_online(
    config: DisScenarioConfig,
    packets: u64,
    until: SimTime,
    cfg: OnlineConfig,
    extra: Option<Arc<dyn TraceSink>>,
) -> (DoctorRun, DisScenario) {
    let online = Arc::new(OnlineAnalyzerSink::new(cfg));
    let sink: Arc<dyn TraceSink> = match extra {
        Some(e) => Arc::new(FanoutSink::new(vec![
            online.clone() as Arc<dyn TraceSink>,
            e,
        ])),
        None => online.clone(),
    };
    let mut sc = DisScenario::build_with_sink(config, Some(sink));
    for i in 0..packets {
        sc.send_at(SimTime::from_millis(1_000 + 250 * i), format!("update-{i}"));
    }
    sc.world.run_until(until);
    let records = online.records() as usize;
    let run = DoctorRun {
        report: online.finish(),
        records,
        skipped: 0,
    };
    (run, sc)
}

/// The built-in seeded lossy run (what `trace_doctor` executes when not
/// given a replay file).
pub fn demo_run(seed: u64) -> DoctorRun {
    run_scenario(
        demo_config(seed),
        20,
        SimTime::from_secs(30),
        &AnalyzeConfig::default(),
        None,
    )
    .0
}

/// The built-in seeded lossy run through the streaming engine.
pub fn demo_run_online(seed: u64, cfg: OnlineConfig) -> DoctorRun {
    run_scenario_online(demo_config(seed), 20, SimTime::from_secs(30), cfg, None).0
}

/// Parses a byte size with an optional K/M/G (KiB/MiB/GiB) suffix, as
/// accepted by `trace_doctor --mem-budget`. Bare numbers are bytes;
/// suffixes are case-insensitive and may be spelled `K`, `KB`, or `KiB`
/// (all binary multiples).
///
/// # Errors
///
/// Returns a usage message for an unknown suffix or a malformed number.
pub fn parse_bytes(s: &str) -> Result<u64, String> {
    let (num, mult) = match s.trim_end_matches(|c: char| c.is_ascii_alphabetic()) {
        n if n.len() == s.len() => (n, 1u64),
        n => match s[n.len()..].to_ascii_uppercase().as_str() {
            "K" | "KIB" | "KB" => (n, 1024),
            "M" | "MIB" | "MB" => (n, 1024 * 1024),
            "G" | "GIB" | "GB" => (n, 1024 * 1024 * 1024),
            suffix => return Err(format!("unknown size suffix: {suffix}")),
        },
    };
    num.parse::<u64>()
        .map(|n| n * mult)
        .map_err(|e| format!("{s}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_core::trace::JsonLinesSink;

    #[test]
    fn parse_bytes_accepts_every_suffix_form() {
        assert_eq!(parse_bytes("0"), Ok(0));
        assert_eq!(parse_bytes("123"), Ok(123));
        assert_eq!(parse_bytes("2K"), Ok(2 * 1024));
        assert_eq!(parse_bytes("2kb"), Ok(2 * 1024));
        assert_eq!(parse_bytes("2KiB"), Ok(2 * 1024));
        assert_eq!(parse_bytes("3M"), Ok(3 * 1024 * 1024));
        assert_eq!(parse_bytes("3mib"), Ok(3 * 1024 * 1024));
        assert_eq!(parse_bytes("1G"), Ok(1024 * 1024 * 1024));
        assert_eq!(parse_bytes("1gb"), Ok(1024 * 1024 * 1024));
    }

    #[test]
    fn parse_bytes_rejects_malformed_sizes() {
        assert!(parse_bytes("12T")
            .unwrap_err()
            .contains("unknown size suffix"));
        assert!(parse_bytes("12XB")
            .unwrap_err()
            .contains("unknown size suffix"));
        // All-alphabetic input strips to an empty number, which must not
        // silently parse as zero.
        assert!(parse_bytes("K").is_err());
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("-5").is_err());
        assert!(parse_bytes("1.5M").is_err());
        assert!(parse_bytes("12 M").is_err());
    }

    #[test]
    fn streaming_replay_matches_whole_string() {
        let sink = Arc::new(JsonLinesSink::buffered());
        let cfg = AnalyzeConfig::default();
        let _ = run_scenario(
            demo_config(77),
            10,
            SimTime::from_secs(20),
            &cfg,
            Some(sink.clone() as Arc<dyn TraceSink>),
        );
        let mut text = sink.contents();
        assert!(!text.is_empty(), "capture should have events");
        // Exercise the skip path too: blank lines plus a truncated final
        // line from an "unflushed writer".
        text.push_str("\n\n{\"truncated\": ");
        let whole = analyze_jsonl(&text, &cfg);
        // A tiny buffer forces many refills, proving the line reassembly.
        let streamed =
            analyze_jsonl_reader(std::io::BufReader::with_capacity(64, text.as_bytes()), &cfg)
                .expect("in-memory read cannot fail");
        assert_eq!(streamed.records, whole.records);
        assert_eq!(streamed.skipped, whole.skipped);
        assert_eq!(whole.skipped, 1, "exactly the truncated line");
        assert_eq!(streamed.to_json(), whole.to_json());
    }

    #[test]
    fn online_replay_matches_batch_replay() {
        let sink = Arc::new(JsonLinesSink::buffered());
        let cfg = AnalyzeConfig::default();
        let _ = run_scenario(
            demo_config(78),
            10,
            SimTime::from_secs(20),
            &cfg,
            Some(sink.clone() as Arc<dyn TraceSink>),
        );
        let mut text = sink.contents();
        text.push_str("\n\n{\"truncated\": ");
        let batch = analyze_jsonl(&text, &cfg);
        let online = analyze_jsonl_reader_online(
            std::io::BufReader::with_capacity(64, text.as_bytes()),
            OnlineConfig::default(),
        )
        .expect("in-memory read cannot fail");
        assert_eq!(online.records, batch.records);
        assert_eq!(online.skipped, batch.skipped);
        assert_eq!(online.report.recovered, batch.report.recovered);
        assert_eq!(online.report.anomalies, batch.report.anomalies);
        assert_eq!(online.report.sources, batch.report.sources);
        assert!(online.report.stream.streamed);
        assert!(online.report.stream.peak_resident_bytes < batch.report.stream.peak_resident_bytes);
    }

    #[test]
    fn live_online_sink_matches_collected_batch() {
        let cfg = AnalyzeConfig::default();
        let (batch, _) = run_scenario(demo_config(79), 10, SimTime::from_secs(20), &cfg, None);
        let (online, _) = run_scenario_online(
            demo_config(79),
            10,
            SimTime::from_secs(20),
            OnlineConfig::default(),
            None,
        );
        assert_eq!(online.records, batch.records);
        assert_eq!(online.report.recovered, batch.report.recovered);
        assert_eq!(online.report.abandoned, batch.report.abandoned);
        assert_eq!(online.report.anomalies, batch.report.anomalies);
        assert_eq!(online.report.telescoping, batch.report.telescoping);
        assert_eq!(online.report.total.samples(), batch.report.total.samples());
    }

    /// Satellite: `--follow` semantics. A writer thread appends the
    /// capture in mid-line chunks while the follower reads; the final
    /// line is left truncated (no newline, torn JSON). The follow must
    /// reassemble every split line, count exactly the torn tail as
    /// skipped, and report what a one-shot replay of the complete lines
    /// reports.
    #[test]
    fn follow_tails_a_growing_capture_with_a_torn_final_line() {
        use std::io::Write as _;

        let sink = Arc::new(JsonLinesSink::buffered());
        let cfg = AnalyzeConfig::default();
        let _ = run_scenario(
            demo_config(80),
            10,
            SimTime::from_secs(20),
            &cfg,
            Some(sink.clone() as Arc<dyn TraceSink>),
        );
        let text = sink.contents();
        let complete_lines = text.lines().count();
        assert!(complete_lines > 10, "capture should have events");

        let path = std::env::temp_dir().join(format!(
            "lbrm_follow_{}_{:x}.jsonl",
            std::process::id(),
            complete_lines
        ));
        std::fs::write(&path, "").unwrap();

        // Append in chunks that deliberately tear lines: flush after an
        // arbitrary byte count, not at line boundaries, then finish with
        // a torn half-record and no newline.
        let writer_path = path.clone();
        let writer_text = text.clone();
        let writer = std::thread::spawn(move || {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .unwrap();
            for chunk in writer_text.as_bytes().chunks(97) {
                f.write_all(chunk).unwrap();
                f.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            f.write_all(b"{\"at_nanos\":12,\"truncat").unwrap();
            f.flush().unwrap();
        });

        let reader = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        let followed = follow_jsonl(
            reader,
            OnlineConfig::default(),
            Duration::from_millis(2),
            // Stop only once the writer is done and the file has gone
            // quiet — before that, EOF just means "not written yet".
            |p| p.quiet_for >= Duration::from_millis(50),
        )
        .expect("follow cannot fail on a local file");
        writer.join().unwrap();
        let _ = std::fs::remove_file(&path);

        let batch = analyze_jsonl(&text, &cfg);
        assert_eq!(followed.records, batch.records);
        assert_eq!(followed.records, complete_lines);
        assert_eq!(followed.skipped, 1, "exactly the torn final line");
        assert_eq!(followed.report.recovered, batch.report.recovered);
        assert_eq!(followed.report.anomalies, batch.report.anomalies);
        assert_eq!(followed.report.sources, batch.report.sources);
    }

    #[test]
    fn demo_run_is_clean_and_attributed() {
        let run = demo_run(77);
        assert!(run.report.is_clean(), "{:?}", run.report.anomalies);
        assert!(run.report.recovered > 0);
        assert_eq!(run.report.unrecovered, 0);
        assert!(run.records > 0);
        assert!(run.to_json().contains("\"clean\":true"));
    }
}
