//! The chaos scenario matrix: consensus-hardened primary failover
//! under injected faults, audited by the recovery forensics.
//!
//! Each shape builds a small DIS world with three primary-log replicas
//! (election quorum 2) and lossy receiver tails, drives a fixed data
//! schedule, injects one failure pattern mid-stream — crash, partition,
//! double failure, restart-with-empty-log, or repeated crash/re-elect
//! churn — and then verifies the two properties the election layer must
//! preserve:
//!
//! 1. **Full delivery**: every receiver ends with the complete stream.
//! 2. **Clean forensics**: the collected trace passes the doctor's
//!    anomaly sweep — no unrecovered gaps, no stalled settlements, and
//!    in particular no split-brain double-serve (a repair accepted from
//!    a logger whose term authority had already been superseded).
//!
//! The matrix (`run_matrix`) crosses every shape with multiple seeds
//! and both event-queue backends; the `chaos` binary gates CI on it.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::machine::Notice;
use lbrm_core::sender::Sender;
use lbrm_core::trace::analyze::{analyze, AnalyzeConfig, CollectorSink, RecoveryReport};
use lbrm_core::trace::{TraceSink, Tracer};
use lbrm_sim::loss::LossModel;
use lbrm_sim::queue::QueueBackend;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

/// Every failure shape in the matrix, in run order.
pub const SHAPES: [&str; 5] = [
    "primary-crash",
    "partition-stale-primary",
    "primary-replica-crash",
    "replica-rejoin",
    "crash-churn",
];

/// Data packets each scenario sends (250 ms spacing from t = 1 s).
pub const PACKETS: u64 = 20;

/// Virtual end time: failures land mid-stream, the tail leaves room for
/// the last election, retargeted NACK retries, and settlement.
const UNTIL: SimTime = SimTime::from_secs(45);

/// The chaos world: receivers recover straight from the primary (no
/// site secondaries), so the primary's serving authority — the thing
/// the election fences — is on the critical recovery path. Three
/// replicas give an election quorum of 2, surviving any single failure.
pub fn chaos_config(seed: u64, backend: QueueBackend) -> DisScenarioConfig {
    DisScenarioConfig {
        sites: 3,
        receivers_per_site: 3,
        secondary_loggers: false,
        replicas: 3,
        site_params: SiteParams {
            tail_in_loss: LossModel::rate(0.05),
            ..SiteParams::distant()
        },
        receiver_nack_delay: Duration::from_millis(5),
        seed,
        queue_backend: Some(backend),
        ..DisScenarioConfig::default()
    }
}

/// Outcome of one (shape, seed, backend) cell.
pub struct ChaosOutcome {
    /// The failure shape.
    pub shape: &'static str,
    /// World seed.
    pub seed: u64,
    /// Event-queue backend the world ran on.
    pub backend: QueueBackend,
    /// Fraction of receivers that delivered the complete stream.
    pub completeness: f64,
    /// Elections the sender committed (terms elected).
    pub elections: usize,
    /// Stale-term packets rejected by fencing, from the forensics.
    pub fenced_rejects: u64,
    /// The doctor's forensic report over the collected trace.
    pub report: RecoveryReport,
    /// Trace records analyzed.
    pub records: usize,
}

impl ChaosOutcome {
    /// The CI gate: full delivery and a clean forensic verdict.
    pub fn passed(&self) -> bool {
        self.completeness == 1.0 && self.report.is_clean()
    }

    /// One line for the matrix summary.
    pub fn render(&self) -> String {
        format!(
            "{:<26} seed {:<4} {:<5} {} (completeness {:.2}, {} elections, {} fenced, {} anomalies)",
            self.shape,
            self.seed,
            match self.backend {
                QueueBackend::Wheel => "wheel",
                QueueBackend::Heap => "heap",
            },
            if self.passed() { "PASS" } else { "FAIL" },
            self.completeness,
            self.elections,
            self.fenced_rejects,
            self.report.anomalies.len(),
        )
    }

    /// JSON object for the per-scenario report artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shape\":\"{}\",\"seed\":{},\"backend\":\"{}\",\"passed\":{},\
             \"completeness\":{},\"elections\":{},\"fenced_rejects\":{},\
             \"records\":{},\"report\":{}}}",
            self.shape,
            self.seed,
            match self.backend {
                QueueBackend::Wheel => "wheel",
                QueueBackend::Heap => "heap",
            },
            self.passed(),
            self.completeness,
            self.elections,
            self.fenced_rejects,
            self.records,
            self.report.to_json(),
        )
    }
}

/// Restarts a crashed replica as a fresh process: same host, empty log,
/// parented at the *current* primary (a restarted process reads current
/// cluster config). It catches up through replication pushes and
/// gap-fetches from its parent.
fn restart_replica(sc: &mut DisScenario, host: lbrm_wire::HostId, sink: Arc<dyn TraceSink>) {
    let current = sc
        .world
        .actor::<MachineActor<Sender>>(sc.src_host)
        .machine()
        .primary();
    let mut cfg = LoggerConfig::replica(sc.group, sc.source, host, current, sc.src_host);
    cfg.replicas = sc.replicas.iter().copied().filter(|&x| x != host).collect();
    let mut lg = Logger::new(cfg);
    lg.set_tracer(Tracer::to(sc.world.wrap_sink(sink)));
    sc.world.restart(host, MachineActor::new(lg, vec![]));
}

/// Runs one cell of the matrix.
///
/// # Panics
///
/// On an unknown shape name.
pub fn run_shape(shape: &'static str, seed: u64, backend: QueueBackend) -> ChaosOutcome {
    let collector = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        chaos_config(seed, backend),
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    for i in 0..PACKETS {
        sc.send_at(SimTime::from_millis(1_000 + 250 * i), format!("update-{i}"));
    }
    match shape {
        // The primary dies while NACKs are in flight to it; the sender
        // must elect a replica and receivers must finish recovery there.
        "primary-crash" => {
            sc.world.run_until(SimTime::from_millis(2_100));
            sc.world.crash(sc.primary);
        }
        // Only the old primary is cut off — sender, replicas, and every
        // receiver stay on the majority side, elect a new term, and
        // fence the stale primary. After the heal the deposed primary
        // must converge (step down), not double-serve.
        "partition-stale-primary" => {
            sc.world.run_until(SimTime::from_millis(2_100));
            sc.world.partition(&[sc.primary]);
            sc.world.run_until(SimTime::from_secs(8));
            sc.world.heal();
        }
        // Primary and one replica fail together: the two survivors
        // still form a quorum (2 of 3) at the election timeout.
        "primary-replica-crash" => {
            sc.world.run_until(SimTime::from_millis(2_100));
            sc.world.crash(sc.primary);
            sc.world.crash(sc.replicas[0]);
        }
        // A replica dies, the primary dies, a new term is elected among
        // the survivors — then the lost replica comes back as a fresh
        // process with an empty log and must catch up under the new
        // leadership.
        "replica-rejoin" => {
            sc.world.run_until(SimTime::from_millis(1_500));
            sc.world.crash(sc.replicas[0]);
            sc.world.run_until(SimTime::from_millis(2_100));
            sc.world.crash(sc.primary);
            sc.world.run_until(SimTime::from_secs(10));
            let rejoined = sc.replicas[0];
            restart_replica(&mut sc, rejoined, collector.clone());
        }
        // Repeated crash/re-elect churn: the first elected leader dies
        // too — while data is still flowing, so the sender's un-acked
        // buffer re-triggers detection — forcing a second, higher term.
        "crash-churn" => {
            sc.world.run_until(SimTime::from_millis(2_100));
            sc.world.crash(sc.primary);
            // Advance in fixed steps (identical event processing to one
            // big run) until the first election commits, then kill the
            // new leader mid-stream.
            let mut t = 2_500u64;
            let first = loop {
                sc.world.run_until(SimTime::from_millis(t));
                let p = sc
                    .world
                    .actor::<MachineActor<Sender>>(sc.src_host)
                    .machine()
                    .primary();
                if p != sc.primary || t >= 8_000 {
                    break p;
                }
                t += 250;
            };
            if first != sc.primary {
                sc.world.crash(first);
            }
        }
        other => panic!("unknown chaos shape: {other}"),
    }
    sc.world.run_until(UNTIL);

    let records = collector.take();
    let report = analyze(&records, &AnalyzeConfig::default());
    let expect: Vec<u32> = (1..=PACKETS as u32).collect();
    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    let elections = sender
        .notices
        .iter()
        .filter(|(_, n)| matches!(n, Notice::TermElected { .. }))
        .count();
    ChaosOutcome {
        shape,
        seed,
        backend,
        completeness: sc.completeness(&expect),
        elections,
        fenced_rejects: report.fenced_rejects,
        records: records.len(),
        report,
    }
}

/// Runs the full matrix: every shape crossed with `seeds` × `backends`.
pub fn run_matrix(seeds: &[u64], backends: &[QueueBackend]) -> Vec<ChaosOutcome> {
    let mut out = Vec::new();
    for &shape in &SHAPES {
        for &seed in seeds {
            for &backend in backends {
                out.push(run_shape(shape, seed, backend));
            }
        }
    }
    out
}

/// Wraps the matrix outcomes as one JSON report document.
pub fn matrix_to_json(outcomes: &[ChaosOutcome]) -> String {
    let cells: Vec<String> = outcomes.iter().map(|o| o.to_json()).collect();
    format!(
        "{{\"passed\":{},\"cells\":[{}]}}",
        outcomes.iter().all(|o| o.passed()),
        cells.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One representative cell per tier-1 run: the full matrix is CI's
    /// chaos job; here we pin the hardest shape (partition + heal with a
    /// stale primary) end to end on the default backend.
    #[test]
    fn partition_stale_primary_cell_is_clean() {
        let o = run_shape("partition-stale-primary", 1, QueueBackend::Wheel);
        assert!(
            o.passed(),
            "completeness {:.2}, anomalies {:?}",
            o.completeness,
            o.report.anomalies
        );
        assert!(o.elections >= 1, "an election must have committed");
    }

    #[test]
    fn matrix_json_shape() {
        let o = run_shape("primary-crash", 2, QueueBackend::Heap);
        let json = matrix_to_json(std::slice::from_ref(&o));
        assert!(json.starts_with("{\"passed\":"));
        assert!(json.contains("\"shape\":\"primary-crash\""));
        assert!(json.contains("\"backend\":\"heap\""));
    }
}
