//! **Figure 5** — Overhead(Fixed)/Overhead(Variable) vs inter-data
//! interval. The paper marks `dt = 120 s` (a terrain entity updating
//! every two minutes): ratio ≈ 53.4.

use lbrm_core::heartbeat::{analysis, HeartbeatConfig};

use crate::report::Table;

/// Runs the experiment.
pub fn run() -> String {
    let cfg = HeartbeatConfig::default();
    let mut out = String::new();
    out.push_str("Figure 5: Overhead(Fixed)/Overhead(Variable) vs dt\n");
    out.push_str("(h_min = 0.25 s, h_max = 32 s, backoff = 2)\n\n");
    let mut t = Table::new(&["dt (s)", "ratio"]);
    for dt in [
        0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1000.0,
    ] {
        let r = analysis::overhead_ratio(dt, &cfg);
        t.row(&[format!("{dt}"), format!("{r:.1}")]);
    }
    out.push_str(&t.render());
    let marked = analysis::overhead_ratio(120.0, &cfg);
    out.push_str(&format!(
        "\nMarked point (DIS terrain, dt = 120 s): ratio = {marked:.1}  (paper: 53.4)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marked_point_matches_paper() {
        let r = analysis::overhead_ratio(120.0, &HeartbeatConfig::default());
        assert!((r - 53.4).abs() < 1.0, "ratio {r}");
    }

    #[test]
    fn ratio_grows_with_dt() {
        let cfg = HeartbeatConfig::default();
        let r10 = analysis::overhead_ratio(10.0, &cfg);
        let r120 = analysis::overhead_ratio(120.0, &cfg);
        let r1000 = analysis::overhead_ratio(1000.0, &cfg);
        assert!(r10 < r120 && r120 < r1000);
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("53."));
    }
}
