//! **Figure 7 / §2.2.2** — retransmission requests under centralized vs
//! distributed logging.
//!
//! The paper's scenario: a data packet is lost on every site's inbound
//! tail circuit (Figure 1's congestion pattern), so all 20 receivers at
//! each of the 50 sites miss it. Centralized recovery sends one NACK per
//! *receiver* across the tail circuit and WAN to the primary logger
//! (20/site, 1,000 total); distributed logging collapses that to one
//! NACK per *site* (the secondary logger's), a 20× reduction, and the
//! primary's load drops identically.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm_core::trace::analyze::{analyze, AnalyzeConfig};
use lbrm_core::trace::CollectorSink;
use lbrm_sim::loss::LossModel;
use lbrm_sim::stats::SegmentClass;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

use crate::report::Table;

/// Results of one run.
#[derive(Debug, Clone, Copy)]
pub struct NackCounts {
    /// NACK requests arriving at the primary logger — the paper's
    /// headline metric, read from the primary's trace registry.
    pub primary_nacks: u64,
    /// Retransmissions the primary served, from the same registry.
    pub primary_retrans: u64,
    /// NACKs carried by the WAN backbone (wire-level cross-check).
    pub wan_nacks: u64,
    /// NACKs crossing any tail circuit outbound.
    pub tail_out_nacks: u64,
    /// Retransmissions carried by the WAN.
    pub wan_retrans: u64,
    /// Fraction of receivers that ended complete.
    pub completeness: f64,
}

/// Runs the scenario with or without secondary loggers and returns the
/// NACK accounting.
pub fn run_variant(sites: usize, receivers: usize, distributed: bool, seed: u64) -> NackCounts {
    // Packet #2 (sent at t = 5 s) is lost on every receiver site's
    // inbound tail circuit.
    let outage = LossModel::outage(SimTime::from_secs(5), Duration::from_millis(100));
    let site_params = SiteParams {
        tail_in_loss: outage,
        ..SiteParams::distant()
    };
    let forensics = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            sites,
            receivers_per_site: receivers,
            secondary_loggers: distributed,
            site_params,
            site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
            seed,
            ..DisScenarioConfig::default()
        },
        Some(forensics.clone()),
    );
    sc.send_at(SimTime::from_secs(1), "update-1");
    sc.send_at(SimTime::from_secs(5), "update-2"); // lost at every site
    sc.send_at(SimTime::from_secs(9), "update-3");
    sc.world.run_until(SimTime::from_secs(30));

    let stats = sc.world.stats();

    // Self-audit: the analyzer must agree that every receiver's gap
    // closed, and (distributed) that per-seq requests at the primary
    // stayed within the one-per-site bound.
    let report = analyze(&forensics.take(), &AnalyzeConfig::default());
    assert!(report.is_clean(), "forensics: {:?}", report.anomalies);
    assert_eq!(report.unrecovered, 0, "unrecovered gaps in trace");

    NackCounts {
        primary_nacks: sc.primary_metrics.counter("nack_received"),
        primary_retrans: sc.primary_metrics.counter("retrans_served_unicast")
            + sc.primary_metrics.counter("retrans_served_multicast"),
        wan_nacks: stats.class_kind(SegmentClass::Wan, "nack").carried,
        tail_out_nacks: stats.class_kind(SegmentClass::TailOut, "nack").carried,
        wan_retrans: stats.class_kind(SegmentClass::Wan, "retrans").carried,
        completeness: sc.completeness(&[1, 2, 3]),
    }
}

/// Runs the experiment.
pub fn run() -> String {
    let sites = 50;
    let receivers = 20;
    // The two variants are independent seeded runs — sweep in parallel.
    let variants = crate::parallel::par_map(vec![false, true], |distributed| {
        run_variant(sites, receivers, distributed, 11)
    });
    let (central, dist) = (variants[0], variants[1]);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7: retransmission requests after a packet is lost on every\n\
         site's tail circuit ({sites} sites x {receivers} receivers = {} subscribers)\n\n",
        sites * receivers
    ));
    let mut t = Table::new(&["metric", "centralized (a)", "distributed (b)", "paper"]);
    t.row(&[
        "NACK requests at the primary".into(),
        format!("{}", central.primary_nacks),
        format!("{}", dist.primary_nacks),
        format!("{} vs {}", sites * receivers, sites),
    ]);
    t.row(&[
        "retransmissions it served".into(),
        format!("{}", central.primary_retrans),
        format!("{}", dist.primary_retrans),
        "per-receiver vs per-site".into(),
    ]);
    t.row(&[
        "NACKs crossing the WAN".into(),
        format!("{}", central.wan_nacks),
        format!("{}", dist.wan_nacks),
        format!("{} vs {}", sites * receivers, sites),
    ]);
    t.row(&[
        "NACKs per site's tail circuit".into(),
        format!("{:.1}", central.tail_out_nacks as f64 / sites as f64),
        format!("{:.1}", dist.tail_out_nacks as f64 / sites as f64),
        format!("{receivers} vs 1"),
    ]);
    t.row(&[
        "retransmissions on the WAN".into(),
        format!("{}", central.wan_retrans),
        format!("{}", dist.wan_retrans),
        "per-receiver vs per-site".into(),
    ]);
    t.row(&[
        "delivery completeness".into(),
        format!("{:.3}", central.completeness),
        format!("{:.3}", dist.completeness),
        "1.0 both".into(),
    ]);
    out.push_str(&t.render());
    let reduction = central.primary_nacks as f64 / dist.primary_nacks.max(1) as f64;
    out.push_str(&format!(
        "\nNACK reduction at the primary: {reduction:.1}x (paper: {receivers}x — \
         \"from 20 per site to 1\")\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_reduces_wan_nacks_by_receiver_factor() {
        // Scaled-down 6 sites × 5 receivers for test time.
        let central = run_variant(6, 5, false, 3);
        let dist = run_variant(6, 5, true, 3);
        assert_eq!(central.completeness, 1.0);
        assert_eq!(dist.completeness, 1.0);
        assert!(central.primary_nacks >= 30, "centralized {central:?}");
        assert!(dist.primary_nacks <= 6 + 2, "distributed {dist:?}");
        let reduction = central.primary_nacks as f64 / dist.primary_nacks as f64;
        assert!(reduction >= 3.5, "reduction {reduction}");
        // The trace counters and the wire-level stats tell one story:
        // every NACK the primary saw crossed the WAN (lossless on the
        // NACK path in this scenario).
        assert_eq!(central.primary_nacks, central.wan_nacks, "{central:?}");
        assert!(
            central.primary_retrans >= central.primary_nacks,
            "{central:?}"
        );
    }
}
