//! **§2.2.1 ablation** — the secondary logger's unicast-vs-re-multicast
//! decision.
//!
//! "A secondary logging server may decide to re-multicast a packet,
//! rather than sending point-to-point retransmissions, if it decides
//! that a significant number of clients have lost the packet." With `m`
//! of `n` site receivers missing a packet, unicast repair costs `m` LAN
//! transmissions; a site-scoped re-multicast costs one. This ablation
//! sweeps the number of victims against the decision threshold and
//! counts repair decisions via the secondary's trace registry
//! (`retrans_served_unicast` / `retrans_served_multicast`).

use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm_sim::stats::SegmentClass;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

use crate::report::Table;

/// One run: `victims` of the site's receivers miss a packet; returns
/// (repair transmissions by the secondary, of which site multicasts).
pub fn run_once(victims: usize, seed: u64) -> (u64, u64) {
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 1,
        receivers_per_site: 12,
        site_params: SiteParams::distant(),
        receiver_nack_delay: Duration::from_millis(5),
        seed,
        ..DisScenarioConfig::default()
    });
    sc.send_at(SimTime::from_secs(1), "one");
    sc.send_at(SimTime::from_secs(5), "two");
    sc.send_at(SimTime::from_secs(9), "three");

    let targets: Vec<_> = sc.receivers[0].iter().copied().take(victims).collect();
    sc.world.run_until(SimTime::from_millis(4_900));
    for &v in &targets {
        sc.world.crash(v);
    }
    sc.world.run_until(SimTime::from_millis(5_500));
    for &v in &targets {
        sc.world.revive(v);
    }
    sc.world.run_until(SimTime::from_secs(30));
    assert_eq!(sc.completeness(&[1, 2, 3]), 1.0);

    // The lone secondary is the only machine feeding this registry, so
    // its serve decisions are exactly the retrans_served_* counters.
    let unicasts = sc.secondary_metrics.counter("retrans_served_unicast");
    let multicasts = sc.secondary_metrics.counter("retrans_served_multicast");
    let _ = SegmentClass::Lan;
    (unicasts + multicasts, multicasts)
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str(
        "§2.2.1 ablation: unicast vs site-scoped re-multicast repair\n\
         (1 site, 12 receivers, threshold = 3 distinct requesters)\n\n",
    );
    let mut t = Table::new(&["victims", "repair transmissions", "of which multicast"]);
    for victims in [1usize, 2, 3, 6, 12] {
        let (tx, rem) = run_once(victims, 41);
        t.row(&[format!("{victims}"), format!("{tx}"), format!("{rem}")]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nBelow the threshold each victim costs one unicast; at or above it\n\
         the secondary answers everyone with a single site-scoped multicast,\n\
         so repair transmissions plateau regardless of victim count.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_switches_to_multicast() {
        let (_, rem1) = run_once(1, 3);
        assert_eq!(rem1, 0, "one victim: unicast repair");
        let (_, rem6) = run_once(6, 3);
        assert!(rem6 >= 1, "six victims: site re-multicast expected");
    }

    #[test]
    fn repair_transmissions_plateau_above_threshold() {
        let (tx2, rem2) = run_once(2, 5);
        assert_eq!((tx2, rem2), (2, 0), "two victims: two unicasts");
        let (tx12, rem12) = run_once(12, 5);
        assert!(rem12 >= 1);
        assert!(
            tx12 <= 4,
            "12 victims must cost ~threshold transmissions, got {tx12}"
        );
    }
}
