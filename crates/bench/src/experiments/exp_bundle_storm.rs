//! **§5 / bundling** — datagram reduction from PDU bundling under a
//! seeded NACK storm.
//!
//! The scenario stages the traffic pattern bundling exists for: a burst
//! of same-tick entity updates is multicast while every receiver site's
//! inbound tail circuit is down, so when the next packet lands each
//! receiver NACKs the whole gap and the logger answers with a
//! contiguous run of retransmissions to that requester — all at one
//! simulated instant, all to one destination. The simulator's
//! [`BundleMeter`](lbrm_sim::stats::BundleMeter) folds both framing
//! ledgers over one identical run (the differential test pins that the
//! mode changes nothing else), so a single run yields the datagram
//! count with bundling off (one per packet) and on (one per MTU-bounded
//! frame), and the headline metric is their ratio on the repair path.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm_core::trace::analyze::{analyze, AnalyzeConfig};
use lbrm_core::trace::CollectorSink;
use lbrm_sim::loss::LossModel;
use lbrm_sim::stats::BundleStats;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

use crate::report::Table;

/// Updates multicast inside the outage window (the storm's gap width).
const BURST: u64 = 24;

/// One storm run's accounting.
#[derive(Debug, Clone)]
pub struct StormCounts {
    /// Both framing ledgers for every host's outbound stream.
    pub bundle: BundleStats,
    /// Fraction of receivers that ended complete.
    pub completeness: f64,
}

impl StormCounts {
    /// Datagram reduction (`packets / frames`) for one packet kind.
    pub fn reduction(&self, kind: &str) -> f64 {
        let k = &self.bundle.per_kind[kind];
        k.packets as f64 / k.frames.max(1) as f64
    }
}

/// Runs the storm: `BURST` same-tick updates are lost on every site's
/// tail circuit, receivers gap-NACK on the next delivery, and loggers
/// serve the spans as contiguous repair runs.
pub fn run_storm(sites: usize, receivers: usize, seed: u64) -> StormCounts {
    // The outage swallows the burst at t = 5 s on every receiver site.
    let outage = LossModel::outage(SimTime::from_secs(5), Duration::from_millis(100));
    let site_params = SiteParams {
        tail_in_loss: outage,
        ..SiteParams::distant()
    };
    let forensics = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            sites,
            receivers_per_site: receivers,
            // Centralized recovery concentrates the storm on the
            // primary — the worst case the bundled repair path serves.
            secondary_loggers: false,
            site_params,
            seed,
            ..DisScenarioConfig::default()
        },
        Some(forensics.clone()),
    );
    sc.send_at(SimTime::from_secs(1), "warmup");
    for i in 0..BURST {
        // One simulation tick's worth of entity-state updates, all
        // inside the outage window.
        sc.send_at(SimTime::from_secs(5), format!("burst-{i}"));
    }
    sc.send_at(SimTime::from_secs(9), "gap-closer");
    sc.world.run_until(SimTime::from_secs(30));

    // Self-audit: the storm must actually have been recovered.
    let report = analyze(&forensics.take(), &AnalyzeConfig::default());
    assert!(report.is_clean(), "forensics: {:?}", report.anomalies);
    assert_eq!(report.unrecovered, 0, "unrecovered gaps in trace");

    let expect: Vec<u32> = (1..=BURST as u32 + 2).collect();
    StormCounts {
        bundle: sc.world.bundle_stats(),
        completeness: sc.completeness(&expect),
    }
}

/// Runs the experiment.
pub fn run() -> String {
    let (sites, receivers) = (20, 10);
    let storm = run_storm(sites, receivers, 17);

    let mut out = String::new();
    out.push_str(&format!(
        "PDU bundling under a NACK storm: {BURST} same-tick updates lost on\n\
         every site's tail circuit ({sites} sites x {receivers} receivers), recovered\n\
         through gap NACKs served as contiguous repair runs.\n\n\
         Datagrams per packet kind, bundling off (one per packet) vs on\n\
         (one per MTU-bounded frame), from one identical run:\n\n"
    ));
    let mut t = Table::new(&["kind", "packets (off)", "frames (on)", "reduction"]);
    for (kind, k) in &storm.bundle.per_kind {
        t.row(&[
            (*kind).into(),
            format!("{}", k.packets),
            format!("{}", k.frames),
            format!("{:.1}x", k.packets as f64 / k.frames.max(1) as f64),
        ]);
    }
    t.row(&[
        "total".into(),
        format!("{}", storm.bundle.packets),
        format!("{}", storm.bundle.frames),
        format!(
            "{:.1}x",
            storm.bundle.packets as f64 / storm.bundle.frames.max(1) as f64
        ),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nRepair-path datagram reduction: {:.1}x \
         (retransmissions coalesced into MTU-full bundles)\n\
         Wire bytes: {} unbundled vs {} bundled \
         ({:.1}% framing delta)\n\
         Delivery completeness: {:.3}\n",
        storm.reduction("retrans"),
        storm.bundle.bytes_unbundled,
        storm.bundle.bytes_bundled,
        100.0 * (storm.bundle.bytes_bundled as f64 - storm.bundle.bytes_unbundled as f64)
            / storm.bundle.bytes_unbundled as f64,
        storm.completeness,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_repairs_bundle_at_least_3x() {
        // Scaled-down 6 sites × 5 receivers for test time.
        let storm = run_storm(6, 5, 17);
        assert_eq!(storm.completeness, 1.0, "{storm:?}");
        let retrans = &storm.bundle.per_kind["retrans"];
        assert!(
            retrans.packets >= BURST * 6,
            "storm too small to be meaningful: {retrans:?}"
        );
        let reduction = storm.reduction("retrans");
        assert!(
            reduction >= 3.0,
            "bundled repair serving must cut retrans datagrams >= 3x, \
             got {reduction:.2}x ({retrans:?})"
        );
        // Framing never inflates bytes beyond the per-frame header and
        // per-entry prefixes.
        assert!(
            storm.bundle.bytes_bundled
                <= storm.bundle.bytes_unbundled
                    + 8 * storm.bundle.frames
                    + 2 * storm.bundle.packets,
            "{:?}",
            storm.bundle
        );
    }
}
