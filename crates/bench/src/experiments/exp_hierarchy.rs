//! **§7 ablation** — "a multi-level hierarchy of logging servers may be
//! used to further reduce NACK bandwidth in large groups."
//!
//! The everyone-loses-a-packet scenario of Figure 7, at one, two, and
//! three hierarchy levels: requests reaching the primary shrink from
//! one per *receiver* to one per *site* to one per *region*.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm_sim::loss::LossModel;
use lbrm_sim::stats::SegmentClass;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

use crate::report::Table;

/// NACKs reaching the primary's site, and completeness, for a hierarchy
/// of `levels` (1 = centralized, 2 = site secondaries, 3 = + regionals).
pub fn run_level(
    sites: usize,
    receivers: usize,
    fanout: usize,
    levels: u8,
    seed: u64,
) -> (u64, f64) {
    let outage = LossModel::outage(SimTime::from_secs(5), Duration::from_millis(100));
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites,
        receivers_per_site: receivers,
        secondary_loggers: levels >= 2,
        regional_fanout: (levels >= 3).then_some(fanout),
        site_params: SiteParams {
            tail_in_loss: outage,
            ..SiteParams::distant()
        },
        site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
        seed,
        ..DisScenarioConfig::default()
    });
    sc.send_at(SimTime::from_secs(1), "one");
    sc.send_at(SimTime::from_secs(5), "two");
    sc.send_at(SimTime::from_secs(9), "three");
    sc.world.run_until(SimTime::from_secs(40));
    let source_site = sc.world.topology().site_of(sc.primary);
    let nacks = sc
        .world
        .stats()
        .site_tail(source_site, SegmentClass::TailIn, "nack")
        .carried;
    (nacks, sc.completeness(&[1, 2, 3]))
}

/// Runs the experiment.
pub fn run() -> String {
    let (sites, receivers, fanout) = (48, 20, 8);
    let mut out = String::new();
    out.push_str(&format!(
        "§7 ablation: logging hierarchy depth vs primary NACK load\n\
         ({sites} sites x {receivers} receivers, regional fanout {fanout}, one packet lost\n\
         on every site's tail circuit)\n\n"
    ));
    let mut t = Table::new(&["hierarchy", "NACKs at primary", "complete"]);
    let levels = vec![
        (1u8, "1-level (centralized)"),
        (2, "2-level (paper)"),
        (3, "3-level (+regional)"),
    ];
    // The three depths are independent simulations; run them in parallel
    // and render in input order so the table is identical to a serial run.
    let rows = crate::parallel::par_map(levels, |(levels, label)| {
        let (nacks, completeness) = run_level(sites, receivers, fanout, levels, 29);
        (label, nacks, completeness)
    });
    for (label, nacks, completeness) in rows {
        t.row(&[
            label.into(),
            format!("{nacks}"),
            format!("{completeness:.3}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nEach level divides primary load by its fan-in: {} → {} → {}.\n",
        sites * receivers,
        sites,
        sites / fanout
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_divide_primary_load() {
        let (l1, c1) = run_level(8, 4, 4, 1, 3);
        let (l2, c2) = run_level(8, 4, 4, 2, 3);
        let (l3, c3) = run_level(8, 4, 4, 3, 3);
        assert_eq!((c1, c2, c3), (1.0, 1.0, 1.0));
        assert_eq!(l1, 32);
        assert_eq!(l2, 8);
        assert_eq!(l3, 2);
    }
}
