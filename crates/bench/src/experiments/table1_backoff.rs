//! **Table 1** — Overhead(Fixed)/Overhead(Variable) at `dt = 120 s` as
//! the backoff parameter varies, all other parameters as in Figure 4.
//!
//! Reported two ways: the deterministic schedule count (exact for
//! perfectly periodic updates, which plateaus at coarse backoffs because
//! heartbeat counts are integers), and the Poisson-averaged expectation
//! (exponential inter-update gaps with the same mean), which resolves
//! the plateaus and matches the paper's monotone trend.

use lbrm_core::heartbeat::{analysis, HeartbeatConfig};

use crate::report::Table;

/// Paper values for reference output.
pub const PAPER: [(f64, f64); 6] = [
    (1.5, 34.4),
    (2.0, 53.3),
    (2.5, 65.8),
    (3.0, 74.8),
    (3.5, 81.7),
    (4.0, 87.3),
];

/// The Poisson-averaged ratio at mean interval `dt` for `backoff`.
pub fn poisson_ratio(dt: f64, backoff: f64) -> f64 {
    let cfg = HeartbeatConfig {
        backoff,
        ..HeartbeatConfig::default()
    };
    analysis::fixed_heartbeats_poisson(dt, 0.25) / analysis::variable_heartbeats_poisson(dt, &cfg)
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Table 1: overhead ratio at dt = 120 s vs backoff parameter\n\n");
    let mut t = Table::new(&["backoff", "deterministic", "poisson-averaged", "paper"]);
    for (backoff, paper) in PAPER {
        let cfg = HeartbeatConfig {
            backoff,
            ..HeartbeatConfig::default()
        };
        let det = analysis::overhead_ratio(120.0, &cfg);
        let poi = poisson_ratio(120.0, backoff);
        t.row(&[
            format!("{backoff}"),
            format!("{det:.1}"),
            format!("{poi:.1}"),
            format!("{paper}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: savings grow with backoff with diminishing returns;\n\
         ~50x at backoff 2 (the paper's choice).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_ratio_monotone_in_backoff() {
        let mut prev = 0.0;
        for (b, _) in PAPER {
            let r = poisson_ratio(120.0, b);
            assert!(r > prev, "backoff {b}: {r} <= {prev}");
            prev = r;
        }
    }

    #[test]
    fn backoff_2_matches_paper_closely() {
        let det = analysis::overhead_ratio(
            120.0,
            &HeartbeatConfig {
                backoff: 2.0,
                ..HeartbeatConfig::default()
            },
        );
        assert!((det - 53.3).abs() < 0.5, "{det}");
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Table 1"));
    }
}
