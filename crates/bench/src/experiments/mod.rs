//! One module per paper table/figure (plus ablations). Every module
//! exposes `run() -> String`, printing the same rows/series the paper
//! reports.

pub mod exp_bundle_storm;
pub mod exp_burst_detection;
pub mod exp_dis_scenario;
pub mod exp_group_churn;
pub mod exp_hierarchy;
pub mod exp_recovery_latency;
pub mod exp_remulticast;
pub mod exp_statistical_ack;
pub mod exp_wb_comparison;
pub mod fig4_heartbeat_overhead;
pub mod fig5_overhead_ratio;
pub mod fig7_nack_reduction;
pub mod table1_backoff;
pub mod table2_estimation;
pub mod table3_breakdown;
