//! **§6** — LBRM vs *wb*-style (SRM) recovery.
//!
//! Two claims are measured on identical topologies and loss patterns:
//!
//! 1. **Recovery latency**: LBRM recovers in about one RTT to the
//!    nearest logger holding the packet; wb delays requests and repairs
//!    proportionally to the RTT to the *source* (≈3×RTT for the last
//!    receiver).
//! 2. **The crying baby**: one receiver behind a bad link loses packet
//!    after packet. Under LBRM its repairs are unicast/site-scoped; under
//!    wb every loss multicasts a request and a repair to the whole
//!    group.

use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor, SrmScenario, SrmScenarioConfig};
use lbrm_sim::stats::SegmentClass;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;
use lbrm_wire::HostId;

use crate::report::{fmt_dur, mean, Table};

/// Result of one crying-baby run.
#[derive(Debug, Clone)]
pub struct BabyOutcome {
    /// Mean recovery latency at the baby.
    pub baby_recovery: Duration,
    /// Repair requests carried by the WAN.
    pub wan_requests: u64,
    /// Repairs carried by the WAN.
    pub wan_repairs: u64,
    /// Overhead packets (requests + repairs) *delivered to innocent
    /// members* — the paper's "all members must contend with" cost.
    pub innocent_overhead: u64,
}

const SENDS: u64 = 8;

fn crash_windows(world_len: &mut Vec<(SimTime, SimTime)>) {
    for i in 0..SENDS {
        let t = SimTime::from_secs(2 + i);
        world_len.push((
            SimTime::from_nanos(t.nanos() - 50_000_000),
            SimTime::from_nanos(t.nanos() + 300_000_000),
        ));
    }
}

/// Drives a world through the crash windows for one victim host.
fn run_with_crashes<W>(world: &mut W, victim: HostId, crash: impl Fn(&mut W, HostId, bool))
where
    W: RunUntil,
{
    let mut windows = Vec::new();
    crash_windows(&mut windows);
    for (start, end) in windows {
        world.run_to(start);
        crash(world, victim, true);
        world.run_to(end);
        crash(world, victim, false);
    }
    world.run_to(SimTime::from_secs(40));
}

/// Minimal world-advancing abstraction over both scenario types.
pub trait RunUntil {
    /// Advances virtual time to `t`.
    fn run_to(&mut self, t: SimTime);
}

impl RunUntil for DisScenario {
    fn run_to(&mut self, t: SimTime) {
        self.world.run_until(t);
    }
}

impl RunUntil for SrmScenario {
    fn run_to(&mut self, t: SimTime) {
        self.world.run_until(t);
    }
}

/// LBRM crying-baby run.
pub fn run_lbrm(sites: usize, receivers: usize, seed: u64) -> BabyOutcome {
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites,
        receivers_per_site: receivers,
        receiver_nack_delay: Duration::from_millis(5),
        site_params: SiteParams::distant(),
        seed,
        ..DisScenarioConfig::default()
    });
    for i in 0..SENDS {
        sc.send_at(SimTime::from_secs(2 + i), format!("update-{i}"));
    }
    let baby = sc.receivers[0][0];
    run_with_crashes(&mut sc, baby, |w, h, down| {
        if down {
            w.world.crash(h)
        } else {
            w.world.revive(h)
        }
    });
    let lat = sc.recovery_latencies(baby);
    let stats = sc.world.stats();
    // Innocent members receive zero recovery traffic under LBRM when
    // repairs are unicast; count any multicast recovery they did see.
    let innocent = stats.class_kind(SegmentClass::Wan, "retrans").carried
        + stats.class_kind(SegmentClass::Wan, "nack").carried;
    BabyOutcome {
        baby_recovery: mean(&lat),
        wan_requests: stats.class_kind(SegmentClass::Wan, "nack").carried,
        wan_repairs: stats.class_kind(SegmentClass::Wan, "retrans").carried,
        innocent_overhead: innocent,
    }
}

/// SRM crying-baby run.
pub fn run_srm(sites: usize, receivers: usize, seed: u64) -> BabyOutcome {
    let mut sc = SrmScenario::build(SrmScenarioConfig {
        sites,
        receivers_per_site: receivers,
        site_params: SiteParams::distant(),
        seed,
        ..SrmScenarioConfig::default()
    });
    for i in 0..SENDS {
        sc.send_at(SimTime::from_secs(2 + i), format!("update-{i}"));
    }
    let baby = sc.members[0][0];
    run_with_crashes(&mut sc, baby, |w, h, down| {
        if down {
            w.world.crash(h)
        } else {
            w.world.revive(h)
        }
    });
    let lat: Vec<Duration> = {
        let a = sc
            .world
            .actor::<MachineActor<lbrm_core::baseline::srm::SrmMember>>(baby);
        a.notices
            .iter()
            .filter_map(|(_, n)| match n {
                lbrm_core::machine::Notice::Recovered { after, .. } => Some(*after),
                _ => None,
            })
            .collect()
    };
    let stats = sc.world.stats();
    let wan_requests = stats.class_kind(SegmentClass::Wan, "srm-nack").carried;
    let wan_repairs = stats.class_kind(SegmentClass::Wan, "srm-repair").carried;
    // Every multicast request/repair lands on every member's LAN.
    let innocent = stats.class_kind(SegmentClass::Lan, "srm-nack").carried
        + stats.class_kind(SegmentClass::Lan, "srm-repair").carried;
    BabyOutcome {
        baby_recovery: mean(&lat),
        wan_requests,
        wan_repairs,
        innocent_overhead: innocent,
    }
}

/// Runs the experiment.
pub fn run() -> String {
    let (sites, receivers) = (10, 4);
    let lbrm = run_lbrm(sites, receivers, 17);
    let srm = run_srm(sites, receivers, 17);

    let mut out = String::new();
    out.push_str(&format!(
        "§6: LBRM vs wb-style recovery — crying baby behind a bad link\n\
         ({sites} sites x {receivers} members, {SENDS} data packets all lost by the baby)\n\n"
    ));
    let mut t = Table::new(&["metric", "LBRM", "wb-style (SRM)"]);
    t.row(&[
        "baby mean recovery latency".into(),
        fmt_dur(lbrm.baby_recovery),
        fmt_dur(srm.baby_recovery),
    ]);
    t.row(&[
        "repair requests on the WAN".into(),
        format!("{}", lbrm.wan_requests),
        format!("{}", srm.wan_requests),
    ]);
    t.row(&[
        "repairs on the WAN".into(),
        format!("{}", lbrm.wan_repairs),
        format!("{}", srm.wan_repairs),
    ]);
    t.row(&[
        "recovery packets hitting innocents".into(),
        format!("{}", lbrm.innocent_overhead),
        format!("{}", srm.innocent_overhead),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nShape (paper): LBRM repairs locally — zero group-wide recovery\n\
         traffic and ~local-RTT latency; wb multicasts a request and at\n\
         least one repair to everyone for every loss, and the requester\n\
         waits timers proportional to the RTT to the source (~3x RTT).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbrm_confines_recovery_and_is_faster() {
        let lbrm = run_lbrm(4, 3, 2);
        let srm = run_srm(4, 3, 2);
        assert!(lbrm.baby_recovery > Duration::ZERO);
        assert!(srm.baby_recovery > Duration::ZERO);
        // The crying baby's losses stay local under LBRM.
        assert_eq!(lbrm.innocent_overhead, 0, "{lbrm:?}");
        assert!(srm.innocent_overhead > 10, "{srm:?}");
        // And recovery is meaningfully faster than wb's timer-based scheme.
        assert!(
            lbrm.baby_recovery * 2 < srm.baby_recovery,
            "LBRM {:?} vs SRM {:?}",
            lbrm.baby_recovery,
            srm.baby_recovery
        );
    }
}
