//! **§2.1.1 loss-detection bound** — the variable heartbeat detects an
//! isolated loss within `h_min`, and a burst of length `t_burst` within
//! `min(2·t_burst, h_max)` (backoff 2; `k·t_burst` in general).
//!
//! A data packet is transmitted exactly at the start of an inbound
//! outage of duration `t_burst` at the receiver's site — the worst case
//! of the paper's analysis. Detection time is measured from when the
//! packet would have arrived to the `LossDetected` notice.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm_core::machine::{LossSignal, Notice};
use lbrm_core::receiver::Receiver;
use lbrm_sim::loss::LossModel;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

use crate::report::{fmt_dur, Table};

/// Detection delay for one burst length, plus the MaxIT freshness-loss
/// delay for context.
pub fn detection_delay(t_burst: Duration, seed: u64) -> (Duration, Duration) {
    let send_at = SimTime::from_secs(10);
    let outage = LossModel::Outages {
        windows: vec![(send_at, send_at + t_burst)],
    };
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites: 1,
        receivers_per_site: 1,
        site_params: SiteParams {
            tail_in_loss: outage,
            ..SiteParams::distant()
        },
        site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
        seed,
        ..DisScenarioConfig::default()
    });
    sc.send_at(SimTime::from_secs(2), "baseline");
    // A transmission shortly before the burst keeps the receiver's
    // expected-heartbeat window tight, so the idle alarm is meaningful.
    sc.send_at(SimTime::from_millis(9_500), "baseline-2");
    sc.send_at(send_at, "lost-at-burst-start");
    sc.world
        .run_until(SimTime::from_secs(10) + t_burst * 4 + Duration::from_secs(40));

    let rx_host = sc.receivers[0][0];
    let rx = sc.world.actor::<MachineActor<Receiver>>(rx_host);
    let would_arrive = SimTime::from_nanos(
        send_at.nanos()
            + sc.world
                .topology()
                .base_latency(sc.src_host, rx_host)
                .as_nanos() as u64,
    );
    let detected_at = rx
        .notices
        .iter()
        .find_map(|(at, n)| match n {
            Notice::LossDetected {
                signal: LossSignal::Heartbeat | LossSignal::SeqGap,
                ..
            } if *at > SimTime::from_secs(9) => Some(*at),
            _ => None,
        })
        .expect("loss must eventually be detected");
    let freshness_lost_at = rx.notices.iter().find_map(|(at, n)| match n {
        Notice::FreshnessLost if *at > SimTime::from_secs(9) => Some(*at),
        _ => None,
    });
    (
        detected_at.since(would_arrive),
        freshness_lost_at
            .map(|t| t.since(would_arrive))
            .unwrap_or_default(),
    )
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str(
        "§2.1.1: time to detect a packet lost at the start of a burst\n\
         outage of length t_burst (h_min = 0.25 s, h_max = 32 s, backoff 2)\n\n",
    );
    let mut t = Table::new(&[
        "t_burst",
        "detected after",
        "bound min(2·t_burst, h_max)",
        "within bound",
        "idle alarm",
    ]);
    for secs in [0.1f64, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 40.0] {
        let t_burst = Duration::from_secs_f64(secs);
        let (detect, maxit) = detection_delay(t_burst, 9);
        // Isolated losses (burst < h_min) are bounded by h_min instead.
        let bound = if t_burst < Duration::from_millis(250) {
            Duration::from_millis(250)
        } else {
            (2 * t_burst).min(Duration::from_secs(32) + t_burst)
        };
        // Allow propagation + heartbeat quantization slack.
        let slack = Duration::from_millis(600);
        let ok = detect <= bound + slack;
        t.row(&[
            fmt_dur(t_burst),
            fmt_dur(detect),
            fmt_dur(bound),
            format!("{ok}"),
            fmt_dur(maxit),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape: isolated losses detected in ~h_min; bursts in < 2x their\n\
         length; the idle (MaxIT-derived) alarm flags the silent channel\n\
         within ~1 s regardless of burst length.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_loss_detected_within_h_min_plus_slack() {
        let (detect, _) = detection_delay(Duration::from_millis(100), 2);
        assert!(
            detect <= Duration::from_millis(250 + 120),
            "isolated loss took {detect:?}"
        );
    }

    #[test]
    fn burst_detection_within_twice_burst() {
        for secs in [1u64, 4] {
            let t_burst = Duration::from_secs(secs);
            let (detect, _) = detection_delay(t_burst, 3);
            assert!(
                detect <= 2 * t_burst + Duration::from_millis(600),
                "burst {t_burst:?} detected after {detect:?}"
            );
            assert!(detect >= t_burst / 4, "implausibly fast: {detect:?}");
        }
    }

    #[test]
    fn long_bursts_bounded_near_h_max() {
        // For t_burst = 40 s > h_max, detection is bounded by the
        // steady-state heartbeat period after the burst ends.
        let t_burst = Duration::from_secs(40);
        let (detect, _) = detection_delay(t_burst, 4);
        assert!(
            detect <= t_burst + Duration::from_secs(33),
            "long burst detected after {detect:?}"
        );
    }

    #[test]
    fn idle_alarm_fires_quickly() {
        let (_, idle) = detection_delay(Duration::from_secs(4), 5);
        assert!(
            idle > Duration::ZERO && idle < Duration::from_millis(1_300),
            "idle alarm at {idle:?}"
        );
    }
}
