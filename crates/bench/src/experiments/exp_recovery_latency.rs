//! **§2.2.2 recovery latency** — local recovery beats wide-area
//! recovery by an order of magnitude.
//!
//! The paper's ping measurements: a secondary logger a few miles away is
//! 3–4 ms RTT; the primary 1,500 miles away is ~80 ms RTT, so recovering
//! from the local log cuts retransmission latency ~10×. We reproduce the
//! intra-site loss case: a handful of receivers at one site miss a
//! packet (their site's secondary logger has it), and recover either
//! from the secondary (distributed) or from the faraway primary
//! (centralized). Latencies come from the scenario's receiver-side
//! [`lbrm_core::trace::MetricsRegistry`] histogram.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig};
use lbrm_core::trace::analyze::{analyze, AnalyzeConfig};
use lbrm_core::trace::CollectorSink;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

use crate::report::{fmt_dur, mean, percentile, Table};

/// Recovery latencies for the affected receivers under one variant.
pub fn run_variant(distributed: bool, seed: u64) -> Vec<Duration> {
    let forensics = Arc::new(CollectorSink::default());
    let mut sc = DisScenario::build_with_sink(
        DisScenarioConfig {
            sites: 10,
            receivers_per_site: 10,
            secondary_loggers: distributed,
            // Paper's RTT picture: distant sites (~80 ms RTT to the
            // source site), fast LANs.
            site_params: SiteParams::distant(),
            source_site_params: SiteParams::distant(),
            // Keep the deliberate reorder-tolerance delay small so the
            // comparison isolates the RTT-to-logger difference the
            // paper measured with ping.
            receiver_nack_delay: Duration::from_millis(5),
            seed,
            ..DisScenarioConfig::default()
        },
        Some(forensics.clone()),
    );
    sc.send_at(SimTime::from_secs(1), "one");
    sc.send_at(SimTime::from_secs(5), "two"); // missed by the victims
    sc.send_at(SimTime::from_secs(9), "three");

    // Five receivers at site 0 are deaf exactly while #2 is delivered —
    // receiver-local loss: everyone else (including the site's secondary
    // logger) has the packet.
    let victims: Vec<_> = sc.receivers[0].iter().copied().take(5).collect();
    sc.world.run_until(SimTime::from_millis(4_900));
    for &v in &victims {
        sc.world.crash(v);
    }
    sc.world.run_until(SimTime::from_millis(5_800));
    for &v in &victims {
        sc.world.revive(v);
    }
    sc.world.run_until(SimTime::from_secs(30));

    // Only the victims lose anything, so the scenario-wide trace
    // histogram is exactly their recovery-latency distribution.
    let latencies = sc.receiver_metrics.recovery_latency().samples();
    assert_eq!(
        latencies.len() as u64,
        sc.receiver_metrics.counter("recovered"),
        "histogram and counter must agree"
    );
    assert_eq!(
        sc.completeness(&[1, 2, 3]),
        1.0,
        "all receivers must end complete"
    );
    // Self-audit: replay the full event stream through the forensic
    // analyzer — every detected gap must close, every repair must be
    // attributable to a known server, and no anomaly may fire.
    let report = analyze(&forensics.take(), &AnalyzeConfig::default());
    assert!(report.is_clean(), "forensics: {:?}", report.anomalies);
    assert_eq!(report.unrecovered, 0, "unrecovered gaps in trace");
    assert!(
        !report.sources.contains_key("unknown"),
        "unattributed repairs: {:?}",
        report.sources
    );
    latencies
}

/// Runs the experiment.
pub fn run() -> String {
    let dist = run_variant(true, 21);
    let central = run_variant(false, 21);

    let mut out = String::new();
    out.push_str(
        "§2.2.2: recovery latency for intra-site loss —\n\
         local secondary logger vs faraway primary\n\n",
    );
    let mut t = Table::new(&["variant", "n", "mean", "p95"]);
    t.row(&[
        "distributed (local logger)".into(),
        format!("{}", dist.len()),
        fmt_dur(mean(&dist)),
        fmt_dur(percentile(&dist, 95.0)),
    ]);
    t.row(&[
        "centralized (primary only)".into(),
        format!("{}", central.len()),
        fmt_dur(mean(&central)),
        fmt_dur(percentile(&central, 95.0)),
    ]);
    out.push_str(&t.render());
    let speedup = mean(&central).as_secs_f64() / mean(&dist).as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "\nLocal recovery is {speedup:.1}x faster (paper: \"an order of magnitude\",\n\
         3-4 ms local RTT vs ~80 ms to a primary 1,500 miles away).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_recovery_is_much_faster() {
        let dist = run_variant(true, 5);
        let central = run_variant(false, 5);
        assert!(!dist.is_empty() && !central.is_empty());
        let speedup = mean(&central).as_secs_f64() / mean(&dist).as_secs_f64();
        assert!(
            speedup > 4.0,
            "speedup only {speedup:.1}x: {:?} vs {:?}",
            mean(&dist),
            mean(&central)
        );
    }
}
