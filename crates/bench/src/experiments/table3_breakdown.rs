//! **Table 3** — secondary logging server response time, and §3's
//! service-rate measurement.
//!
//! The paper measured a 1995 RS/6000 on 10 Mbit Ethernet: 102 µs of
//! server request processing inside 1,582 µs total, and a saturation
//! rate of ~1,587 requests/s. We measure the same code path on our
//! implementation — NACK decode → log lookup → retransmission encode —
//! and model the 1995 network components for the total, so the *shape*
//! (server processing is a small fraction; network dominates; thousands
//! of requests per second) is directly comparable. Criterion benches in
//! `benches/table3_logger.rs` give the rigorous statistics; this binary
//! prints a quick table.

use std::time::{Duration, Instant};

use bytes::Bytes;
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::machine::{Actions, Machine};
use lbrm_core::time::Time;
use lbrm_wire::packet::SeqRange;
use lbrm_wire::{decode, encode, EpochId, GroupId, HostId, Packet, Seq, SourceId};

use crate::report::Table;

const GROUP: GroupId = GroupId(1);
const SRC: SourceId = SourceId(1);

/// Builds a secondary logger holding `n` packets of `payload_len` bytes.
pub fn loaded_logger(n: u32, payload_len: usize) -> Logger {
    let mut cfg = LoggerConfig::secondary(GROUP, SRC, HostId(300), HostId(200), HostId(100));
    // Measure the unicast service path; disable the re-multicast
    // heuristic so repeated requests for one packet stay comparable.
    cfg.remulticast_threshold = usize::MAX;
    let mut logger = Logger::new(cfg);
    let payload = Bytes::from(vec![0x5Au8; payload_len]);
    let mut out = Actions::new();
    for i in 1..=n {
        let pkt = Packet::Data {
            group: GROUP,
            source: SRC,
            seq: Seq(i),
            epoch: EpochId(0),
            payload: payload.clone(),
        };
        logger.on_packet(Time::ZERO, HostId(100), pkt, &mut out);
        out.clear();
    }
    logger
}

/// One full request service: decode the NACK off the wire, run the
/// logger, encode the retransmission — the "Server Request Processing"
/// row of Table 3.
pub fn serve_once(logger: &mut Logger, wire_nack: &[u8], out: &mut Actions) -> usize {
    let pkt = decode(wire_nack).expect("valid nack");
    logger.on_packet(Time::ZERO, HostId(400), pkt, out);
    let mut bytes = 0;
    for a in out.drain(..) {
        if let lbrm_core::machine::Action::Unicast { packet, .. } = a {
            bytes += encode(&packet).expect("encodable").len();
        }
    }
    bytes
}

/// Measures mean service time over `iters` requests (requests rotate
/// through the log so caching effects average out).
pub fn measure_service(iters: u32, log_size: u32, payload_len: usize) -> (Duration, f64) {
    let mut logger = loaded_logger(log_size, payload_len);
    // Pre-encode rotating NACKs.
    let nacks: Vec<Vec<u8>> = (1..=log_size)
        .map(|i| {
            encode(&Packet::Nack {
                group: GROUP,
                source: SRC,
                requester: HostId(400 + u64::from(i % 97)),
                ranges: vec![SeqRange::single(Seq(i))],
            })
            .unwrap()
            .to_vec()
        })
        .collect();
    let mut out = Actions::new();
    let mut sink = 0usize;
    let start = Instant::now();
    for i in 0..iters {
        sink += serve_once(&mut logger, &nacks[(i % log_size) as usize], &mut out);
    }
    let elapsed = start.elapsed();
    assert!(sink > 0);
    let per = elapsed / iters;
    let rate = f64::from(iters) / elapsed.as_secs_f64();
    (per, rate)
}

/// Runs the experiment.
pub fn run() -> String {
    let (per, rate) = measure_service(200_000, 1024, 128);
    let us = per.as_secs_f64() * 1e6;

    // 1995 network model for the paper's total: a 128-byte request and
    // reply on 10 Mbit Ethernet plus interrupt/context-switch costs.
    let ethernet_us = 390.0;
    let os_us = 1090.0;

    let mut out = String::new();
    out.push_str("Table 3: secondary logging server response time (128-byte packet)\n\n");
    let mut t = Table::new(&["component", "paper 1995 (µs)", "this impl (µs)"]);
    t.row(&[
        "Server request processing".into(),
        "102".into(),
        format!("{us:.2} (measured)"),
    ]);
    t.row(&[
        "Ethernet transmission".into(),
        "390".into(),
        format!("{ethernet_us:.0} (modeled, 10 Mbit)"),
    ]);
    t.row(&[
        "Interrupts, ctx switch, misc".into(),
        "1090".into(),
        format!("{os_us:.0} (modeled)"),
    ]);
    t.row(&[
        "Total".into(),
        "1582".into(),
        format!("{:.0}", us + ethernet_us + os_us),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n§3 service rate: paper ≈ 1,587 requests/s (630 µs each);\n\
         this implementation services {rate:.0} requests/s in-process.\n\
         Shape: server processing is a small fraction of end-to-end cost;\n\
         loss detection (the 250 ms heartbeat) and the network dominate\n\
         recovery latency, so logger load is not the bottleneck.\n"
    ));
    out.push_str("\n(100 nearly simultaneous requests for one packet are processed in\n");
    let (per100, _) = measure_service(100, 1024, 128);
    out.push_str(&format!(
        " {:.3} ms — the paper's figure was 63 ms.)\n",
        per100.as_secs_f64() * 1e3 * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_path_works_and_is_fast() {
        let (per, rate) = measure_service(10_000, 256, 128);
        // Our hardware must beat the 1995 total by a wide margin.
        assert!(per < Duration::from_micros(200), "{per:?}");
        assert!(rate > 5_000.0, "{rate}");
    }

    #[test]
    fn serve_produces_retransmission_bytes() {
        let mut logger = loaded_logger(10, 128);
        let nack = encode(&Packet::Nack {
            group: GROUP,
            source: SRC,
            requester: HostId(1),
            ranges: vec![SeqRange::single(Seq(5))],
        })
        .unwrap();
        let mut out = Actions::new();
        let bytes = serve_once(&mut logger, &nack, &mut out);
        assert!(bytes > 128, "retransmission should carry the payload");
    }

    #[test]
    fn report_renders() {
        // Use a light run for the test.
        let (per, rate) = measure_service(1000, 64, 128);
        assert!(per > Duration::ZERO && rate > 0.0);
    }
}
