//! **§2.3.3** — the `N_sl` estimator under churn: "the algorithm
//! dynamically adjusts as secondary loggers enter and leave the group."
//!
//! The true logger population steps 100 → 400 → 150; each Acker
//! Selection round doubles as a probe and the EWMA (α = 1/8) tracks the
//! change within a few tens of rounds, with small steady-state
//! variation.

use lbrm_core::estimate::NslEstimator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::report::Table;

/// One selection round: `n` loggers volunteer with probability `p`.
fn respond(n: u64, p: f64, rng: &mut SmallRng) -> usize {
    (0..n).filter(|_| rng.random_bool(p.min(1.0))).count()
}

/// Runs the churn trajectory; returns (round, true N, estimate) samples.
pub fn trajectory(k: usize, seed: u64) -> Vec<(u32, u64, f64)> {
    let mut est = NslEstimator::new(100.0, 0.125);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    for round in 0..240u32 {
        let truth: u64 = match round {
            0..=79 => 100,
            80..=159 => 400,
            _ => 150,
        };
        let p = est.p_ack_for(k);
        let k_prime = respond(truth, p, &mut rng);
        est.update(k_prime, p);
        if round % 10 == 9 {
            samples.push((round + 1, truth, est.estimate()));
        }
    }
    samples
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str(
        "§2.3.3: N_sl estimate tracking logger churn (k = 15, α = 1/8)\n\
         true population: 100 (rounds 1-80), 400 (81-160), 150 (161-240)\n\n",
    );
    let mut t = Table::new(&["round", "true N_sl", "estimate", "error"]);
    for (round, truth, est) in trajectory(15, 77) {
        t.row(&[
            format!("{round}"),
            format!("{truth}"),
            format!("{est:.0}"),
            format!("{:+.0}%", 100.0 * (est - truth as f64) / truth as f64),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_converges_after_each_step() {
        let samples = trajectory(15, 3);
        // End of each regime: estimate within 30% of truth.
        for target_round in [80u32, 160, 240] {
            let (_, truth, est) = *samples.iter().find(|(r, _, _)| *r == target_round).unwrap();
            let rel = (est - truth as f64).abs() / truth as f64;
            assert!(rel < 0.3, "round {target_round}: est {est} vs {truth}");
        }
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("400"));
    }
}
