//! **§2.3 / Figure 8 / §2.3.4** — statistical acknowledgement prevents
//! NACK implosion after loss on the sender's outgoing tail circuit.
//!
//! A data packet dies on the source site's tail-out, so *every* site
//! misses it. With statistical acking, missing Designated-Acker ACKs at
//! `t_wait` trigger an immediate re-multicast that repairs the whole
//! group before anyone NACKs; without it, every site's secondary logger
//! independently requests a retransmission from the primary.

use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::{DisScenario, DisScenarioConfig, MachineActor};
use lbrm_core::machine::Notice;
use lbrm_core::sender::Sender;
use lbrm_core::statack::StatAckConfig;
use lbrm_sim::loss::LossModel;
use lbrm_sim::stats::SegmentClass;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::SiteParams;

use crate::report::Table;

/// Outcome of one run.
#[derive(Debug, Clone)]
pub struct StatAckOutcome {
    /// NACKs that crossed the WAN to the primary.
    pub wan_nacks: u64,
    /// Sender-issued statistical re-multicasts.
    pub remulticasts: u64,
    /// Designated Ackers in the active epoch.
    pub ackers: usize,
    /// Receiver completeness for all three packets.
    pub completeness: f64,
}

/// Runs the tail-out-loss scenario with or without statistical acking.
pub fn run_variant(sites: usize, statack: bool, seed: u64) -> StatAckOutcome {
    // Packet #2 (t = 5 s) dies on the source's outgoing tail circuit.
    let source_site = SiteParams {
        tail_out_loss: LossModel::outage(SimTime::from_secs(5), Duration::from_millis(50)),
        ..SiteParams::distant()
    };
    let mut sc = DisScenario::build(DisScenarioConfig {
        sites,
        receivers_per_site: 2,
        secondary_loggers: true,
        statack: statack.then(|| StatAckConfig {
            k: 10,
            nsl_initial: sites as f64,
            epoch_interval: Duration::from_secs(300),
            ..StatAckConfig::default()
        }),
        source_site_params: source_site,
        site_params: SiteParams::distant(),
        site_params_for: None::<Arc<dyn Fn(usize) -> SiteParams>>,
        seed,
        ..DisScenarioConfig::default()
    });
    sc.send_at(SimTime::from_secs(2), "one");
    sc.send_at(SimTime::from_secs(5), "two"); // lost leaving the source
    sc.send_at(SimTime::from_secs(9), "three");
    sc.world.run_until(SimTime::from_secs(30));

    let sender = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
    let remulticasts = sender
        .notices
        .iter()
        .filter(|(_, n)| matches!(n, Notice::StatAckRemulticast { .. }))
        .count() as u64;
    let ackers = sender
        .notices
        .iter()
        .rev()
        .find_map(|(_, n)| match n {
            Notice::EpochStarted { ackers, .. } => Some(*ackers),
            _ => None,
        })
        .unwrap_or(0);
    StatAckOutcome {
        wan_nacks: sc
            .world
            .stats()
            .class_kind(SegmentClass::Wan, "nack")
            .carried,
        remulticasts,
        ackers,
        completeness: sc.completeness(&[1, 2, 3]),
    }
}

/// Runs the experiment.
pub fn run() -> String {
    let sites = 50;
    // Independent seeded runs — sweep both variants in parallel.
    let mut variants =
        crate::parallel::par_map(vec![true, false], |statack| run_variant(sites, statack, 31));
    let without = variants.pop().expect("two variants");
    let with = variants.pop().expect("two variants");

    let mut out = String::new();
    out.push_str(&format!(
        "§2.3: loss of one packet on the sender's tail circuit, {sites} sites\n\n"
    ));
    let mut t = Table::new(&["metric", "statistical ack ON", "OFF"]);
    t.row(&[
        "Designated Ackers".into(),
        format!("{}", with.ackers),
        "-".into(),
    ]);
    t.row(&[
        "sender re-multicasts".into(),
        format!("{}", with.remulticasts),
        format!("{}", without.remulticasts),
    ]);
    t.row(&[
        "NACKs crossing the WAN".into(),
        format!("{}", with.wan_nacks),
        format!("{}", without.wan_nacks),
    ]);
    t.row(&[
        "completeness".into(),
        format!("{:.3}", with.completeness),
        format!("{:.3}", without.completeness),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nShape (paper §2.3.4): widespread loss is detected within one\n\
         t_wait of the transmission and repaired by a single re-multicast,\n\
         preventing the per-site NACK implosion the OFF column shows.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statack_suppresses_nack_implosion() {
        let with = run_variant(12, true, 3);
        let without = run_variant(12, false, 3);
        assert_eq!(with.completeness, 1.0);
        assert_eq!(without.completeness, 1.0);
        assert!(with.remulticasts >= 1, "{with:?}");
        assert!(with.ackers > 0, "{with:?}");
        // Without statack every site NACKs the primary; with it, almost
        // nobody does.
        assert!(without.wan_nacks >= 10, "{without:?}");
        assert!(
            with.wan_nacks * 4 <= without.wan_nacks,
            "with {} vs without {}",
            with.wan_nacks,
            without.wan_nacks
        );
    }
}
