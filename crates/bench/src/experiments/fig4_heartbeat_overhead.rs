//! **Figure 4** — Fixed and variable heartbeat overhead rates as a
//! function of the inter-data-packet interval `dt`
//! (`h_min = 0.25 s`, `h_max = 32 s`, backoff = 2).
//!
//! Closed-form schedule counts, cross-checked against packets actually
//! emitted by a [`Sender`] running in the simulator.

use bytes::Bytes;
use lbrm::harness::MachineActor;
use lbrm_core::heartbeat::{analysis, HeartbeatConfig};
use lbrm_core::sender::{Sender, SenderConfig};
use lbrm_sim::stats::SegmentClass;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::{SiteParams, TopologyBuilder};
use lbrm_sim::world::World;
use lbrm_wire::{GroupId, SourceId};

use crate::report::Table;

/// Counts heartbeats a simulated sender emits with data every `dt`
/// seconds over `n_intervals` intervals; returns the per-interval rate.
pub fn simulated_rate(dt: f64, cfg: HeartbeatConfig, fixed: bool) -> f64 {
    let mut b = TopologyBuilder::new();
    let site = b.site(SiteParams::default());
    let src = b.host(site);
    let log = b.host(site);
    let rx = b.host(site);
    let mut world = World::new(b.build(), 4);
    let mut sender_cfg = SenderConfig::new(GroupId(1), SourceId(1), src, log);
    sender_cfg.heartbeat = cfg;
    sender_cfg.scheme = if fixed {
        lbrm_core::sender::HeartbeatScheme::Fixed
    } else {
        lbrm_core::sender::HeartbeatScheme::Variable
    };
    let mut actor = MachineActor::new(Sender::new(sender_cfg), vec![]);
    let n_intervals = 8u64.max((200.0 / dt) as u64).min(200);
    for i in 0..=n_intervals {
        let at = SimTime::from_secs_f64(1.0 + i as f64 * dt);
        actor.schedule(at, |s: &mut Sender, now, out| {
            s.send(now, Bytes::from_static(b"x"), out);
        });
    }
    world.add_actor(src, actor);
    // A silent member so multicast traffic crosses the (lossless) LAN and
    // is counted; the logger host absorbs unicast handoffs.
    world.join(rx, GroupId(1));
    world.join(log, GroupId(1));
    world.run_until(SimTime::from_secs_f64(1.0 + n_intervals as f64 * dt));
    let heartbeats = world
        .stats()
        .class_kind(SegmentClass::Lan, "heartbeat")
        .carried as f64;
    // Each multicast reaches two LAN members → two LAN crossings per send.
    heartbeats / 2.0 / (n_intervals as f64 * dt)
}

/// Runs the experiment and renders the Figure-4 series.
pub fn run() -> String {
    let cfg = HeartbeatConfig::default();
    let mut out = String::new();
    out.push_str("Figure 4: heartbeat overhead rate vs inter-data interval dt\n");
    out.push_str("(h_min = 0.25 s, h_max = 32 s, backoff = 2)\n\n");
    let mut t = Table::new(&[
        "dt (s)",
        "fixed (pkt/s)",
        "variable (pkt/s)",
        "sim variable (pkt/s)",
    ]);
    let dts = vec![
        0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 1000.0,
    ];
    // Each dt point is an independent simulation; sweep them in parallel
    // and render rows serially so the report is byte-identical either way.
    let rows = crate::parallel::par_map(dts, |dt| {
        let fixed = analysis::fixed_rate(dt, 0.25);
        let variable = analysis::variable_rate(dt, &cfg);
        let sim = simulated_rate(dt, cfg, false);
        (dt, fixed, variable, sim)
    });
    for (dt, fixed, variable, sim) in rows {
        t.row(&[
            format!("{dt}"),
            format!("{fixed:.4}"),
            format!("{variable:.4}"),
            format!("{sim:.4}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nAsymptotes: fixed → 1/h_min = {:.3}/s, variable → 1/h_max = {:.5}/s\n",
        4.0,
        1.0 / 32.0
    ));
    out.push_str("Paper shape: fixed stays ≈4 pkt/s as dt grows; variable falls toward 1/h_max.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_agrees_with_analysis_at_dt_120() {
        let cfg = HeartbeatConfig::default();
        let analytic = analysis::variable_rate(120.0, &cfg);
        let sim = simulated_rate(120.0, cfg, false);
        let rel = (sim - analytic).abs() / analytic;
        assert!(rel < 0.15, "sim {sim} vs analytic {analytic}");
    }

    #[test]
    fn fixed_sim_rate_near_4_per_sec() {
        let cfg = HeartbeatConfig::default();
        let sim = simulated_rate(60.0, cfg, true);
        assert!((sim - 4.0).abs() < 0.2, "{sim}");
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Figure 4"));
        assert!(r.contains("120"));
    }
}
