//! **Table 2** — accuracy of the `N_sl` estimate as the number of
//! probes increases: the standard deviation of the averaged estimate is
//! `σ₁/√n`. Theory rows plus a Monte-Carlo cross-check with binomial
//! responders.

use lbrm_core::estimate::{multi_probe_stddev, single_probe_stddev};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::report::Table;

/// Monte-Carlo standard deviation of the `n_probes`-averaged estimate
/// over `trials` trials, with `n` responders at probability `p`.
pub fn monte_carlo_stddev(n: u64, p: f64, n_probes: u32, trials: u32, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    for _ in 0..trials {
        let mut acc = 0.0;
        for _ in 0..n_probes {
            let responses = (0..n).filter(|_| rng.random_bool(p)).count() as f64;
            acc += responses / p;
        }
        let est = acc / f64::from(n_probes);
        sum += est;
        sum2 += est * est;
    }
    let t = f64::from(trials);
    (sum2 / t - (sum / t).powi(2)).max(0.0).sqrt()
}

/// Runs the experiment.
pub fn run() -> String {
    let n = 500.0;
    let p = 0.04; // ≈ 20 expected ACKs from 500 loggers
    let s1 = single_probe_stddev(n, p);
    let mut out = String::new();
    out.push_str("Table 2: accuracy of N_sl estimation vs probe count\n");
    out.push_str(&format!("(N = {n}, p_ack = {p}, σ₁ = {s1:.2})\n\n"));
    let mut t = Table::new(&["probes", "theory σ/σ₁", "monte-carlo σ/σ₁", "paper σ/σ₁"]);
    let paper = [1.0, 0.707, 0.577, 0.5, 0.447];
    for probes in 1..=5u32 {
        let theory = multi_probe_stddev(n, p, probes) / s1;
        let mc = monte_carlo_stddev(n as u64, p, probes, 20_000, 7 + u64::from(probes)) / s1;
        t.row(&[
            format!("{probes}"),
            format!("{theory:.3}"),
            format!("{mc:.3}"),
            format!("{:.3}", paper[(probes - 1) as usize]),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monte_carlo_matches_theory() {
        let n = 500.0;
        let p = 0.04;
        let s1 = single_probe_stddev(n, p);
        for probes in [1u32, 4] {
            let mc = monte_carlo_stddev(500, p, probes, 20_000, 3);
            let theory = multi_probe_stddev(n, p, probes);
            let rel = (mc - theory).abs() / theory;
            assert!(rel < 0.05, "probes {probes}: mc {mc} theory {theory}");
        }
        let _ = s1;
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Table 2"));
    }
}
