//! **§2.1.2 DIS scenario** — the headline packet-budget computation:
//! 100,000 dynamic entities and 100,000 terrain entities.
//!
//! Fixed heartbeats at the ¼-second freshness requirement cost 400,000
//! packets/s for terrain alone — 4/5 of the whole simulation's traffic;
//! the variable heartbeat cuts terrain overhead by ~53× at the observed
//! once-per-two-minutes terrain update rate. The analytic budget is
//! cross-checked by simulating a sample of terrain entities and scaling.

use bytes::Bytes;
use lbrm::harness::MachineActor;
use lbrm_core::heartbeat::{analysis, HeartbeatConfig};
use lbrm_core::sender::{HeartbeatScheme, Sender, SenderConfig};
use lbrm_sim::stats::SegmentClass;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::{SiteParams, TopologyBuilder};
use lbrm_sim::world::World;
use lbrm_wire::{GroupId, HostId, SourceId};

use crate::report::Table;

/// Number of entities in the paper's STOW-scale scenario.
pub const DYNAMIC_ENTITIES: u64 = 100_000;
/// Terrain entities.
pub const TERRAIN_ENTITIES: u64 = 100_000;
/// Mean interval between terrain updates (s).
pub const TERRAIN_DT: f64 = 120.0;
/// Dynamic entities send one packet per second on average.
pub const DYNAMIC_RATE: f64 = 1.0;

/// Simulates `n` terrain entities for `secs` seconds and returns the
/// measured per-entity heartbeat rate.
pub fn sampled_rate(n: u64, secs: u64, scheme: HeartbeatScheme, seed: u64) -> f64 {
    let mut b = TopologyBuilder::new();
    let site = b.site(SiteParams::default());
    let hosts: Vec<HostId> = (0..n).map(|_| b.host(site)).collect();
    let sink = b.host(site);
    let mut world = World::new(b.build(), seed);
    for (i, &h) in hosts.iter().enumerate() {
        let group = GroupId(i as u32 + 1);
        let mut cfg = SenderConfig::new(group, SourceId(i as u64), h, sink);
        cfg.scheme = scheme;
        let mut actor = MachineActor::new(Sender::new(cfg), vec![]);
        // Each entity updates once, at a staggered time, then idles —
        // the terrain pattern (updates every ~2 min; we observe one
        // inter-update window per entity).
        let at = SimTime::from_millis(500 + (i as u64 * 37) % 1000);
        actor.schedule(at, |s: &mut Sender, now, out| {
            s.send(now, Bytes::from_static(b"terrain"), out);
        });
        world.add_actor(h, actor);
        world.join(sink, group);
    }
    world.run_until(SimTime::from_secs(secs));
    let heartbeats = world
        .stats()
        .class_kind(SegmentClass::Lan, "heartbeat")
        .carried as f64;
    heartbeats / n as f64 / (secs as f64 - 1.0)
}

/// Runs the experiment.
pub fn run() -> String {
    let cfg = HeartbeatConfig::default();
    let fixed_rate = analysis::fixed_rate(TERRAIN_DT, 0.25);
    let var_rate = analysis::variable_rate(TERRAIN_DT, &cfg);
    let fixed_total = fixed_rate * TERRAIN_ENTITIES as f64;
    let var_total = var_rate * TERRAIN_ENTITIES as f64;
    let dynamic_total = DYNAMIC_RATE * DYNAMIC_ENTITIES as f64;

    let mut out = String::new();
    out.push_str(
        "§2.1.2 DIS scenario: 100,000 dynamic + 100,000 terrain entities\n\
         (terrain updates every ~120 s, ¼ s freshness requirement)\n\n",
    );
    let mut t = Table::new(&["traffic class", "pkt/s", "share of total"]);
    let total_fixed = fixed_total + dynamic_total;
    t.row(&[
        "dynamic entities (1 pkt/s each)".into(),
        format!("{dynamic_total:.0}"),
        format!("{:.0}%", 100.0 * dynamic_total / total_fixed),
    ]);
    t.row(&[
        "terrain, FIXED heartbeat".into(),
        format!("{fixed_total:.0}"),
        format!("{:.0}%", 100.0 * fixed_total / total_fixed),
    ]);
    t.row(&[
        "terrain, VARIABLE heartbeat".into(),
        format!("{var_total:.0}"),
        format!(
            "{:.1}% (of fixed-scheme total)",
            100.0 * var_total / total_fixed
        ),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPaper: fixed heartbeats are 400,000 pkt/s — 4/5 of the 500,000\n\
         pkt/s simulation; the variable scheme cuts terrain heartbeats by\n\
         {:.1}x to ~{:.0} pkt/s.\n",
        fixed_total / var_total,
        var_total
    ));

    // Simulation cross-check on a sample of entities over one window.
    // The two schemes are independent seeded runs — sweep in parallel.
    let samples = crate::parallel::par_map(
        vec![HeartbeatScheme::Fixed, HeartbeatScheme::Variable],
        |scheme| sampled_rate(40, 120, scheme, 5),
    );
    let (sample_fixed, sample_var) = (samples[0], samples[1]);
    out.push_str(&format!(
        "\nSimulated sample (40 entities, 120 s window): fixed {:.3} pkt/s/entity,\n\
         variable {:.3} pkt/s/entity → scaled to 100k entities: {:.0} vs {:.0} pkt/s.\n",
        sample_fixed,
        sample_var,
        sample_fixed * TERRAIN_ENTITIES as f64,
        sample_var * TERRAIN_ENTITIES as f64,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_budget_matches_paper() {
        let cfg = HeartbeatConfig::default();
        let fixed_total = analysis::fixed_rate(TERRAIN_DT, 0.25) * TERRAIN_ENTITIES as f64;
        // Paper: ~400,000 pkt/s for terrain under fixed heartbeats.
        assert!((fixed_total - 400_000.0).abs() < 2_000.0, "{fixed_total}");
        let var_total = analysis::variable_rate(TERRAIN_DT, &cfg) * TERRAIN_ENTITIES as f64;
        assert!(var_total < 10_000.0, "{var_total}");
    }

    #[test]
    fn sampled_rates_track_analysis() {
        let fixed = sampled_rate(10, 120, HeartbeatScheme::Fixed, 1);
        assert!((fixed - 4.0).abs() < 0.5, "fixed sample {fixed}");
        let var = sampled_rate(10, 120, HeartbeatScheme::Variable, 1);
        assert!(var < 0.2, "variable sample {var}");
    }
}
