//! A minimal, dependency-free micro-benchmark harness.
//!
//! The crates.io `criterion` harness is unavailable offline, so the
//! `benches/` targets (which set `harness = false`) drive this instead:
//! warm-up, automatic iteration-count calibration, several timed
//! samples, and a median-of-samples report. The API mirrors the subset
//! of criterion the benches used (`iter`, `iter_batched_ref`) so the
//! bench bodies read the same.
//!
//! Output format (one line per benchmark):
//!
//! ```text
//! codec/encode_data_128B          142.3 ns/iter    (7.03 M iter/s)
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Number of timed samples; the median is reported.
const SAMPLES: usize = 7;
/// Warm-up time before calibration.
const WARMUP: Duration = Duration::from_millis(30);

/// One benchmark's measured result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

impl Measurement {
    /// Iterations per second implied by the median.
    pub fn iters_per_sec(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1e9 / self.ns_per_iter
        } else {
            f64::INFINITY
        }
    }
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) or
/// [`iter_batched_ref`](Bencher::iter_batched_ref) exactly once.
pub struct Bencher {
    result: Option<Measurement>,
}

impl Bencher {
    /// Times `routine` in a tight loop.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            black_box(routine());
        }
        // Calibrate: how many iterations fill one sample?
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= SAMPLE_TARGET / 4 || n >= (1 << 30) {
                let scale = SAMPLE_TARGET.as_secs_f64() / dt.as_secs_f64().max(1e-9);
                n = ((n as f64 * scale).ceil() as u64).max(1);
                break;
            }
            n *= 8;
        }
        // Timed samples.
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / n as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Measurement {
            ns_per_iter: samples[samples.len() / 2],
        });
    }

    /// Times `routine` against fresh state from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched_ref<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> R,
    ) {
        // Warm up.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            let mut s = setup();
            black_box(routine(&mut s));
        }
        // Calibrate iterations per sample using routine-only time.
        let mut n: u64 = 1;
        loop {
            let mut states: Vec<S> = (0..n).map(|_| setup()).collect();
            let t = Instant::now();
            for s in states.iter_mut() {
                black_box(routine(s));
            }
            let dt = t.elapsed();
            if dt >= SAMPLE_TARGET / 4 || n >= (1 << 22) {
                let scale = SAMPLE_TARGET.as_secs_f64() / dt.as_secs_f64().max(1e-9);
                n = ((n as f64 * scale).ceil() as u64).clamp(1, 1 << 22);
                break;
            }
            n *= 8;
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut states: Vec<S> = (0..n).map(|_| setup()).collect();
            let t = Instant::now();
            for s in states.iter_mut() {
                black_box(routine(s));
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / n as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Measurement {
            ns_per_iter: samples[samples.len() / 2],
        });
    }
}

/// Runs one named benchmark and prints its result line.
pub fn bench_function(name: &str, f: impl FnOnce(&mut Bencher)) -> Measurement {
    let mut b = Bencher { result: None };
    f(&mut b);
    let m = b.result.unwrap_or(Measurement {
        ns_per_iter: f64::NAN,
    });
    print_line(name, m, None);
    m
}

/// Runs one named benchmark with a throughput annotation (elements per
/// iteration) and prints its result line.
pub fn bench_function_throughput(
    name: &str,
    elements: u64,
    f: impl FnOnce(&mut Bencher),
) -> Measurement {
    let mut b = Bencher { result: None };
    f(&mut b);
    let m = b.result.unwrap_or(Measurement {
        ns_per_iter: f64::NAN,
    });
    print_line(name, m, Some(elements));
    m
}

fn print_line(name: &str, m: Measurement, elements: Option<u64>) {
    let rate = match elements {
        Some(e) => m.iters_per_sec() * e as f64,
        None => m.iters_per_sec(),
    };
    let unit = if elements.is_some() {
        "elem/s"
    } else {
        "iter/s"
    };
    println!(
        "{name:<44} {:>12} ns/iter  ({} {unit})",
        format_sig(m.ns_per_iter),
        format_rate(rate)
    );
}

fn format_sig(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

fn format_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench_function("selftest_noop_loop", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        assert!(m.ns_per_iter.is_finite());
        assert!(m.ns_per_iter >= 0.0);
    }

    #[test]
    fn batched_excludes_setup() {
        let m = bench_function("selftest_batched", |b| {
            b.iter_batched_ref(
                || vec![0u8; 16],
                |v| v.iter().map(|&b| b as u64).sum::<u64>(),
            )
        });
        assert!(m.ns_per_iter.is_finite());
    }
}
