//! `reproduce` fans its experiment sections out with
//! [`lbrm_bench::parallel::run_sections`]; the rendered report must stay
//! byte-identical to a serial run — same bodies, same order.

use lbrm_bench::experiments as e;
use lbrm_bench::parallel::{run_sections, Section};

#[test]
fn parallel_sections_match_serial_bytes() {
    let sections: Vec<Section> = vec![
        ("Table 1", e::table1_backoff::run),
        ("§2.1.1 burst detection bound", e::exp_burst_detection::run),
        (
            "§2.3 statistical acknowledgement",
            e::exp_statistical_ack::run,
        ),
    ];
    let serial: Vec<(&'static str, String)> =
        sections.iter().map(|&(name, f)| (name, f())).collect();
    let parallel = run_sections(sections);
    assert_eq!(parallel, serial, "fan-out must not change report bytes");
}
