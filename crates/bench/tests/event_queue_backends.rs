//! Whole-experiment differential across event-queue backends.
//!
//! Experiment binaries build their worlds through [`lbrm_sim::World::new`],
//! which resolves the backend from the `LBRM_SIM_QUEUE` environment
//! variable — so flipping that variable re-runs an *unmodified*
//! experiment on the heap reference backend. The rendered output (every
//! table cell, every counter) must be byte-identical to the wheel's.
//!
//! This file holds exactly one test: it mutates process-global
//! environment, so it must not share a process with concurrently running
//! tests (each integration-test file is its own binary, and a single
//! `#[test]` keeps the harness from interleaving env states).

use lbrm_bench::experiments as e;
use lbrm_bench::parallel::Section;

#[test]
fn experiments_render_identically_under_wheel_and_heap() {
    let experiments: Vec<Section> = vec![
        ("table1_backoff", e::table1_backoff::run),
        ("exp_burst_detection", e::exp_burst_detection::run),
        ("exp_statistical_ack", e::exp_statistical_ack::run),
    ];
    for (name, run) in experiments {
        std::env::set_var("LBRM_SIM_QUEUE", "heap");
        let heap = run();
        std::env::set_var("LBRM_SIM_QUEUE", "wheel");
        let wheel = run();
        std::env::remove_var("LBRM_SIM_QUEUE");
        let default = run();
        assert!(!heap.is_empty(), "{name}: experiment must render output");
        assert_eq!(wheel, heap, "{name}: wheel must replay the heap exactly");
        assert_eq!(default, wheel, "{name}: unset env means wheel");
    }
}
