//! CLI contract tests for the `trace_doctor` binary: `--mem-budget`
//! size parsing must reject malformed values with a usage error (not
//! silently misread a budget), and `--assert-clean` must turn protocol
//! anomalies into a nonzero exit code for CI.

use std::io::Write as _;
use std::process::{Command, Output};

use lbrm_bench::doctor::analyze_jsonl;
use lbrm_core::trace::analyze::AnalyzeConfig;
use lbrm_core::trace::ProtocolEvent;
use lbrm_wire::{EpochId, HostId, Seq};

fn doctor(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace_doctor"))
        .args(args)
        .output()
        .expect("spawn trace_doctor")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn write_trace(name: &str, lines: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "lbrm-doctor-cli-{}-{name}.jsonl",
        std::process::id()
    ));
    let mut f = std::fs::File::create(&path).expect("create temp trace");
    f.write_all(lines.as_bytes()).expect("write temp trace");
    path
}

/// A minimal anomaly-free capture: one data packet, no open recoveries.
fn clean_trace() -> String {
    ProtocolEvent::DataSent {
        seq: Seq(1),
        epoch: EpochId(0),
    }
    .to_json(1_000_000, HostId(1))
        + "\n"
}

/// A capture with a gap that is never repaired: the analyzer must close
/// it as an `unrecovered_gap` anomaly at end-of-run.
fn unclean_trace() -> String {
    let src = HostId(1);
    let rx = HostId(2);
    let mut s = String::new();
    for seq in [1u32, 3] {
        s += &ProtocolEvent::DataSent {
            seq: Seq(seq),
            epoch: EpochId(0),
        }
        .to_json(u64::from(seq) * 1_000_000, src);
        s.push('\n');
    }
    s += &ProtocolEvent::GapDetected {
        first: Seq(2),
        last: Seq(2),
    }
    .to_json(4_000_000, rx);
    s.push('\n');
    s
}

#[test]
fn malformed_mem_budget_is_a_usage_error() {
    for bad in ["12T", "1.5M", "K", "12XB"] {
        let out = doctor(&["--mem-budget", bad]);
        assert!(!out.status.success(), "--mem-budget {bad} must be rejected");
        let err = stderr(&out);
        assert!(
            err.contains("--mem-budget"),
            "error must name the flag: {err}"
        );
    }
    let out = doctor(&["--mem-budget", "12T"]);
    assert!(stderr(&out).contains("unknown size suffix"));
}

#[test]
fn mem_budget_without_value_is_a_usage_error() {
    let out = doctor(&["--mem-budget"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("needs a value"), "{}", stderr(&out));
}

#[test]
fn well_formed_mem_budget_suffixes_are_accepted() {
    let path = write_trace("budget-ok", &clean_trace());
    // A generous budget in every suffix form: all must parse and pass.
    for budget in ["1073741824", "1048576K", "1024M", "1G"] {
        let out = doctor(&[path.to_str().unwrap(), "--stream", "--mem-budget", budget]);
        assert!(
            out.status.success(),
            "--mem-budget {budget} should parse and pass: {}",
            stderr(&out)
        );
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn assert_clean_exit_codes_follow_the_report() {
    let clean = clean_trace();
    let unclean = unclean_trace();
    // Anchor the fixtures to the analyzer before trusting exit codes.
    assert!(analyze_jsonl(&clean, &AnalyzeConfig::default())
        .report
        .is_clean());
    assert!(!analyze_jsonl(&unclean, &AnalyzeConfig::default())
        .report
        .is_clean());

    let clean_path = write_trace("clean", &clean);
    let unclean_path = write_trace("unclean", &unclean);

    let out = doctor(&[clean_path.to_str().unwrap(), "--assert-clean", "--json"]);
    assert!(
        out.status.success(),
        "clean trace must exit 0: {}",
        stderr(&out)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"clean\":true"));

    let out = doctor(&[unclean_path.to_str().unwrap(), "--assert-clean"]);
    assert!(!out.status.success(), "anomalies must fail --assert-clean");
    assert!(
        stderr(&out).contains("--assert-clean failed"),
        "{}",
        stderr(&out)
    );

    // Without the flag the same anomalies only get reported.
    let out = doctor(&[unclean_path.to_str().unwrap()]);
    assert!(out.status.success(), "reporting mode must exit 0");

    let _ = std::fs::remove_file(clean_path);
    let _ = std::fs::remove_file(unclean_path);
}
