//! Delta-algebra property tests for the live doctor (ISSUE satellite):
//! on randomized seeded lossy-WAN runs, the fold of every incremental
//! [`ReportDelta`] plus the terminal delta must equal the one-shot
//! batch `analyze` report field-for-field, whatever tick boundaries the
//! stream was cut at — and the admin surface's `/anomalies/tail` must
//! list anomalies in exactly the batch report's order.

use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

use lbrm::harness::DisScenarioConfig;
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_bench::doctor::run_scenario;
use lbrm_core::trace::analyze::{analyze, AnalyzeConfig, TraceRecord};
use lbrm_core::trace::{
    fold_deltas, AdminServer, CollectorSink, DeltaTracker, DoctorConfig, DoctorSidecar,
    OnlineAnalyzer, OnlineConfig, ReportBasis, TraceSink,
};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized lossy-WAN scenario, losses on both tail directions.
fn random_config(rng: &mut u64) -> DisScenarioConfig {
    DisScenarioConfig {
        sites: 3 + (splitmix64(rng) % 3) as usize,
        receivers_per_site: 2 + (splitmix64(rng) % 3) as usize,
        site_params: SiteParams {
            tail_in_loss: LossModel::rate(0.02 + (splitmix64(rng) % 8) as f64 * 0.01),
            tail_out_loss: LossModel::rate((splitmix64(rng) % 4) as f64 * 0.01),
            ..SiteParams::distant()
        },
        receiver_nack_delay: Duration::from_millis(5),
        seed: splitmix64(rng),
        ..DisScenarioConfig::default()
    }
}

/// Collects the trace of one seeded run.
fn capture(config: DisScenarioConfig, until: SimTime) -> Vec<TraceRecord> {
    let collector = Arc::new(CollectorSink::default());
    let _ = run_scenario(
        config,
        15,
        until,
        &AnalyzeConfig::default(),
        Some(collector.clone() as Arc<dyn TraceSink>),
    );
    collector.take()
}

/// The pinned delta semantics: `fold(deltas) + terminal == batch`,
/// field for field, for arbitrary tick boundaries.
#[test]
fn fold_of_deltas_equals_batch_analyze_on_seeded_wan_runs() {
    let mut rng = 0xD0C7_0B07_u64;
    for case in 0..4 {
        // Odd cases cut the run short so open timelines and anomalies
        // cross the terminal delta, not just clean recoveries.
        let until = if case % 2 == 0 {
            SimTime::from_secs(30)
        } else {
            SimTime::from_millis(2_600)
        };
        let records = capture(random_config(&mut rng), until);
        assert!(!records.is_empty(), "case {case}: no trace");
        let batch = analyze(&records, &AnalyzeConfig::default());

        let mut analyzer = OnlineAnalyzer::new(OnlineConfig::default());
        let mut tracker = DeltaTracker::new();
        let mut deltas = Vec::new();
        let mut next_tick = 1 + (splitmix64(&mut rng) % 40) as usize;
        for (i, r) in records.iter().enumerate() {
            analyzer.push_record(r);
            if i + 1 == next_tick {
                deltas.push(tracker.delta_from(&analyzer, 0));
                next_tick += 1 + (splitmix64(&mut rng) % 40) as usize;
            }
        }
        let n = analyzer.records();
        let end = analyzer.end_nanos();
        let report = analyzer.finish();
        deltas.push(tracker.terminal(&report, n, end, 0));

        let fold = fold_deltas(&deltas);
        assert_eq!(
            fold.basis,
            ReportBasis::of_report(&batch),
            "case {case}: folded deltas diverge from batch analyze"
        );
        assert_eq!(fold.records, n, "case {case}: record count");
        // And the terminal fold agrees with the streaming finish too.
        assert_eq!(fold.basis, ReportBasis::of_report(&report), "case {case}");
    }
}

/// Every pre-terminal delta must be committed-only: no unrecovered
/// verdicts before end-of-stream, and anomaly suffixes concatenate to
/// exactly the batch anomaly list (order preserved).
#[test]
fn delta_anomaly_suffixes_concatenate_in_batch_order() {
    let mut rng = 0xFEED_FACE_u64;
    let records = capture(random_config(&mut rng), SimTime::from_millis(2_400));
    let batch = analyze(&records, &AnalyzeConfig::default());

    let mut analyzer = OnlineAnalyzer::new(OnlineConfig::default());
    let mut tracker = DeltaTracker::new();
    let mut concatenated = Vec::new();
    for (i, r) in records.iter().enumerate() {
        analyzer.push_record(r);
        if i % 17 == 0 {
            let d = tracker.delta_from(&analyzer, 0);
            assert_eq!(d.unrecovered, 0, "unrecovered verdict before stream end");
            concatenated.extend(d.new_anomalies);
        }
    }
    let n = analyzer.records();
    let end = analyzer.end_nanos();
    let report = analyzer.finish();
    let terminal = tracker.terminal(&report, n, end, 0);
    assert!(terminal.terminal);
    concatenated.extend(terminal.new_anomalies);
    assert_eq!(concatenated, batch.anomalies);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect admin");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

/// `/anomalies/tail` over the real HTTP surface lists anomalies in the
/// batch report's order, both for a truncated tail and the full list.
#[test]
fn anomalies_tail_matches_batch_order_over_http() {
    // Heavy loss on both tail directions (repairs get dropped too) and
    // a cut mid-recovery: gaps are guaranteed open at end of stream.
    // The seed scan is deterministic; seed 2 alone yields ~18 anomalies.
    let (records, batch) = [2u64, 1, 7, 42]
        .into_iter()
        .find_map(|seed| {
            let cfg = DisScenarioConfig {
                sites: 4,
                receivers_per_site: 3,
                site_params: SiteParams {
                    tail_in_loss: LossModel::rate(0.35),
                    tail_out_loss: LossModel::rate(0.10),
                    ..SiteParams::distant()
                },
                receiver_nack_delay: Duration::from_millis(5),
                seed,
                ..DisScenarioConfig::default()
            };
            let records = capture(cfg, SimTime::from_millis(2_600));
            let batch = analyze(&records, &AnalyzeConfig::default());
            (batch.anomalies.len() >= 2).then_some((records, batch))
        })
        .expect("no seeded scenario produced ≥ 2 anomalies");

    let sidecar = DoctorSidecar::spawn(DoctorConfig {
        tick: Duration::from_millis(10),
        // Headroom: the test pushes the whole capture in one burst.
        channel_capacity: 1 << 16,
        ..DoctorConfig::default()
    });
    let sink = sidecar.sink();
    for r in &records {
        sink.record(r.at_nanos, r.host, &r.event);
    }
    let admin = AdminServer::bind("127.0.0.1:0", sidecar.handle()).expect("bind admin");
    let addr = admin.local_addr();

    // Wait until the sidecar's provisional snapshot has caught up with
    // the whole stream (its anomaly total matches the batch count).
    let want = batch.anomalies.len();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (code, body) = http_get(addr, "/anomalies/tail?n=0");
        assert_eq!(code, 200);
        let total: usize = body
            .split("\"total\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim_end_matches('}').parse().ok())
            .expect("total field");
        if total == want {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sidecar never caught up: {total} != {want} ({body})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let extract_details = |body: &str| -> Vec<String> {
        body.split("\"detail\":\"")
            .skip(1)
            .map(|s| s.split('"').next().unwrap().to_string())
            .collect()
    };
    let (code, body) = http_get(addr, &format!("/anomalies/tail?n={}", want + 10));
    assert_eq!(code, 200);
    let batch_details: Vec<String> = batch.anomalies.iter().map(|a| a.describe()).collect();
    // JSON escaping only touches quotes/backslashes/control chars,
    // which describe() strings don't contain.
    assert_eq!(extract_details(&body), batch_details);

    // A short tail is the *last* n in the same order.
    let (code, body) = http_get(addr, "/anomalies/tail?n=2");
    assert_eq!(code, 200);
    assert_eq!(extract_details(&body), batch_details[want - 2..].to_vec());

    drop(admin);
    let finish = sidecar.finish();
    assert_eq!(finish.report.anomalies, batch.anomalies);
    assert_eq!(finish.fold.basis, ReportBasis::of_report(&batch));
}
