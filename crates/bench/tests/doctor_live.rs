//! Live integration: real UDP endpoints with the doctor sidecar and
//! admin surface attached (ISSUE acceptance): while the scenario is in
//! flight every admin route answers with its documented status, and
//! afterwards the folded incremental reports equal the batch analyze of
//! the run's own capture field-for-field, with zero events dropped at
//! the non-blocking sink.
//!
//! When the environment forbids UDP multicast the harness transparently
//! falls back to the in-process hub — same assertions, so the test
//! never skips.

use std::io::{Read as _, Write as _};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use lbrm_bench::live::{run_live, LiveOptions};
use lbrm_core::trace::analyze::{analyze, parse_json_lines, AnalyzeConfig};
use lbrm_core::trace::{DoctorConfig, JsonLinesSink, ReportBasis, TraceSink};
use lbrm_wire::BundleMode;

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect admin");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn live_admin_routes_answer_in_flight_and_fold_matches_batch() {
    let capture = Arc::new(JsonLinesSink::buffered());
    let opts = LiveOptions {
        receivers: 2,
        packets: 12,
        loss: 0.25,
        seed: 7,
        spacing: Duration::from_millis(15),
        settle: Duration::from_secs(8),
        port: 49_611,
        admin_addr: Some("127.0.0.1:0".into()),
        capture: Some(capture.clone() as Arc<dyn TraceSink>),
        doctor: DoctorConfig {
            tick: Duration::from_millis(25),
            ..DoctorConfig::default()
        },
        ..LiveOptions::default()
    };

    let outcome = run_live(opts, |air| {
        let addr = air.admin_addr.expect("admin server bound");
        // The six documented routes, mid-flight.
        let (code, body) = http_get(addr, "/stats");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"records\":"), "{body}");
        for path in ["/timelines/live", "/anomalies/tail?n=5", "/mem"] {
            let (code, body) = http_get(addr, path);
            assert_eq!(code, 200, "{path}: {body}");
            assert!(body.starts_with('{'), "{path}: {body}");
        }
        // /deltas/last is 200 whether or not a tick has fired yet.
        let (code, _) = http_get(addr, "/deltas/last");
        assert_eq!(code, 200);
        // /healthz is 200 or 503 depending on open gaps right now.
        let (code, body) = http_get(addr, "/healthz");
        assert!(code == 200 || code == 503, "healthz {code}: {body}");
        // Error statuses are part of the contract too.
        assert_eq!(http_get(addr, "/nope").0, 404);
        assert_eq!(http_get(addr, "/anomalies/tail?n=banana").0, 400);
        assert!(air.doctor.ticks() > 0, "sidecar must be ticking in flight");
    })
    .expect("live run");

    assert!(
        outcome.delivered > 0,
        "no deliveries over {}",
        outcome.transport
    );
    assert_eq!(
        outcome.finish.dropped_events, 0,
        "recv loops must never have blocked or overflowed the sink"
    );

    // Fidelity: folded deltas == final report == batch analyze of the
    // run's own capture, field for field.
    let final_basis = ReportBasis::of_report(&outcome.finish.report);
    assert_eq!(outcome.finish.fold.basis, final_basis, "fold diverged");
    let (records, skipped) = parse_json_lines(&capture.contents());
    assert_eq!(skipped, 0, "capture must be parseable");
    assert_eq!(records.len() as u64, outcome.finish.records);
    let batch = analyze(&records, &AnalyzeConfig::default());
    assert_eq!(
        final_basis,
        ReportBasis::of_report(&batch),
        "live incremental path diverged from batch analyze"
    );

    // The registry heard the same stream (serial fanout).
    assert!(outcome.registry.counter("data_sent") > 0);
    // Admin keeps serving the final snapshot after the run.
    if let Some(admin) = &outcome.admin {
        let (code, body) = http_get(admin.local_addr(), "/stats");
        assert_eq!(code, 200);
        assert!(body.contains("\"finished\":true"), "{body}");
    }
}

/// Lossy live run with bundling pinned on: the send-side counters are
/// published as gauges the sidecar polls every tick, `/stats` exposes
/// them mid-flight, and the datagram/packet ledger is coherent
/// (bundling can only coalesce, never multiply datagrams). The gauge
/// assertions need real `UdpTransport`s, so they are skipped — loudly —
/// when the environment forces the in-process hub.
#[test]
fn live_bundled_run_publishes_send_gauges() {
    let opts = LiveOptions {
        receivers: 2,
        packets: 15,
        loss: 0.2,
        seed: 23,
        spacing: Duration::from_millis(10),
        settle: Duration::from_secs(8),
        port: 49_613,
        admin_addr: Some("127.0.0.1:0".into()),
        bundle: Some(BundleMode::On),
        doctor: DoctorConfig {
            tick: Duration::from_millis(25),
            ..DoctorConfig::default()
        },
        ..LiveOptions::default()
    };

    let outcome = run_live(opts, |air| {
        let addr = air.admin_addr.expect("admin server bound");
        let (code, body) = http_get(addr, "/stats");
        assert_eq!(code, 200, "{body}");
        // Mid-flight scrape refreshes the probes, so the per-endpoint
        // send gauges are already visible while traffic flows (the CI
        // live-doctor job polls exactly this).
        if body.contains(".send.packets") {
            assert!(body.contains(".send.datagrams"), "{body}");
            assert!(body.contains(".send.bytes"), "{body}");
        }
    })
    .expect("live run");

    assert!(
        outcome.delivered > 0,
        "no deliveries over {}",
        outcome.transport
    );
    if outcome.transport != "udp" {
        eprintln!("live bundled run: hub fallback, send gauges not exercised");
        return;
    }

    // Every endpoint published its send ledger; datagrams never exceed
    // packets with bundling on, and at least one endpoint actually sent.
    let gauges = outcome.registry.gauges();
    let senders: Vec<_> = gauges
        .iter()
        .filter(|(k, _)| k.ends_with(".send.packets"))
        .collect();
    assert_eq!(senders.len(), 4, "sender, logger, 2 receivers: {gauges:?}");
    let mut total_packets = 0;
    for (k, packets) in senders {
        let base = k.trim_end_matches("packets");
        let datagrams = gauges[&format!("{base}datagrams")];
        assert!(
            datagrams <= *packets,
            "{k}: bundling can only coalesce ({datagrams} datagrams > {packets} packets)"
        );
        if *packets > 0 {
            assert!(gauges[&format!("{base}bytes")] > 0, "{k}");
        }
        total_packets += *packets;
    }
    assert!(total_packets > 0, "no endpoint sent anything: {gauges:?}");
}
