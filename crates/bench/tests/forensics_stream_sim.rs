//! Differential property tests for the streaming forensics correlator:
//! on randomized seeded loss patterns, the one-pass bounded-memory
//! [`OnlineAnalyzer`](lbrm_core::trace::OnlineAnalyzer) must reproduce
//! the batch `analyze` reference report exactly — same anomalies, same
//! outcome counts, same repair attribution, same stage-latency samples,
//! same rendered timelines — and its eviction knobs must actually bound
//! peak resident state without corrupting what is reported.

use std::time::Duration;

use lbrm::harness::DisScenarioConfig;
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::SiteParams;
use lbrm_bench::doctor::{run_scenario, run_scenario_online, DoctorRun};
use lbrm_core::trace::analyze::AnalyzeConfig;
use lbrm_core::trace::OnlineConfig;

/// The same tiny deterministic generator the analyzer's reservoirs use,
/// here driving the *scenario* parameters so every CI run replays the
/// identical "random" loss patterns.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized lossy-WAN scenario: sites/receivers/loss rates drawn
/// from the generator, losses on both tail directions so NACKs and
/// repairs get dropped too, not just originals.
fn random_config(rng: &mut u64) -> DisScenarioConfig {
    let sites = 3 + (splitmix64(rng) % 4) as usize; // 3..=6
    let receivers = 2 + (splitmix64(rng) % 3) as usize; // 2..=4
    let in_loss = 0.02 + (splitmix64(rng) % 9) as f64 * 0.01; // 2%..=10%
    let out_loss = (splitmix64(rng) % 5) as f64 * 0.01; // 0%..=4%
    DisScenarioConfig {
        sites,
        receivers_per_site: receivers,
        site_params: SiteParams {
            tail_in_loss: LossModel::rate(in_loss),
            tail_out_loss: LossModel::rate(out_loss),
            ..SiteParams::distant()
        },
        receiver_nack_delay: Duration::from_millis(5),
        seed: splitmix64(rng),
        ..DisScenarioConfig::default()
    }
}

fn assert_reports_identical(online: &DoctorRun, batch: &DoctorRun, label: &str) {
    assert_eq!(online.records, batch.records, "{label}: record count");
    let o = &online.report;
    let b = &batch.report;
    let describe = |r: &lbrm_core::trace::analyze::RecoveryReport| -> Vec<String> {
        r.anomalies.iter().map(|a| a.describe()).collect()
    };
    assert_eq!(describe(o), describe(b), "{label}: anomaly set");
    assert_eq!(o.recovered, b.recovered, "{label}: recovered");
    assert_eq!(o.abandoned, b.abandoned, "{label}: abandoned");
    assert_eq!(o.unrecovered, b.unrecovered, "{label}: unrecovered");
    assert_eq!(o.sources, b.sources, "{label}: repair attribution");
    assert_eq!(o.duplicate_repairs, b.duplicate_repairs, "{label}: dups");
    assert_eq!(o.max_nack_fan_in, b.max_nack_fan_in, "{label}: fan-in");
    assert_eq!(o.telescoping, b.telescoping, "{label}: telescoping");
    assert_eq!(
        o.truncated_gap_spans, b.truncated_gap_spans,
        "{label}: truncated spans"
    );
    for (name, os, bs) in [
        ("detection", &o.detection, &b.detection),
        ("request", &o.request, &b.request),
        ("serve", &o.serve, &b.serve),
        ("return", &o.return_leg, &b.return_leg),
        ("total", &o.total, &b.total),
    ] {
        assert_eq!(os.samples(), bs.samples(), "{label}: {name} stage");
    }
    assert_eq!(o.timelines.len(), b.timelines.len(), "{label}: timelines");
    for (ot, bt) in o.timelines.iter().zip(&b.timelines) {
        assert_eq!(ot.render(), bt.render(), "{label}: timeline");
    }
}

/// The core property: with default (unbounded) streaming config, batch
/// and streaming correlation of the same seeded run are
/// indistinguishable — across several randomized loss patterns,
/// including runs cut off with timelines still open.
#[test]
fn streaming_matches_batch_on_randomized_loss_patterns() {
    let mut rng = 0xD15_CAFE_u64;
    let mut exercised_recovery = false;
    for case in 0..5 {
        let config = random_config(&mut rng);
        let packets = 8 + splitmix64(&mut rng) % 9; // 8..=16

        // Odd cases stop early enough that some recoveries are still in
        // flight, exercising the end-of-run drain path differentially.
        let until = if case % 2 == 1 {
            SimTime::from_millis(1_000 + 250 * packets + 40)
        } else {
            SimTime::from_secs(40)
        };
        let label = format!(
            "case {case} (seed {}, {} sites x {}, {} packets)",
            config.seed, config.sites, config.receivers_per_site, packets
        );
        let (batch, _) = run_scenario(
            config.clone(),
            packets,
            until,
            &AnalyzeConfig::default(),
            None,
        );
        let (online, _) =
            run_scenario_online(config, packets, until, OnlineConfig::default(), None);
        assert_reports_identical(&online, &batch, &label);
        assert!(online.report.stream.streamed);
        assert!(!batch.report.stream.streamed);
        exercised_recovery |= online.report.recovered > 0;
    }
    assert!(
        exercised_recovery,
        "at least one randomized pattern must exercise recovery"
    );
}

/// The `max_live_timelines` cap is a hard bound on peak resident state,
/// whatever the loss pattern does.
#[test]
fn live_timeline_cap_bounds_peak_state() {
    let mut rng = 0xB0B_5EED_u64;
    let config = random_config(&mut rng);
    let cfg = OnlineConfig {
        max_live_timelines: Some(4),
        ..OnlineConfig::default()
    };
    let (online, _) = run_scenario_online(config, 16, SimTime::from_secs(40), cfg, None);
    let stream = &online.report.stream;
    assert!(
        stream.peak_live_timelines <= 4,
        "peak {} exceeds the cap",
        stream.peak_live_timelines
    );
    assert!(stream.peak_resident_bytes > 0);
    assert!(online.records > 0);
    // Whatever was evicted is only ever *dropped* accounting, never
    // phantom outcomes: closed timelines still telescope.
    assert_eq!(online.report.telescoping, online.report.recovered);
}

/// Tiny reservoirs downsample which latencies/timelines are *kept*, but
/// the exact totals — counts, means, maxima, anomalies, attribution —
/// must still match the batch reference.
#[test]
fn tiny_reservoirs_keep_exact_totals() {
    let mut rng = 0xCA5_CADE_u64;
    let config = random_config(&mut rng);
    let (batch, _) = run_scenario(
        config.clone(),
        16,
        SimTime::from_secs(40),
        &AnalyzeConfig::default(),
        None,
    );
    let cfg = OnlineConfig {
        stage_reservoir: 8,
        timeline_reservoir: 8,
        ..OnlineConfig::default()
    };
    let (online, _) = run_scenario_online(config, 16, SimTime::from_secs(40), cfg, None);
    let o = &online.report;
    let b = &batch.report;
    assert_eq!(o.recovered, b.recovered);
    assert_eq!(o.anomalies, b.anomalies);
    assert_eq!(o.sources, b.sources);
    for (name, os, bs) in [
        ("detection", &o.detection, &b.detection),
        ("request", &o.request, &b.request),
        ("serve", &o.serve, &b.serve),
        ("return", &o.return_leg, &b.return_leg),
        ("total", &o.total, &b.total),
    ] {
        assert_eq!(os.count(), bs.count(), "{name}: exact count survives");
        assert_eq!(os.mean(), bs.mean(), "{name}: exact mean survives");
        assert_eq!(os.max(), bs.max(), "{name}: exact max survives");
    }
    assert!(o.timelines.len() <= 8, "timeline reservoir bound");
    assert!(
        b.recovered <= 8 || o.total.is_sampled(),
        "an overfull stage snapshot must say it is sampled"
    );
}
