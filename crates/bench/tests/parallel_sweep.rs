//! The parallel experiment sweeps must be invisible in the output: a
//! report produced with the scoped-thread fan-out is byte-for-byte the
//! report a serial sweep produces.

use lbrm_bench::experiments::{exp_hierarchy, fig4_heartbeat_overhead};
use lbrm_bench::parallel::{par_map, par_map_with_threads};
use lbrm_core::heartbeat::HeartbeatConfig;

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    // Sweep real simulation points (scaled down for test time) through
    // the forced-multithreaded path and a plain serial map.
    let dts = vec![0.5, 2.0, 10.0, 60.0];
    let serial: Vec<String> = dts
        .iter()
        .map(|&dt| {
            format!(
                "{:.4}",
                fig4_heartbeat_overhead::simulated_rate(dt, HeartbeatConfig::default(), false)
            )
        })
        .collect();
    let parallel = par_map_with_threads(dts, 4, |dt| {
        format!(
            "{:.4}",
            fig4_heartbeat_overhead::simulated_rate(dt, HeartbeatConfig::default(), false)
        )
    });
    assert_eq!(serial.join("\n"), parallel.join("\n"));
}

#[test]
fn hierarchy_sweep_is_order_stable_under_threads() {
    let levels = vec![1u8, 2, 3];
    let serial: Vec<(u64, f64)> = levels
        .iter()
        .map(|&l| exp_hierarchy::run_level(6, 3, 3, l, 29))
        .collect();
    let threaded = par_map_with_threads(levels.clone(), 3, |l| {
        exp_hierarchy::run_level(6, 3, 3, l, 29)
    });
    let auto = par_map(levels, |l| exp_hierarchy::run_level(6, 3, 3, l, 29));
    assert_eq!(serial, threaded);
    assert_eq!(serial, auto);
}

#[test]
fn full_report_is_deterministic_across_runs() {
    // run() uses par_map internally; two invocations must render the
    // identical report, regardless of worker scheduling.
    let a = exp_hierarchy::run();
    let b = exp_hierarchy::run();
    assert_eq!(a, b);
}
