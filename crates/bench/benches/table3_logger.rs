//! Microbenchmark analogue of Table 3: the secondary logging server's
//! request service path (NACK decode → log lookup → retransmission
//! encode) and its saturation throughput.

use lbrm_bench::experiments::table3_breakdown::{loaded_logger, serve_once};
use lbrm_bench::microbench::{bench_function_throughput, Bencher};
use lbrm_core::machine::Actions;
use lbrm_wire::packet::SeqRange;
use lbrm_wire::{encode, GroupId, HostId, Packet, Seq, SourceId};

fn main() {
    println!("== table3_logger ==");
    for payload in [128usize, 1024] {
        let wire_nack = encode(&Packet::Nack {
            group: GroupId(1),
            source: SourceId(1),
            requester: HostId(400),
            ranges: vec![SeqRange::single(Seq(500))],
        })
        .unwrap();
        bench_function_throughput(
            &format!("table3_logger/serve_request_{payload}B"),
            1,
            |b: &mut Bencher| {
                b.iter_batched_ref(
                    || (loaded_logger(1024, payload), Actions::new()),
                    |(logger, out)| serve_once(logger, &wire_nack, out),
                );
            },
        );
    }

    // Sustained service rate with a rotating request mix (the §3
    // "maximum rate at which a logging server could respond" analogue).
    let nacks: Vec<Vec<u8>> = (1..=512u32)
        .map(|i| {
            encode(&Packet::Nack {
                group: GroupId(1),
                source: SourceId(1),
                requester: HostId(400 + u64::from(i % 31)),
                ranges: vec![SeqRange::single(Seq(i))],
            })
            .unwrap()
            .to_vec()
        })
        .collect();
    bench_function_throughput(
        "table3_logger/serve_request_sustained_128B",
        1,
        |b: &mut Bencher| {
            let mut logger = loaded_logger(512, 128);
            let mut out = Actions::new();
            let mut i = 0usize;
            b.iter(|| {
                let bytes = serve_once(&mut logger, &nacks[i % nacks.len()], &mut out);
                i += 1;
                bytes
            });
        },
    );
}
