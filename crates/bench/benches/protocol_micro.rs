//! Protocol-machine microbenchmarks: the per-packet costs of the gap
//! tracker, heartbeat scheduler, receiver data path, and statistical-ack
//! bookkeeping, plus raw simulator event throughput and the overhead of
//! the trace layer on the receiver hot path (disabled tracer vs an
//! attached no-op sink vs a counting sink).

use std::sync::Arc;

use bytes::Bytes;
use lbrm_bench::microbench::{bench_function, bench_function_throughput, Bencher};
use lbrm_core::gaps::GapTracker;
use lbrm_core::heartbeat::{HeartbeatConfig, VariableHeartbeat};
use lbrm_core::machine::{Actions, Machine};
use lbrm_core::receiver::{Receiver, ReceiverConfig};
use lbrm_core::statack::{StatAck, StatAckConfig, StatAckOutput};
use lbrm_core::time::Time;
use lbrm_core::trace::{CountingSink, NoopSink, Tracer};
use lbrm_wire::{EpochId, GroupId, HostId, Packet, Seq, SourceId};

fn bench_gap_tracker() {
    bench_function_throughput(
        "gap_tracker/observe_in_order_256",
        256,
        |b: &mut Bencher| {
            b.iter_batched_ref(GapTracker::new, |t| {
                for i in 1..=256u32 {
                    t.observe(Seq(i));
                }
            });
        },
    );
    bench_function_throughput("gap_tracker/observe_gappy_128_plus_ranges", 128, |b| {
        b.iter_batched_ref(GapTracker::new, |t| {
            for i in 1..=128u32 {
                t.observe(Seq(i * 3)); // every third packet
            }
            t.missing_ranges(64)
        });
    });
}

fn bench_heartbeat() {
    bench_function("heartbeat_schedule_cycle", |b| {
        let mut hb = VariableHeartbeat::new(HeartbeatConfig::default());
        let mut now = Time::ZERO;
        b.iter(|| {
            hb.on_data_sent(now);
            for _ in 0..8 {
                now = hb.next_heartbeat_at().unwrap();
                hb.on_heartbeat_sent(now);
            }
            now
        });
    });
}

fn fresh_receiver() -> Receiver {
    Receiver::new(ReceiverConfig::new(
        GroupId(1),
        SourceId(1),
        HostId(1),
        HostId(2),
        vec![HostId(3)],
    ))
}

fn drive_receiver(r: &mut Receiver) {
    let mut out = Actions::new();
    for i in 1..=64u32 {
        let pkt = Packet::Data {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(i),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"terrain update"),
        };
        r.on_packet(Time::from_millis(u64::from(i)), HostId(2), pkt, &mut out);
        out.clear();
    }
}

fn bench_receiver_path() {
    // The trace-layer overhead comparison the design promises: a
    // disabled tracer must cost nothing measurable on the hot path, and
    // an attached no-op sink only the dynamic dispatch.
    let disabled = bench_function_throughput("receiver/on_data_64/tracer_disabled", 64, |b| {
        b.iter_batched_ref(fresh_receiver, drive_receiver);
    });
    let noop = bench_function_throughput("receiver/on_data_64/noop_sink", 64, |b| {
        b.iter_batched_ref(
            || {
                let mut r = fresh_receiver();
                r.set_tracer(Tracer::to(Arc::new(NoopSink)));
                r
            },
            drive_receiver,
        );
    });
    let counting = bench_function_throughput("receiver/on_data_64/counting_sink", 64, |b| {
        b.iter_batched_ref(
            || {
                let mut r = fresh_receiver();
                r.set_tracer(Tracer::to(Arc::new(CountingSink::default())));
                r
            },
            drive_receiver,
        );
    });
    println!(
        "  trace overhead vs disabled: noop {:+.1}%, counting {:+.1}%",
        100.0 * (noop.ns_per_iter - disabled.ns_per_iter) / disabled.ns_per_iter,
        100.0 * (counting.ns_per_iter - disabled.ns_per_iter) / disabled.ns_per_iter,
    );
}

fn bench_statack() {
    bench_function("statack_16_acks_per_packet", |b| {
        // One epoch with 16 ackers; process a packet's worth of ACKs.
        let mut sa = StatAck::new(
            StatAckConfig {
                k: 16,
                nsl_initial: 16.0,
                ..StatAckConfig::default()
            },
            Time::ZERO,
        );
        let mut out = Vec::new();
        sa.poll(Time::ZERO, &mut out);
        let epoch = out
            .iter()
            .find_map(|o| match o {
                StatAckOutput::StartSelection { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .unwrap();
        for h in 0..16u64 {
            sa.on_volunteer(HostId(h), epoch);
        }
        let switch = sa.next_deadline().unwrap();
        out.clear();
        sa.poll(switch, &mut out);
        let mut seq = 0u32;
        b.iter(|| {
            seq += 1;
            sa.on_data_sent(switch, Seq(seq));
            let mut out = Vec::new();
            for h in 0..16u64 {
                sa.on_ack(switch, HostId(h), epoch, Seq(seq), &mut out);
            }
            out
        });
    });
}

fn bench_sim_events() {
    use lbrm_sim::time::SimTime;
    use lbrm_sim::topology::{SiteParams, TopologyBuilder};
    use lbrm_sim::world::{Actor, Ctx, World};

    /// Ping-pong actor: answers every packet, generating a steady event
    /// stream that measures raw simulator dispatch cost.
    struct Pong {
        peer: HostId,
        budget: u32,
    }
    impl Actor for Pong {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.budget > 0 {
                let pkt = Packet::Heartbeat {
                    group: GroupId(1),
                    source: SourceId(1),
                    seq: Seq(1),
                    epoch: EpochId(0),
                    hb_index: 1,
                    payload: Bytes::new(),
                };
                ctx.send_unicast(self.peer, pkt);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: HostId, packet: Packet) {
            if self.budget > 0 {
                self.budget -= 1;
                ctx.send_unicast(from, packet);
            }
        }
    }

    bench_function_throughput("sim/event_dispatch_10k", 10_000, |b| {
        b.iter_batched_ref(
            || {
                let mut tb = TopologyBuilder::new();
                let s0 = tb.site(SiteParams::default());
                let s1 = tb.site(SiteParams::default());
                let a = tb.host(s0);
                let z = tb.host(s1);
                let mut w = World::new(tb.build(), 1);
                w.add_actor(
                    a,
                    Pong {
                        peer: z,
                        budget: 5_000,
                    },
                );
                w.add_actor(
                    z,
                    Pong {
                        peer: a,
                        budget: 5_000,
                    },
                );
                w
            },
            |w| {
                w.run_until(SimTime::from_secs(100_000));
            },
        );
    });
}

fn main() {
    bench_gap_tracker();
    bench_heartbeat();
    bench_receiver_path();
    bench_statack();
    bench_sim_events();
}
