//! Protocol-machine microbenchmarks: the per-packet costs of the gap
//! tracker, heartbeat scheduler, receiver data path, and statistical-ack
//! bookkeeping, plus raw simulator event throughput.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lbrm_core::gaps::GapTracker;
use lbrm_core::heartbeat::{HeartbeatConfig, VariableHeartbeat};
use lbrm_core::machine::{Actions, Machine};
use lbrm_core::receiver::{Receiver, ReceiverConfig};
use lbrm_core::statack::{StatAck, StatAckConfig, StatAckOutput};
use lbrm_core::time::Time;
use lbrm_wire::{EpochId, GroupId, HostId, Packet, Seq, SourceId};

fn bench_gap_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap_tracker");
    group.throughput(Throughput::Elements(256));
    group.bench_function("observe_in_order_256", |b| {
        b.iter_batched_ref(
            GapTracker::new,
            |t| {
                for i in 1..=256u32 {
                    t.observe(Seq(i));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.throughput(Throughput::Elements(128));
    group.bench_function("observe_gappy_128_plus_ranges", |b| {
        b.iter_batched_ref(
            GapTracker::new,
            |t| {
                for i in 1..=128u32 {
                    t.observe(Seq(i * 3)); // every third packet
                }
                t.missing_ranges(64)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_heartbeat(c: &mut Criterion) {
    c.bench_function("heartbeat_schedule_cycle", |b| {
        let mut hb = VariableHeartbeat::new(HeartbeatConfig::default());
        let mut now = Time::ZERO;
        b.iter(|| {
            hb.on_data_sent(now);
            for _ in 0..8 {
                now = hb.next_heartbeat_at().unwrap();
                hb.on_heartbeat_sent(now);
            }
            now
        });
    });
}

fn bench_receiver_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("receiver");
    group.throughput(Throughput::Elements(64));
    group.bench_function("on_data_in_order_64", |b| {
        b.iter_batched_ref(
            || {
                Receiver::new(ReceiverConfig::new(
                    GroupId(1),
                    SourceId(1),
                    HostId(1),
                    HostId(2),
                    vec![HostId(3)],
                ))
            },
            |r| {
                let mut out = Actions::new();
                for i in 1..=64u32 {
                    let pkt = Packet::Data {
                        group: GroupId(1),
                        source: SourceId(1),
                        seq: Seq(i),
                        epoch: EpochId(0),
                        payload: Bytes::from_static(b"terrain update"),
                    };
                    r.on_packet(Time::from_millis(u64::from(i)), HostId(2), pkt, &mut out);
                    out.clear();
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_statack(c: &mut Criterion) {
    c.bench_function("statack_16_acks_per_packet", |b| {
        // One epoch with 16 ackers; process a packet's worth of ACKs.
        let mut sa = StatAck::new(
            StatAckConfig { k: 16, nsl_initial: 16.0, ..StatAckConfig::default() },
            Time::ZERO,
        );
        let mut out = Vec::new();
        sa.poll(Time::ZERO, &mut out);
        let epoch = out
            .iter()
            .find_map(|o| match o {
                StatAckOutput::StartSelection { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .unwrap();
        for h in 0..16u64 {
            sa.on_volunteer(HostId(h), epoch);
        }
        let switch = sa.next_deadline().unwrap();
        out.clear();
        sa.poll(switch, &mut out);
        let mut seq = 0u32;
        b.iter(|| {
            seq += 1;
            sa.on_data_sent(switch, Seq(seq));
            let mut out = Vec::new();
            for h in 0..16u64 {
                sa.on_ack(switch, HostId(h), epoch, Seq(seq), &mut out);
            }
            out
        });
    });
}

fn bench_sim_events(c: &mut Criterion) {
    use lbrm_sim::time::SimTime;
    use lbrm_sim::topology::{SiteParams, TopologyBuilder};
    use lbrm_sim::world::{Actor, Ctx, World};

    /// Ping-pong actor: answers every packet, generating a steady event
    /// stream that measures raw simulator dispatch cost.
    struct Pong {
        peer: HostId,
        budget: u32,
    }
    impl Actor for Pong {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.budget > 0 {
                let pkt = Packet::Heartbeat {
                    group: GroupId(1),
                    source: SourceId(1),
                    seq: Seq(1),
                    epoch: EpochId(0),
                    hb_index: 1,
                    payload: Bytes::new(),
                };
                ctx.send_unicast(self.peer, pkt);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: HostId, packet: Packet) {
            if self.budget > 0 {
                self.budget -= 1;
                ctx.send_unicast(from, packet);
            }
        }
    }

    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("event_dispatch_10k", |b| {
        b.iter_batched(
            || {
                let mut tb = TopologyBuilder::new();
                let s0 = tb.site(SiteParams::default());
                let s1 = tb.site(SiteParams::default());
                let a = tb.host(s0);
                let z = tb.host(s1);
                let mut w = World::new(tb.build(), 1);
                w.add_actor(a, Pong { peer: z, budget: 5_000 });
                w.add_actor(z, Pong { peer: a, budget: 5_000 });
                w
            },
            |mut w| {
                w.run_until(SimTime::from_secs(100_000));
                w
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gap_tracker,
    bench_heartbeat,
    bench_receiver_path,
    bench_statack,
    bench_sim_events
);
criterion_main!(benches);
