//! Wire codec microbenchmarks: encode/decode of the hot packet types.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lbrm_wire::packet::SeqRange;
use lbrm_wire::{decode, encode, EpochId, GroupId, HostId, Packet, Seq, SourceId};

fn packets() -> Vec<(&'static str, Packet)> {
    vec![
        (
            "data_128B",
            Packet::Data {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(1000),
                epoch: EpochId(3),
                payload: Bytes::from(vec![0x42u8; 128]),
            },
        ),
        (
            "data_1400B",
            Packet::Data {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(1000),
                epoch: EpochId(3),
                payload: Bytes::from(vec![0x42u8; 1400]),
            },
        ),
        (
            "heartbeat",
            Packet::Heartbeat {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(1000),
                epoch: EpochId(3),
                hb_index: 4,
                payload: Bytes::new(),
            },
        ),
        (
            "nack_4ranges",
            Packet::Nack {
                group: GroupId(1),
                source: SourceId(2),
                requester: HostId(9),
                ranges: vec![
                    SeqRange { first: Seq(10), last: Seq(12) },
                    SeqRange::single(Seq(20)),
                    SeqRange { first: Seq(30), last: Seq(39) },
                    SeqRange::single(Seq(50)),
                ],
            },
        ),
    ]
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for (name, pkt) in packets() {
        let wire = encode(&pkt).unwrap();
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_function(format!("encode_{name}"), |b| {
            b.iter(|| encode(std::hint::black_box(&pkt)).unwrap())
        });
        group.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| decode(std::hint::black_box(&wire)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
