//! Wire codec microbenchmarks: encode/decode of the hot packet types.

use bytes::Bytes;
use lbrm_bench::microbench::{bench_function, Bencher};
use lbrm_wire::packet::SeqRange;
use lbrm_wire::{decode, encode, EpochId, GroupId, HostId, Packet, Seq, SourceId};

fn packets() -> Vec<(&'static str, Packet)> {
    vec![
        (
            "data_128B",
            Packet::Data {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(1000),
                epoch: EpochId(3),
                payload: Bytes::from(vec![0x42u8; 128]),
            },
        ),
        (
            "data_1400B",
            Packet::Data {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(1000),
                epoch: EpochId(3),
                payload: Bytes::from(vec![0x42u8; 1400]),
            },
        ),
        (
            "heartbeat",
            Packet::Heartbeat {
                group: GroupId(1),
                source: SourceId(2),
                seq: Seq(1000),
                epoch: EpochId(3),
                hb_index: 4,
                payload: Bytes::new(),
            },
        ),
        (
            "nack_4ranges",
            Packet::Nack {
                group: GroupId(1),
                source: SourceId(2),
                requester: HostId(9),
                ranges: vec![
                    SeqRange {
                        first: Seq(10),
                        last: Seq(12),
                    },
                    SeqRange::single(Seq(20)),
                    SeqRange {
                        first: Seq(30),
                        last: Seq(39),
                    },
                    SeqRange::single(Seq(50)),
                ],
            },
        ),
    ]
}

fn main() {
    println!("== codec ==");
    for (name, pkt) in packets() {
        let wire = encode(&pkt).unwrap();
        bench_function(&format!("codec/encode_{name}"), |b: &mut Bencher| {
            b.iter(|| encode(std::hint::black_box(&pkt)).unwrap())
        });
        bench_function(&format!("codec/decode_{name}"), |b: &mut Bencher| {
            b.iter(|| decode(std::hint::black_box(&wire)).unwrap())
        });
    }
}
