//! Property tests for the protocol's core data structures and schedules.

use std::collections::BTreeSet;
use std::time::Duration;

use bytes::Bytes;
use lbrm_core::gaps::GapTracker;
use lbrm_core::heartbeat::{analysis, HeartbeatConfig, VariableHeartbeat};
use lbrm_core::logstore::{LogStore, Retention};
use lbrm_core::time::Time;
use lbrm_wire::Seq;
use proptest::prelude::*;

/// Model-based test: the gap tracker against a naive reference set.
fn reference_missing(observed: &[u32]) -> BTreeSet<u32> {
    let Some(&first) = observed.first() else { return BTreeSet::new() };
    let max = *observed.iter().max().unwrap();
    let have: BTreeSet<u32> = observed.iter().copied().collect();
    (first..=max).filter(|s| !have.contains(s)).collect()
}

proptest! {
    /// Arbitrary observation orders (no wraparound, ±2000 window) agree
    /// with a reference set model.
    #[test]
    fn gap_tracker_matches_reference(
        base in 1000u32..2_000_000,
        offsets in proptest::collection::vec(0u32..2000, 1..80),
    ) {
        let seqs: Vec<u32> = offsets.iter().map(|o| base + o).collect();
        let mut tracker = GapTracker::new();
        for &s in &seqs {
            tracker.observe(Seq(s));
        }
        // The tracker's floor starts at the first observation; the
        // reference must too. Everything before the first observed seq is
        // out of scope.
        let first = seqs[0];
        let missing_ref: BTreeSet<u32> =
            reference_missing(&seqs).into_iter().filter(|&s| s > first).collect();
        let mut missing_got = BTreeSet::new();
        for r in tracker.missing_ranges(usize::MAX >> 1) {
            for s in r.iter() {
                missing_got.insert(s.raw());
            }
        }
        prop_assert_eq!(missing_got, missing_ref);
        // Highest matches.
        prop_assert_eq!(tracker.highest().map(|s| s.raw()), seqs.iter().copied().max());
    }

    /// Ranges returned are ascending, disjoint, and non-adjacent.
    #[test]
    fn gap_ranges_are_canonical(
        offsets in proptest::collection::vec(0u32..500, 1..60),
    ) {
        let mut tracker = GapTracker::new();
        for &o in &offsets {
            tracker.observe(Seq(10_000 + o));
        }
        let ranges = tracker.missing_ranges(usize::MAX >> 1);
        for w in ranges.windows(2) {
            prop_assert!(w[0].last.raw() + 1 < w[1].first.raw());
        }
        for r in &ranges {
            prop_assert!(!r.is_empty());
        }
    }

    /// Filling every reported gap leaves the tracker complete.
    #[test]
    fn filling_all_gaps_completes(
        offsets in proptest::collection::vec(0u32..300, 1..40),
    ) {
        let mut tracker = GapTracker::new();
        for &o in &offsets {
            tracker.observe(Seq(500 + o));
        }
        let ranges = tracker.missing_ranges(usize::MAX >> 1);
        for r in ranges {
            for s in r.iter() {
                tracker.observe(s);
            }
        }
        prop_assert_eq!(tracker.missing_count(), 0);
    }

    /// The variable heartbeat schedule: deadlines strictly increase,
    /// intervals are monotonically non-decreasing and within
    /// [h_min, h_max].
    #[test]
    fn heartbeat_schedule_invariants(
        h_min_ms in 10u64..1000,
        factor in 1u32..200,
        backoff in 1.1f64..8.0,
        steps in 1usize..40,
    ) {
        let h_min = Duration::from_millis(h_min_ms);
        let h_max = h_min * factor;
        let cfg = HeartbeatConfig { h_min, h_max, backoff };
        let mut hb = VariableHeartbeat::new(cfg);
        hb.on_data_sent(Time::ZERO);
        let mut prev_fire = Time::ZERO;
        let mut prev_interval = Duration::ZERO;
        for i in 0..steps {
            let fire = hb.next_heartbeat_at().unwrap();
            prop_assert!(fire > prev_fire);
            let interval = fire - prev_fire;
            prop_assert!(interval >= prev_interval || i == 0);
            // Tolerance for f64 rounding of the backoff arithmetic.
            let tol = Duration::from_nanos(10);
            prop_assert!(interval + tol >= h_min, "interval {interval:?} < h_min {h_min:?}");
            prop_assert!(interval <= h_max + tol, "interval {interval:?} > h_max {h_max:?}");
            prop_assert_eq!(hb.on_heartbeat_sent(fire), (i + 1) as u32);
            prev_interval = interval;
            prev_fire = fire;
        }
    }

    /// The variable scheme never sends more heartbeats than the fixed
    /// scheme for any interval and parameters (§2.1.2).
    #[test]
    fn variable_overhead_never_exceeds_fixed(
        dt in 0.01f64..5000.0,
        backoff in 1.0f64..6.0,
    ) {
        let cfg = HeartbeatConfig {
            h_min: Duration::from_millis(250),
            h_max: Duration::from_secs(32),
            backoff,
        };
        let v = analysis::variable_heartbeats_per_interval(dt, &cfg);
        let f = analysis::fixed_heartbeats_per_interval(dt, 0.25);
        prop_assert!(v <= f, "dt={dt} backoff={backoff}: {v} > {f}");
    }

    /// Log store: `contiguous_high` never claims a sequence that was not
    /// inserted, under any insertion order and Count retention.
    #[test]
    fn logstore_contiguity_is_sound(
        offsets in proptest::collection::vec(0u32..120, 1..60),
        keep in 1usize..20,
    ) {
        let mut log = LogStore::new(Retention::Count(keep));
        let mut inserted = BTreeSet::new();
        let base = 100u32;
        for &o in &offsets {
            log.insert(Time::ZERO, Seq(base + o), Bytes::from_static(b"x"));
            inserted.insert(base + o);
        }
        if let Some(high) = log.contiguous_high() {
            let first = *inserted.iter().next().unwrap();
            for s in first..=high.raw() {
                prop_assert!(inserted.contains(&s),
                    "contiguous_high {high} covers never-inserted {s}");
            }
        }
        prop_assert!(log.len() <= keep);
    }

    /// Whatever the store still holds is returned verbatim.
    #[test]
    fn logstore_get_returns_inserted_payload(
        seqs in proptest::collection::btree_set(0u32..200, 1..50),
    ) {
        let mut log = LogStore::new(Retention::All);
        for &s in &seqs {
            log.insert(Time::ZERO, Seq(1000 + s), Bytes::from(format!("p{s}")));
        }
        for &s in &seqs {
            prop_assert_eq!(
                log.get(Seq(1000 + s)),
                Some(Bytes::from(format!("p{s}")))
            );
        }
    }
}
