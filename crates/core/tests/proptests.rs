//! Randomized property tests for the protocol's core data structures
//! and schedules.
//!
//! The crates.io `proptest` harness is unavailable offline, so these
//! run as seeded randomized loops (deterministic per seed — a failure
//! reproduces by rerunning the test).

use std::collections::BTreeSet;
use std::time::Duration;

use bytes::Bytes;
use lbrm_core::gaps::GapTracker;
use lbrm_core::heartbeat::{analysis, HeartbeatConfig, VariableHeartbeat};
use lbrm_core::logstore::{LogStore, Retention};
use lbrm_core::time::Time;
use lbrm_wire::Seq;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

fn vec_of(r: &mut SmallRng, hi: u32, min_len: usize, max_len: usize) -> Vec<u32> {
    let len = r.random_range(min_len as u64..max_len as u64) as usize;
    (0..len)
        .map(|_| r.random_range(0u64..u64::from(hi)) as u32)
        .collect()
}

/// Model-based test: the gap tracker against a naive reference set.
fn reference_missing(observed: &[u32]) -> BTreeSet<u32> {
    let Some(&first) = observed.first() else {
        return BTreeSet::new();
    };
    let max = *observed.iter().max().unwrap();
    let have: BTreeSet<u32> = observed.iter().copied().collect();
    (first..=max).filter(|s| !have.contains(s)).collect()
}

/// Arbitrary observation orders (no wraparound, ±2000 window) agree
/// with a reference set model.
#[test]
fn gap_tracker_matches_reference() {
    let mut r = rng(0x6A9);
    for _ in 0..CASES {
        let base = r.random_range(1000u64..2_000_000) as u32;
        let offsets = vec_of(&mut r, 2000, 1, 80);
        let seqs: Vec<u32> = offsets.iter().map(|o| base + o).collect();
        let mut tracker = GapTracker::new();
        for &s in &seqs {
            tracker.observe(Seq(s));
        }
        // The tracker's floor starts at the first observation; the
        // reference must too. Everything before the first observed seq is
        // out of scope.
        let first = seqs[0];
        let missing_ref: BTreeSet<u32> = reference_missing(&seqs)
            .into_iter()
            .filter(|&s| s > first)
            .collect();
        let mut missing_got = BTreeSet::new();
        for rr in tracker.missing_ranges(usize::MAX >> 1) {
            for s in rr.iter() {
                missing_got.insert(s.raw());
            }
        }
        assert_eq!(missing_got, missing_ref);
        // Highest matches.
        assert_eq!(
            tracker.highest().map(|s| s.raw()),
            seqs.iter().copied().max()
        );
    }
}

/// Ranges returned are ascending, disjoint, and non-adjacent.
#[test]
fn gap_ranges_are_canonical() {
    let mut r = rng(0xCA40);
    for _ in 0..CASES {
        let offsets = vec_of(&mut r, 500, 1, 60);
        let mut tracker = GapTracker::new();
        for &o in &offsets {
            tracker.observe(Seq(10_000 + o));
        }
        let ranges = tracker.missing_ranges(usize::MAX >> 1);
        for w in ranges.windows(2) {
            assert!(w[0].last.raw() + 1 < w[1].first.raw());
        }
        for rr in &ranges {
            assert!(!rr.is_empty());
        }
    }
}

/// Filling every reported gap leaves the tracker complete.
#[test]
fn filling_all_gaps_completes() {
    let mut r = rng(0xF111);
    for _ in 0..CASES {
        let offsets = vec_of(&mut r, 300, 1, 40);
        let mut tracker = GapTracker::new();
        for &o in &offsets {
            tracker.observe(Seq(500 + o));
        }
        let ranges = tracker.missing_ranges(usize::MAX >> 1);
        for rr in ranges {
            for s in rr.iter() {
                tracker.observe(s);
            }
        }
        assert_eq!(tracker.missing_count(), 0);
    }
}

/// The variable heartbeat schedule: deadlines strictly increase,
/// intervals are monotonically non-decreasing and within
/// [h_min, h_max].
#[test]
fn heartbeat_schedule_invariants() {
    let mut r = rng(0x48EA);
    for _ in 0..CASES {
        let h_min = Duration::from_millis(r.random_range(10u64..1000));
        let factor = r.random_range(1u64..200) as u32;
        let backoff = r.random_range(1.1f64..8.0);
        let steps = r.random_range(1u64..40) as usize;
        let h_max = h_min * factor;
        let cfg = HeartbeatConfig {
            h_min,
            h_max,
            backoff,
        };
        let mut hb = VariableHeartbeat::new(cfg);
        hb.on_data_sent(Time::ZERO);
        let mut prev_fire = Time::ZERO;
        let mut prev_interval = Duration::ZERO;
        for i in 0..steps {
            let fire = hb.next_heartbeat_at().unwrap();
            assert!(fire > prev_fire);
            let interval = fire - prev_fire;
            assert!(interval >= prev_interval || i == 0);
            // Tolerance for f64 rounding of the backoff arithmetic.
            let tol = Duration::from_nanos(10);
            assert!(
                interval + tol >= h_min,
                "interval {interval:?} < h_min {h_min:?}"
            );
            assert!(
                interval <= h_max + tol,
                "interval {interval:?} > h_max {h_max:?}"
            );
            assert_eq!(hb.on_heartbeat_sent(fire), (i + 1) as u32);
            prev_interval = interval;
            prev_fire = fire;
        }
    }
}

/// The variable scheme never sends more heartbeats than the fixed
/// scheme for any interval and parameters (§2.1.2).
#[test]
fn variable_overhead_never_exceeds_fixed() {
    let mut r = rng(0x0F48);
    for _ in 0..CASES {
        let dt = r.random_range(0.01f64..5000.0);
        let backoff = r.random_range(1.0f64..6.0);
        let cfg = HeartbeatConfig {
            h_min: Duration::from_millis(250),
            h_max: Duration::from_secs(32),
            backoff,
        };
        let v = analysis::variable_heartbeats_per_interval(dt, &cfg);
        let f = analysis::fixed_heartbeats_per_interval(dt, 0.25);
        assert!(v <= f, "dt={dt} backoff={backoff}: {v} > {f}");
    }
}

/// Log store: `contiguous_high` never claims a sequence that was not
/// inserted, under any insertion order and Count retention.
#[test]
fn logstore_contiguity_is_sound() {
    let mut r = rng(0x106);
    for _ in 0..CASES {
        let offsets = vec_of(&mut r, 120, 1, 60);
        let keep = r.random_range(1u64..20) as usize;
        let mut log = LogStore::new(Retention::Count(keep));
        let mut inserted = BTreeSet::new();
        let base = 100u32;
        for &o in &offsets {
            log.insert(Time::ZERO, Seq(base + o), Bytes::from_static(b"x"));
            inserted.insert(base + o);
        }
        if let Some(high) = log.contiguous_high() {
            let first = *inserted.iter().next().unwrap();
            for s in first..=high.raw() {
                assert!(
                    inserted.contains(&s),
                    "contiguous_high {high} covers never-inserted {s}"
                );
            }
        }
        assert!(log.len() <= keep);
    }
}

/// Whatever the store still holds is returned verbatim.
#[test]
fn logstore_get_returns_inserted_payload() {
    let mut r = rng(0x9E7);
    for _ in 0..CASES {
        let seqs: BTreeSet<u32> = vec_of(&mut r, 200, 1, 50).into_iter().collect();
        let mut log = LogStore::new(Retention::All);
        for &s in &seqs {
            log.insert(Time::ZERO, Seq(1000 + s), Bytes::from(format!("p{s}")));
        }
        for &s in &seqs {
            assert_eq!(log.get(Seq(1000 + s)), Some(Bytes::from(format!("p{s}"))));
        }
    }
}
