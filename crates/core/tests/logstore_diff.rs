//! Slab-vs-btree LogStore differential property tests.
//!
//! The segmented slab backend must be observably identical to the
//! original `BTreeMap` reference for every operation the protocol
//! performs. These seeded randomized loops (the offline stand-in for
//! proptest, same pattern as `proptests.rs`) drive both backends through
//! identical operation streams — inserts in and out of order, duplicate
//! inserts, retention pruning, span queries — and compare every
//! observable after every step. Dedicated edge tests cover sequence
//! wraparound and segment/word boundaries, where the slab's bit
//! arithmetic earns its keep.

use std::time::Duration;

use bytes::Bytes;
use lbrm_core::logstore::{LogStore, Retention, StoreBackend};
use lbrm_core::time::Time;
use lbrm_wire::packet::SeqRange;
use lbrm_wire::Seq;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn payload(seq: u32) -> Bytes {
    Bytes::from(seq.to_be_bytes().to_vec())
}

/// Asserts every observable of the two stores agrees; `span` bounds the
/// sequence window the run used so query probes stay in scope.
fn assert_equivalent(slab: &LogStore, btree: &LogStore, base: u32, span: u32, r: &mut SmallRng) {
    assert_eq!(slab.len(), btree.len());
    assert_eq!(slab.is_empty(), btree.is_empty());
    assert_eq!(slab.contiguous_high(), btree.contiguous_high());
    assert_eq!(slab.oldest(), btree.oldest());
    assert_eq!(slab.newest(), btree.newest());
    // Random point probes.
    for _ in 0..8 {
        let seq = Seq(base.wrapping_add(r.random_range(0u64..u64::from(span)) as u32));
        assert_eq!(slab.has(seq), btree.has(seq), "has({seq:?})");
        assert_eq!(slab.get(seq), btree.get(seq), "get({seq:?})");
    }
    // Random span probes (missing_in + collect_span).
    for _ in 0..4 {
        let a = r.random_range(0u64..u64::from(span)) as u32;
        let b = r.random_range(0u64..u64::from(span)) as u32;
        let first = Seq(base.wrapping_add(a.min(b)));
        let last = Seq(base.wrapping_add(a.max(b)));
        assert_eq!(
            slab.missing_in(first, last),
            btree.missing_in(first, last),
            "missing_in({first:?}, {last:?})"
        );
        let count = u64::from(a.max(b) - a.min(b)) + 1;
        let (mut sp, mut sm) = (Vec::new(), Vec::new());
        let (mut bp, mut bm) = (Vec::new(), Vec::new());
        slab.collect_span(first, count, &mut sp, &mut sm);
        btree.collect_span(first, count, &mut bp, &mut bm);
        assert_eq!(sp, bp, "collect_span present ({first:?}, {count})");
        assert_eq!(sm, bm, "collect_span missing ({first:?}, {count})");
    }
}

/// Full in-order iteration equality (O(n) — compared at run end).
fn assert_iter_equal(slab: &LogStore, btree: &LogStore) {
    let si: Vec<(Seq, &Bytes)> = slab.iter().collect();
    let bi: Vec<(Seq, &Bytes)> = btree.iter().collect();
    assert_eq!(si, bi);
}

/// One random run: identical op stream into both backends, observables
/// compared after every operation.
fn differential_run(seed: u64, base: u32, span: u32, retention: Retention) {
    let mut r = SmallRng::seed_from_u64(seed);
    let mut slab = LogStore::with_backend(retention, StoreBackend::Slab);
    let mut btree = LogStore::with_backend(retention, StoreBackend::Btree);
    let mut now = Time::ZERO;
    let ops = r.random_range(40u64..160) as usize;
    for _ in 0..ops {
        match r.random_range(0u64..10) {
            // Mostly inserts (including duplicates — same payload rule).
            0..=6 => {
                let seq = Seq(base.wrapping_add(r.random_range(0u64..u64::from(span)) as u32));
                let fresh_s = slab.insert(now, seq, payload(seq.raw()));
                let fresh_b = btree.insert(now, seq, payload(seq.raw()));
                assert_eq!(fresh_s, fresh_b, "insert({seq:?}) freshness");
            }
            // A short in-order burst (the common case).
            7 => {
                let start = r.random_range(0u64..u64::from(span)) as u32;
                for i in 0..r.random_range(1u64..20) as u32 {
                    let seq = Seq(base.wrapping_add(start).wrapping_add(i));
                    slab.insert(now, seq, payload(seq.raw()));
                    btree.insert(now, seq, payload(seq.raw()));
                }
            }
            // Time advances (drives Lifetime retention).
            8 => {
                now += Duration::from_millis(r.random_range(1u64..5_000));
            }
            // Explicit prune sweep at the current time.
            _ => {
                slab.prune(now);
                btree.prune(now);
            }
        }
        assert_equivalent(&slab, &btree, base, span, &mut r);
    }
    assert_iter_equal(&slab, &btree);
}

#[test]
fn randomized_differential_all_retention() {
    for seed in 0..24 {
        differential_run(0xD1FF + seed, 1_000, 40_000, Retention::All);
    }
}

#[test]
fn randomized_differential_count_retention() {
    for seed in 0..24 {
        // Caps below, at, and above one 4096-slot segment.
        let cap = [64, 1_000, 4_096, 9_000][seed as usize % 4];
        differential_run(0xC0DE + seed, 1_000, 40_000, Retention::Count(cap));
    }
}

#[test]
fn randomized_differential_lifetime_retention() {
    for seed in 0..24 {
        differential_run(
            0x11FE + seed,
            1_000,
            40_000,
            Retention::Lifetime(Duration::from_secs(10)),
        );
    }
}

#[test]
fn randomized_differential_across_seq_wraparound() {
    // Sequence windows straddling u32::MAX: the unwrapper maps them onto
    // one monotone line and both backends must agree bit-for-bit.
    for seed in 0..24 {
        differential_run(0x3A9 + seed, u32::MAX - 20_000, 40_000, Retention::All);
        differential_run(
            0x7B1 + seed,
            u32::MAX - 20_000,
            40_000,
            Retention::Count(2_000),
        );
    }
}

#[test]
fn wraparound_span_queries_cross_the_seam() {
    for backend in [StoreBackend::Slab, StoreBackend::Btree] {
        let mut store = LogStore::with_backend(Retention::All, backend);
        store.insert(Time::ZERO, Seq(u32::MAX - 1), payload(1));
        store.insert(Time::ZERO, Seq(1), payload(2));
        assert_eq!(
            store.missing_in(Seq(u32::MAX - 1), Seq(1)),
            vec![SeqRange {
                first: Seq(u32::MAX),
                last: Seq(0)
            }],
            "{backend:?}"
        );
        store.insert(Time::ZERO, Seq(u32::MAX), payload(3));
        store.insert(Time::ZERO, Seq(0), payload(4));
        assert_eq!(store.contiguous_high(), Some(Seq(1)), "{backend:?}");
        let seqs: Vec<Seq> = store.iter().map(|(s, _)| s).collect();
        assert_eq!(
            seqs,
            vec![Seq(u32::MAX - 1), Seq(u32::MAX), Seq(0), Seq(1)],
            "{backend:?}"
        );
    }
}

#[test]
fn segment_and_word_boundary_edges() {
    // Presence straddling the 4096-entry segment boundary and 64-bit
    // word boundaries, probed on both backends.
    let edges = [63u32, 64, 127, 4_095, 4_096, 8_191, 8_192];
    for backend in [StoreBackend::Slab, StoreBackend::Btree] {
        let mut store = LogStore::with_backend(Retention::All, backend);
        for &e in &edges {
            store.insert(Time::ZERO, Seq(e), payload(e));
        }
        for &e in &edges {
            assert!(store.has(Seq(e)), "{backend:?} has({e})");
            if !edges.contains(&(e + 1)) {
                assert!(!store.has(Seq(e + 1)), "{backend:?} !has({})", e + 1);
            }
            assert_eq!(store.get(Seq(e)), Some(payload(e)), "{backend:?}");
        }
        // The missing runs between edges coalesce exactly.
        assert_eq!(
            store.missing_in(Seq(63), Seq(8_192)),
            vec![
                SeqRange {
                    first: Seq(65),
                    last: Seq(126)
                },
                SeqRange {
                    first: Seq(128),
                    last: Seq(4_094)
                },
                SeqRange {
                    first: Seq(4_097),
                    last: Seq(8_190)
                },
            ],
            "{backend:?}"
        );
    }
}

#[test]
fn count_prune_at_exact_segment_multiples() {
    // Retention exactly at segment-size multiples exercises the slab's
    // whole-segment drop path with an empty head trim.
    for cap in [4_096usize, 8_192] {
        let mut slab = LogStore::with_backend(Retention::Count(cap), StoreBackend::Slab);
        let mut btree = LogStore::with_backend(Retention::Count(cap), StoreBackend::Btree);
        for i in 0..20_000u32 {
            slab.insert(Time::ZERO, Seq(i), payload(i));
            btree.insert(Time::ZERO, Seq(i), payload(i));
        }
        assert_eq!(slab.len(), cap);
        assert_eq!(slab.len(), btree.len());
        assert_eq!(slab.oldest(), btree.oldest());
        assert_eq!(slab.newest(), btree.newest());
        let si: Vec<Seq> = slab.iter().map(|(s, _)| s).collect();
        let bi: Vec<Seq> = btree.iter().map(|(s, _)| s).collect();
        assert_eq!(si, bi);
    }
}
