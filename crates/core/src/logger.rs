//! The logging server (§2.2): primary, replica, or per-site secondary.
//!
//! One machine covers all three roles — the paper notes the
//! implementation is "reusable across different components of the system
//! because of the recursive nature of the distributed logging
//! architecture":
//!
//! * A **primary** logs everything the source multicasts (plus unicast
//!   handoffs), acknowledges it to the source with the dual
//!   primary/replica sequence numbers of §2.2.3, replicates the log to
//!   replicas, and serves retransmission requests. Packets it missed it
//!   fetches from the source itself.
//! * A **replica** mirrors the primary via the replication stream and can
//!   be promoted on primary failure.
//! * A **secondary** serves one site: it logs the multicast stream,
//!   recovers its own misses from its parent (normally the primary) so at
//!   most one NACK per site crosses the tail circuit, answers receivers'
//!   NACKs, re-multicasts site-scoped repairs when many receivers lost
//!   the same packet, answers discovery queries, and volunteers as a
//!   Designated Acker (§2.3).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lbrm_wire::packet::SeqRange;
use lbrm_wire::{EpochId, GroupId, HostId, Packet, Seq, SourceId, TtlScope};

use crate::gaps::{GapTracker, SeqUnwrapper};
use crate::logstore::{LogStore, Retention, StoreBackend};
use crate::machine::{Action, Actions, Machine, Notice};
use crate::time::{earliest, Time};
use crate::trace::{ProtocolEvent, Tracer};

/// The role a logger currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggerRole {
    /// The source's primary logging server.
    Primary,
    /// A replica of the primary log (promotion candidate).
    Replica,
    /// A site-level secondary logging server.
    Secondary,
}

/// Logger configuration.
#[derive(Debug, Clone)]
pub struct LoggerConfig {
    /// Group served.
    pub group: GroupId,
    /// Source served.
    pub source: SourceId,
    /// Host this logger runs on.
    pub host: HostId,
    /// Initial role.
    pub role: LoggerRole,
    /// Hierarchy level advertised in discovery replies (0 = primary).
    pub level: u8,
    /// Where to fetch missing packets: the primary for secondaries, the
    /// source host for the primary.
    pub parent: HostId,
    /// The source's host (failover queries, acker unicasts).
    pub source_host: HostId,
    /// Log retention policy.
    pub retention: Retention,
    /// Replicas to mirror to (primary role only).
    pub replicas: Vec<HostId>,
    /// Replication retransmit interval.
    pub repl_retry: Duration,
    /// Delay between detecting a miss and NACKing the parent — gives the
    /// source's statistical-ack re-multicast a chance to repair first
    /// (§2.3.2 suggests `t_wait − h_min`).
    pub nack_delay: Duration,
    /// Retry interval for unanswered parent fetches.
    pub fetch_retry: Duration,
    /// Fetch attempts before concluding the parent is gone and asking
    /// the source to locate the current primary.
    pub fetch_attempts_max: u32,
    /// Total fetch attempts for one packet before abandoning it as
    /// unrecoverable.
    pub fetch_abandon_attempts: u32,
    /// Distinct requesters for one packet within
    /// [`remulticast_window`](Self::remulticast_window) that trigger a
    /// site-scoped multicast repair instead of unicasts.
    pub remulticast_threshold: usize,
    /// Window for the re-multicast decision.
    pub remulticast_window: Duration,
    /// Use the §2.2.1 site-scoped re-multicast repair shortcut. Enable
    /// only when this logger's clientele is site-local (a site
    /// secondary serving its LAN's receivers); mid-hierarchy loggers
    /// whose requesters are child loggers at *other* sites must serve by
    /// unicast.
    pub site_remulticast: bool,
    /// Volunteer as Designated Acker when selection packets arrive
    /// (secondaries).
    pub volunteer: bool,
    /// Answer discovery queries.
    pub answer_discovery: bool,
    /// Determinism seed for the volunteer coin.
    pub seed: u64,
    /// Log-store backend; `None` defers to the `LBRM_LOG_STORE`
    /// environment variable (the differential tests pass both variants
    /// explicitly).
    pub store_backend: Option<StoreBackend>,
}

impl LoggerConfig {
    /// A primary logger on `host` for `group`/`source`, fetching misses
    /// from the source at `source_host`.
    pub fn primary(group: GroupId, source: SourceId, host: HostId, source_host: HostId) -> Self {
        LoggerConfig {
            group,
            source,
            host,
            role: LoggerRole::Primary,
            level: 0,
            parent: source_host,
            source_host,
            retention: Retention::All,
            replicas: Vec::new(),
            repl_retry: Duration::from_millis(500),
            nack_delay: Duration::from_millis(20),
            fetch_retry: Duration::from_millis(500),
            fetch_attempts_max: 5,
            fetch_abandon_attempts: 24,
            remulticast_threshold: 3,
            remulticast_window: Duration::from_millis(500),
            site_remulticast: false,
            volunteer: false,
            answer_discovery: true,
            seed: host.raw(),
            store_backend: None,
        }
    }

    /// A site secondary on `host`, fetching from `primary`.
    pub fn secondary(
        group: GroupId,
        source: SourceId,
        host: HostId,
        primary: HostId,
        source_host: HostId,
    ) -> Self {
        LoggerConfig {
            role: LoggerRole::Secondary,
            level: 1,
            parent: primary,
            volunteer: true,
            site_remulticast: true,
            nack_delay: Duration::from_millis(100),
            ..LoggerConfig::primary(group, source, host, source_host)
        }
    }

    /// A replica of `primary`.
    pub fn replica(
        group: GroupId,
        source: SourceId,
        host: HostId,
        primary: HostId,
        source_host: HostId,
    ) -> Self {
        LoggerConfig {
            role: LoggerRole::Replica,
            level: 0,
            parent: primary,
            ..LoggerConfig::primary(group, source, host, source_host)
        }
    }
}

#[derive(Debug, Clone)]
struct PendingFetch {
    seq: Seq,
    requesters: BTreeSet<HostId>,
    next_fetch_at: Time,
    attempts: u32,
    total_attempts: u32,
}

#[derive(Debug, Clone)]
struct RepairWindow {
    requesters: BTreeSet<HostId>,
    opened: Time,
    /// When a site-scoped multicast repair was sent within this window.
    multicast_at: Option<Time>,
}

/// The logging-server state machine.
pub struct Logger {
    config: LoggerConfig,
    role: LoggerRole,
    parent: HostId,
    store: LogStore,
    gaps: GapTracker,
    unwrapper: SeqUnwrapper,
    rng: SmallRng,
    /// Misses awaiting recovery from the parent, keyed by unwrapped index.
    pending: BTreeMap<u64, PendingFetch>,
    /// Recent repair requests per packet (re-multicast decision).
    repairs: BTreeMap<u64, RepairWindow>,
    /// Epochs this logger volunteered for (most recent last).
    volunteered: VecDeque<EpochId>,
    /// Primary role: per-replica contiguous-acked end index.
    repl_acked: BTreeMap<HostId, u64>,
    /// Primary role: next replication retry.
    repl_next_at: Option<Time>,
    /// Last LogAck values sent, to avoid repeats.
    last_logack: Option<(u64, u64)>,
    /// Highest election term promised to a proposer (a voter never
    /// promises the same term twice).
    promised_term: u32,
    /// The log-authority term this logger last observed.
    term: u32,
    /// Leader of [`term`](Self::term), as last announced.
    known_leader: HostId,
    /// Hosts deposed by a later term, mapped to the term under which
    /// they last held authority; their log traffic is fenced.
    deposed: BTreeMap<HostId, u32>,
    /// Periodic retention sweep.
    next_prune_at: Time,
    /// Reusable scratch for batched NACK serving (held payloads).
    serve_scratch: Vec<(Seq, Bytes)>,
    /// Reusable scratch for batched NACK serving (missing runs).
    missing_scratch: Vec<SeqRange>,
    tracer: Tracer,
}

impl Logger {
    /// Creates a logger.
    pub fn new(config: LoggerConfig) -> Self {
        Logger {
            role: config.role,
            parent: config.parent,
            store: match config.store_backend {
                Some(backend) => LogStore::with_backend(config.retention, backend),
                None => LogStore::new(config.retention),
            },
            gaps: GapTracker::new(),
            unwrapper: SeqUnwrapper::new(),
            rng: SmallRng::seed_from_u64(config.seed),
            pending: BTreeMap::new(),
            repairs: BTreeMap::new(),
            volunteered: VecDeque::new(),
            repl_acked: BTreeMap::new(),
            repl_next_at: None,
            last_logack: None,
            promised_term: 0,
            term: 0,
            known_leader: if config.role == LoggerRole::Primary {
                config.host
            } else {
                config.parent
            },
            deposed: BTreeMap::new(),
            next_prune_at: Time::ZERO + Duration::from_secs(1),
            serve_scratch: Vec::new(),
            missing_scratch: Vec::new(),
            tracer: Tracer::disabled(),
            config,
        }
    }

    /// Attaches a protocol-event tracer (see [`crate::trace`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.with_host(self.config.host);
    }

    /// The role label announced in the trace stream (forensic
    /// repair-source attribution keys off it).
    fn role_label(&self) -> &'static str {
        match self.role {
            LoggerRole::Primary => "logger_primary",
            LoggerRole::Secondary => "logger_secondary",
            LoggerRole::Replica => "logger_replica",
        }
    }

    /// Current role (changes on promotion).
    pub fn role(&self) -> LoggerRole {
        self.role
    }

    /// The parent currently used for recovery.
    pub fn parent(&self) -> HostId {
        self.parent
    }

    /// The log-authority term this logger last observed.
    pub fn term(&self) -> u32 {
        self.term
    }

    /// Number of packets currently held in the log.
    pub fn log_len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the log holds `seq`.
    pub fn has(&self, seq: Seq) -> bool {
        self.store.has(seq)
    }

    /// Highest contiguously logged sequence.
    pub fn contiguous_high(&self) -> Option<Seq> {
        self.store.contiguous_high()
    }

    /// Read access to the packet log — e.g. for the §4.4 factory
    /// record-keeping ("LBRM already provides this logging as part of
    /// the lost packet recovery mechanism").
    pub fn store(&self) -> &LogStore {
        &self.store
    }

    /// Serves one retransmission request for `seq` from `requester`,
    /// applying the §2.2.1 re-multicast heuristic.
    ///
    /// The site-scoped multicast only reaches requesters *inside* the
    /// logger's site, which is the normal clientele of a site secondary.
    /// Any request arriving after the multicast went out is therefore
    /// evidence the requester did not receive it (a remote child logger,
    /// or a local member that lost the repair too) and is answered by
    /// unicast — the shortcut degrades safely instead of starving anyone.
    fn serve(&mut self, now: Time, seq: Seq, payload: Bytes, requester: HostId, out: &mut Actions) {
        if self.role == LoggerRole::Primary {
            // Record which term this authoritative serve happened
            // under — the forensic split-brain detector keys off it.
            let term = self.term;
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::AuthorityServe { seq, term });
        }
        // Fast path: a logger that can never site-remulticast — primary,
        // replica, or the shortcut disabled — answers by unicast without
        // any repair-window bookkeeping. The window only exists to make
        // (and remember) the multicast decision.
        if self.role != LoggerRole::Secondary
            || !self.config.site_remulticast
            || self.config.remulticast_threshold == usize::MAX
        {
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::RetransServed {
                    seq,
                    multicast: false,
                    to: requester,
                });
            out.push(Action::Unicast {
                to: requester,
                packet: Packet::Retrans {
                    group: self.config.group,
                    source: self.config.source,
                    seq,
                    payload,
                },
            });
            return;
        }
        let idx = self.unwrapper.peek(seq);
        let window = self.repairs.entry(idx).or_insert(RepairWindow {
            requesters: BTreeSet::new(),
            opened: now,
            multicast_at: None,
        });
        if now.since(window.opened) > self.config.remulticast_window {
            window.requesters.clear();
            window.opened = now;
            window.multicast_at = None;
        }
        window.requesters.insert(requester);
        let packet = Packet::Retrans {
            group: self.config.group,
            source: self.config.source,
            seq,
            payload,
        };
        if let Some(at) = window.multicast_at {
            if now > at {
                // This request postdates the multicast repair: the
                // requester evidently did not get it.
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::RetransServed {
                        seq,
                        multicast: false,
                        to: requester,
                    });
                out.push(Action::Unicast {
                    to: requester,
                    packet,
                });
            }
            return;
        }
        if window.requesters.len() >= self.config.remulticast_threshold
            && self.role == LoggerRole::Secondary
            && self.config.site_remulticast
        {
            window.multicast_at = Some(now);
            let requesters = window.requesters.len();
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::RetransServed {
                    seq,
                    multicast: true,
                    to: requester,
                });
            out.push(Action::Multicast {
                scope: TtlScope::Site,
                packet,
            });
            out.push(Action::Notice(Notice::SiteRemulticast { seq, requesters }));
        } else {
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::RetransServed {
                    seq,
                    multicast: false,
                    to: requester,
                });
            out.push(Action::Unicast {
                to: requester,
                packet,
            });
        }
    }

    /// Registers `seq` as missing; `requester` (if any) is served once it
    /// arrives. Self-detected misses wait `nack_delay` before the first
    /// fetch; child-driven misses fetch immediately (the child already
    /// waited its own delay).
    fn want(&mut self, now: Time, seq: Seq, requester: Option<HostId>) {
        if self.store.has(seq) {
            return;
        }
        let idx = self.unwrapper.unwrap(seq);
        let delay = if requester.is_some() {
            Duration::ZERO
        } else {
            self.config.nack_delay
        };
        let entry = self.pending.entry(idx).or_insert(PendingFetch {
            seq,
            requesters: BTreeSet::new(),
            next_fetch_at: now + delay,
            attempts: 0,
            total_attempts: 0,
        });
        if let Some(r) = requester {
            entry.requesters.insert(r);
            // Pull the fetch forward only if none has gone out yet — a
            // child's request must not duplicate an in-flight fetch.
            if entry.attempts == 0 {
                entry.next_fetch_at = entry.next_fetch_at.min(now);
            }
        }
    }

    /// Ingests a packet payload into the log; serves pending requesters;
    /// returns `true` if it was new.
    fn ingest(&mut self, now: Time, seq: Seq, payload: Bytes, out: &mut Actions) -> bool {
        let fresh = self.store.insert(now, seq, payload);
        if fresh {
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::PacketLogged { seq });
        }
        self.gaps.observe(seq);
        let idx = self.unwrapper.peek(seq);
        if let Some(pending) = self.pending.remove(&idx) {
            // Serve from the store (not the ingest argument): on a
            // duplicate insert the store kept the *original* buffer, and
            // every serve must share it.
            if let Some(payload) = self.store.get(seq) {
                for r in pending.requesters {
                    self.serve(now, seq, payload.clone(), r, out);
                }
            }
        }
        if fresh {
            // Note newly visible gaps for self-recovery.
            for range in self.gaps.missing_ranges(64) {
                for missing in range.iter().take(256) {
                    self.want(now, missing, None);
                }
            }
            if self.role == LoggerRole::Primary {
                self.replicate(now, out);
                self.maybe_logack(out);
            }
        }
        fresh
    }

    /// Primary: pushes un-acked contiguous log to replicas.
    fn replicate(&mut self, now: Time, out: &mut Actions) {
        if self.role != LoggerRole::Primary || self.config.replicas.is_empty() {
            return;
        }
        let Some(high) = self.store.contiguous_high() else {
            return;
        };
        let high_idx = self.unwrapper.peek(high);
        let replicas: Vec<HostId> = self
            .config
            .replicas
            .iter()
            .copied()
            .filter(|&r| r != self.config.host)
            .collect();
        for r in replicas {
            let acked_end = *self.repl_acked.entry(r).or_insert(0);
            let start = acked_end.max(self.unwrapper.peek(self.store.oldest().unwrap_or(high)));
            for idx in start..=high_idx {
                let seq = SeqUnwrapper::rewrap(idx);
                if let Some(payload) = self.store.get(seq) {
                    out.push(Action::Unicast {
                        to: r,
                        packet: Packet::ReplUpdate {
                            group: self.config.group,
                            source: self.config.source,
                            seq,
                            payload,
                        },
                    });
                }
            }
        }
        self.repl_next_at = Some(now + self.config.repl_retry);
    }

    /// Primary: highest contiguous index replicated anywhere.
    fn best_replica_end(&self) -> u64 {
        self.repl_acked.values().copied().max().unwrap_or(0)
    }

    /// Primary: sends `LogAck` to the source when state advanced.
    fn maybe_logack(&mut self, out: &mut Actions) {
        if self.role != LoggerRole::Primary {
            return;
        }
        let Some(high) = self.store.contiguous_high() else {
            return;
        };
        let high_idx = self.unwrapper.peek(high);
        let replica_end = if self.config.replicas.is_empty() {
            // No replication configured: the primary's own log is the
            // strongest guarantee available.
            high_idx + 1
        } else {
            self.best_replica_end()
        };
        let state = (high_idx, replica_end);
        if self.last_logack == Some(state) {
            return;
        }
        self.last_logack = Some(state);
        let replica_seq = if replica_end == 0 {
            Seq::ZERO
        } else {
            SeqUnwrapper::rewrap(replica_end - 1)
        };
        out.push(Action::Unicast {
            to: self.config.source_host,
            packet: Packet::LogAck {
                group: self.config.group,
                source: self.config.source,
                primary_seq: high,
                replica_seq,
            },
        });
    }

    fn promote(&mut self, now: Time, out: &mut Actions) {
        if self.role == LoggerRole::Primary {
            return;
        }
        self.role = LoggerRole::Primary;
        self.level_is_primary();
        self.parent = self.config.source_host;
        self.known_leader = self.config.host;
        let host = self.config.host;
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::FailoverPromoted {
                new_primary: host,
            });
        // Re-announce so forensic repair attribution tracks the new role.
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::RoleAnnounced {
                role: "logger_primary",
            });
        out.push(Action::Notice(Notice::Promoted {
            new_primary: self.config.host,
        }));
        self.replicate(now, out);
        self.last_logack = None;
        self.maybe_logack(out);
    }

    fn level_is_primary(&mut self) {
        self.config.level = 0;
    }

    fn level(&self) -> u8 {
        self.config.level
    }
}

impl Machine for Logger {
    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.with_host(self.config.host);
    }

    fn on_start(&mut self, now: Time, _out: &mut Actions) {
        let role = self.role_label();
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::RoleAnnounced { role });
    }

    fn on_packet(&mut self, now: Time, from: HostId, packet: Packet, out: &mut Actions) {
        let (group, source) = (self.config.group, self.config.source);
        // Fencing: a host deposed by a later term has no log authority;
        // its serves, replication pushes and primary claims are dropped.
        if let Some(&stale) = self.deposed.get(&from) {
            if matches!(
                packet,
                Packet::Retrans { .. } | Packet::ReplUpdate { .. } | Packet::PrimaryIs { .. }
            ) {
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::StaleTermFenced {
                        from,
                        term: stale,
                    });
                return;
            }
        }
        match packet {
            Packet::Data {
                group: g,
                source: s,
                seq,
                epoch,
                payload,
            } if g == group && s == source => {
                self.ingest(now, seq, payload, out);
                // Designated Acker duty (§2.3.1): ACK data of volunteered
                // epochs, including source re-multicasts.
                if self.volunteered.contains(&epoch) {
                    out.push(Action::Unicast {
                        to: self.config.source_host,
                        packet: Packet::PacketAck {
                            group,
                            source,
                            epoch,
                            seq,
                            logger: self.config.host,
                        },
                    });
                }
            }
            Packet::Retrans {
                group: g,
                source: s,
                seq,
                payload,
            } if g == group && s == source => {
                self.ingest(now, seq, payload, out);
            }
            Packet::Heartbeat {
                group: g,
                source: s,
                seq,
                payload,
                ..
            } if g == group && s == source => {
                if !payload.is_empty() {
                    // §7 extension: heartbeat repeats the last payload.
                    self.ingest(now, seq, payload, out);
                } else {
                    let newly = self.gaps.observe_announced(seq);
                    if newly > 0 {
                        for range in self.gaps.missing_ranges(64) {
                            for missing in range.iter().take(256) {
                                self.want(now, missing, None);
                            }
                        }
                    }
                }
            }
            // Bundling contract: every repair this arm emits for one
            // NACK goes to one `requester`, and `collect_span` hands
            // back each range's held payloads in sequence order — so
            // the actions land in `out` as one contiguous run of
            // unicast retransmissions to the same destination. The
            // endpoint's outbound batcher relies on exactly this
            // adjacency to coalesce a served span into MTU-full bundled
            // datagrams without reordering anything (pinned by
            // `nack_span_repairs_are_one_contiguous_unicast_run`).
            Packet::Nack {
                group: g,
                source: s,
                requester,
                ranges,
            } if g == group && s == source => {
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::NackReceived {
                        from: requester,
                        packets: ranges
                            .iter()
                            .map(|r| r.len().min(u64::from(u32::MAX)) as u32)
                            .sum(),
                    });
                for range in ranges {
                    // Mirror `SeqRange::iter()` semantics: an inverted
                    // range yields nothing, and at most 512 sequences of
                    // one range are honored (implosion guard).
                    if range.last.before(range.first) {
                        continue;
                    }
                    let count = (u64::from(range.last.distance_from(range.first)) + 1).min(512);
                    // One span scan partitions the range into held
                    // payloads and missing runs — no per-seq store calls.
                    let mut present = std::mem::take(&mut self.serve_scratch);
                    let mut missing = std::mem::take(&mut self.missing_scratch);
                    self.store
                        .collect_span(range.first, count, &mut present, &mut missing);
                    for (seq, payload) in present.drain(..) {
                        self.serve(now, seq, payload, requester, out);
                    }
                    for run in missing.drain(..) {
                        for seq in run.iter() {
                            self.want(now, seq, Some(requester));
                        }
                    }
                    self.serve_scratch = present;
                    self.missing_scratch = missing;
                }
            }
            Packet::ReplUpdate {
                group: g,
                source: s,
                seq,
                payload,
            } if g == group && s == source => {
                self.ingest(now, seq, payload, out);
                if let Some(high) = self.store.contiguous_high() {
                    out.push(Action::Unicast {
                        to: from,
                        packet: Packet::ReplAck {
                            group,
                            source,
                            seq: high,
                        },
                    });
                }
            }
            Packet::ReplAck {
                group: g,
                source: s,
                seq,
            } if g == group && s == source && self.role == LoggerRole::Primary => {
                let end = self.unwrapper.peek(seq) + 1;
                let e = self.repl_acked.entry(from).or_insert(0);
                if end > *e {
                    *e = end;
                    self.maybe_logack(out);
                }
            }
            Packet::AckerSelect {
                group: g,
                source: s,
                epoch,
                p_ack,
            } if g == group
                && s == source
                && self.config.volunteer
                && self.role == LoggerRole::Secondary
                && p_ack > 0.0
                && self.rng.random_bool(p_ack.min(1.0)) =>
            {
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::AckerVolunteered { epoch });
                self.volunteered.push_back(epoch);
                while self.volunteered.len() > 2 {
                    self.volunteered.pop_front();
                }
                out.push(Action::Unicast {
                    to: self.config.source_host,
                    packet: Packet::AckerVolunteer {
                        group,
                        source,
                        epoch,
                        logger: self.config.host,
                    },
                });
            }
            Packet::DiscoveryQuery {
                group: g,
                nonce,
                requester,
            } if g == group && self.config.answer_discovery => {
                out.push(Action::Unicast {
                    to: requester,
                    packet: Packet::DiscoveryReply {
                        group,
                        nonce,
                        logger: self.config.host,
                        level: self.level(),
                    },
                });
            }
            Packet::LocatePrimary {
                group: g,
                source: s,
                requester,
            } if g == group
                && s == source
                && self.role == LoggerRole::Replica
                && from == self.config.source_host =>
            {
                // Failover state query from the source (§2.2.3):
                // report our log state, reusing LogAck.
                let high = self.store.contiguous_high().unwrap_or(Seq::ZERO);
                out.push(Action::Unicast {
                    to: requester,
                    packet: Packet::LogAck {
                        group,
                        source,
                        primary_seq: high,
                        replica_seq: high,
                    },
                });
            }
            Packet::PrimaryIs {
                group: g,
                source: s,
                primary,
            } if g == group && s == source => {
                if primary == self.config.host {
                    self.promote(now, out);
                } else if self.role != LoggerRole::Primary {
                    // Refresh the cached primary pointer; retry pending
                    // fetches there immediately.
                    self.parent = primary;
                    for p in self.pending.values_mut() {
                        p.attempts = 0;
                        p.next_fetch_at = now;
                    }
                }
            }
            Packet::ElectPrepare {
                group: g,
                source: s,
                term,
                ..
            } if g == group && s == source && self.role == LoggerRole::Replica
                // Prepare/promise (§2.2.3 hardened): vote at most once
                // per term, reporting the contiguous log end so the
                // proposer can pick the most up-to-date replica.
                && term > self.promised_term =>
            {
                self.promised_term = term;
                let high = self.store.contiguous_high().unwrap_or(Seq::ZERO);
                out.push(Action::Unicast {
                    to: from,
                    packet: Packet::ElectPromise {
                        group,
                        source,
                        term,
                        voter: self.config.host,
                        log_end: high,
                    },
                });
            }
            Packet::TermAnnounce {
                group: g,
                source: s,
                term,
                leader,
            } if g == group && s == source && term > self.term => {
                let old = self.known_leader;
                if old != leader {
                    self.deposed.insert(old, self.term);
                }
                self.deposed.remove(&leader);
                self.term = term;
                self.promised_term = self.promised_term.max(term);
                self.known_leader = leader;
                if leader == self.config.host {
                    self.promote(now, out);
                } else {
                    if self.role == LoggerRole::Primary {
                        // Deposed: step down to a replica of the
                        // new leader.
                        self.role = LoggerRole::Replica;
                        self.repl_next_at = None;
                        self.tracer
                            .emit(now.nanos(), || ProtocolEvent::RoleAnnounced {
                                role: "logger_replica",
                            });
                    }
                    // Retarget recovery at the new leader.
                    self.parent = leader;
                    for p in self.pending.values_mut() {
                        p.attempts = 0;
                        p.next_fetch_at = now;
                    }
                }
            }
            _ => {}
        }
    }

    fn poll(&mut self, now: Time, out: &mut Actions) {
        // Parent fetches.
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.next_fetch_at)
            .map(|(&i, _)| i)
            .collect();
        if !due.is_empty() {
            let mut ranges: Vec<SeqRange> = Vec::new();
            let mut escalate = false;
            for idx in due {
                let p = self.pending.get_mut(&idx).expect("due fetch");
                if p.total_attempts >= self.config.fetch_abandon_attempts {
                    // Unrecoverable (pre-origin, or aged out of every
                    // upstream log): stop asking.
                    self.pending.remove(&idx);
                    continue;
                }
                p.attempts += 1;
                p.total_attempts += 1;
                p.next_fetch_at = now + self.config.fetch_retry;
                if p.attempts > self.config.fetch_attempts_max {
                    // Periodically re-escalate while still retrying.
                    escalate = true;
                    p.attempts = 0;
                }
                match ranges.last_mut() {
                    Some(last) if last.last.next() == p.seq => last.last = p.seq,
                    _ => ranges.push(SeqRange::single(p.seq)),
                }
            }
            if !ranges.is_empty() {
                let target = self.parent;
                self.tracer.emit(now.nanos(), || ProtocolEvent::NackSent {
                    target,
                    packets: ranges
                        .iter()
                        .map(|r| r.len().min(u64::from(u32::MAX)) as u32)
                        .sum(),
                    first: ranges.first().expect("nonempty batch").first,
                    last: ranges.last().expect("nonempty batch").last,
                });
                out.push(Action::Unicast {
                    to: self.parent,
                    packet: Packet::Nack {
                        group: self.config.group,
                        source: self.config.source,
                        requester: self.config.host,
                        ranges,
                    },
                });
            }
            if escalate && self.role == LoggerRole::Secondary {
                // The parent looks dead: ask the source who is primary
                // now; a PrimaryIs answer redirects pending fetches.
                let primary = self.parent;
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::PrimaryUnresponsive {
                        primary,
                    });
                out.push(Action::Notice(Notice::PrimaryUnresponsive {
                    primary: self.parent,
                }));
                out.push(Action::Unicast {
                    to: self.config.source_host,
                    packet: Packet::LocatePrimary {
                        group: self.config.group,
                        source: self.config.source,
                        requester: self.config.host,
                    },
                });
            }
        }
        // Replication retries.
        if let Some(at) = self.repl_next_at {
            if now >= at {
                let behind = self.repl_acked.values().any(|&end| {
                    end < self
                        .store
                        .contiguous_high()
                        .map_or(0, |h| self.unwrapper.peek(h) + 1)
                }) || self.repl_acked.len()
                    < self
                        .config
                        .replicas
                        .iter()
                        .filter(|&&r| r != self.config.host)
                        .count();
                if behind {
                    self.replicate(now, out);
                } else {
                    self.repl_next_at = None;
                }
            }
        }
        // Retention sweep.
        if now >= self.next_prune_at {
            self.store.prune(now);
            self.next_prune_at = now + Duration::from_secs(1);
            // Drop stale repair windows.
            let window = self.config.remulticast_window;
            self.repairs.retain(|_, w| now.since(w.opened) <= window);
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        let mut d = self.pending.values().map(|p| p.next_fetch_at).min();
        d = earliest(d, self.repl_next_at);
        if !self.store.is_empty() {
            d = earliest(d, Some(self.next_prune_at));
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::notices;

    const GROUP: GroupId = GroupId(1);
    const SRC: SourceId = SourceId(10);
    const SRC_HOST: HostId = HostId(100);
    const PRIMARY: HostId = HostId(200);
    const SECONDARY: HostId = HostId(300);
    const RX: HostId = HostId(400);

    fn data(seq: u32, payload: &'static str) -> Packet {
        Packet::Data {
            group: GROUP,
            source: SRC,
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(payload.as_bytes()),
        }
    }

    fn nack(requester: HostId, seq: u32) -> Packet {
        Packet::Nack {
            group: GROUP,
            source: SRC,
            requester,
            ranges: vec![SeqRange::single(Seq(seq))],
        }
    }

    fn secondary() -> Logger {
        Logger::new(LoggerConfig::secondary(
            GROUP, SRC, SECONDARY, PRIMARY, SRC_HOST,
        ))
    }

    fn primary() -> Logger {
        Logger::new(LoggerConfig::primary(GROUP, SRC, PRIMARY, SRC_HOST))
    }

    #[test]
    fn logs_and_serves_from_store() {
        let mut l = secondary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "one"), &mut out);
        assert!(l.has(Seq(1)));
        out.clear();
        l.on_packet(Time::from_millis(5), RX, nack(RX, 1), &mut out);
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::Retrans { seq, .. } }]
                if *to == RX && *seq == Seq(1)
        ));
    }

    #[test]
    fn miss_fetched_from_parent_and_requester_served_on_arrival() {
        let mut l = secondary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "one"), &mut out);
        // Receiver asks for #2, which we don't have.
        out.clear();
        l.on_packet(Time::from_millis(10), RX, nack(RX, 2), &mut out);
        assert!(out.is_empty(), "nothing sent until poll");
        // Child-driven fetch goes out immediately on poll.
        let d = l.next_deadline().unwrap();
        assert!(d <= Time::from_millis(10));
        l.poll(d, &mut out);
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::Nack { requester, .. } }]
                if *to == PRIMARY && *requester == SECONDARY
        ));
        // Parent's retransmission arrives: log it and serve the receiver.
        out.clear();
        let retrans = Packet::Retrans {
            group: GROUP,
            source: SRC,
            seq: Seq(2),
            payload: Bytes::from_static(b"two"),
        };
        l.on_packet(Time::from_millis(50), PRIMARY, retrans, &mut out);
        assert!(l.has(Seq(2)));
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::Retrans { seq, .. } }]
                if *to == RX && *seq == Seq(2)
        ));
    }

    #[test]
    fn nack_span_repairs_are_one_contiguous_unicast_run() {
        // The bundling contract documented on the NACK arm: one span
        // NACK is answered by an uninterrupted run of unicast
        // retransmissions to the requester, in sequence order — the
        // adjacency the endpoint's outbound batcher turns into bundled
        // datagrams.
        let mut l = primary();
        let mut out = Actions::new();
        for seq in 1..=16u32 {
            l.on_packet(Time::ZERO, SRC_HOST, data(seq, "payload"), &mut out);
        }
        out.clear();
        let span = Packet::Nack {
            group: GROUP,
            source: SRC,
            requester: RX,
            ranges: vec![SeqRange {
                first: Seq(3),
                last: Seq(14),
            }],
        };
        l.on_packet(Time::from_millis(5), RX, span, &mut out);
        let served: Vec<Seq> = out
            .iter()
            .map(|a| match a {
                Action::Unicast {
                    to,
                    packet: Packet::Retrans { seq, .. },
                } if *to == RX => *seq,
                other => panic!("non-repair action interleaved: {other:?}"),
            })
            .collect();
        let expect: Vec<Seq> = (3..=14).map(Seq).collect();
        assert_eq!(served, expect, "contiguous, ordered, same-requester");
    }

    #[test]
    fn one_upstream_nack_for_many_local_requesters() {
        // §2.2.2: 20 receivers at a site lose a packet; exactly one NACK
        // crosses to the primary.
        let mut l = secondary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "one"), &mut out);
        out.clear();
        for i in 0..20 {
            l.on_packet(
                Time::from_millis(10),
                HostId(500 + i),
                nack(HostId(500 + i), 2),
                &mut out,
            );
        }
        let d = l.next_deadline().unwrap();
        l.poll(d, &mut out);
        let upstream: Vec<_> = out
            .iter()
            .filter(|a| matches!(a, Action::Unicast { to, packet: Packet::Nack { .. } } if *to == PRIMARY))
            .collect();
        assert_eq!(upstream.len(), 1);
        // Re-polling before the retry interval sends nothing more.
        out.clear();
        l.poll(d + Duration::from_millis(1), &mut out);
        assert!(out.iter().all(|a| !matches!(
            a,
            Action::Unicast {
                packet: Packet::Nack { .. },
                ..
            }
        )));
    }

    #[test]
    fn gap_self_recovery_after_nack_delay() {
        let mut l = secondary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "a"), &mut out);
        l.on_packet(Time::from_millis(1), SRC_HOST, data(3, "c"), &mut out);
        // Gap at #2: fetch scheduled after nack_delay, not immediately.
        let d = l.next_deadline().unwrap();
        assert!(d >= Time::from_millis(1) + l.config.nack_delay);
        out.clear();
        l.poll(d, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Unicast { to, packet: Packet::Nack { .. } } if *to == PRIMARY
        )));
    }

    #[test]
    fn heartbeat_reveals_tail_loss() {
        let mut l = secondary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "a"), &mut out);
        let hb = Packet::Heartbeat {
            group: GROUP,
            source: SRC,
            seq: Seq(3),
            epoch: EpochId(0),
            hb_index: 1,
            payload: Bytes::new(),
        };
        l.on_packet(Time::from_millis(250), SRC_HOST, hb, &mut out);
        let d = l.next_deadline().unwrap();
        out.clear();
        l.poll(d, &mut out);
        let nacked: Vec<u32> = out
            .iter()
            .filter_map(|a| match a {
                Action::Unicast {
                    packet: Packet::Nack { ranges, .. },
                    ..
                } => Some(
                    ranges
                        .iter()
                        .flat_map(|r| r.iter())
                        .map(|s| s.raw())
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(nacked, vec![2, 3]);
    }

    #[test]
    fn remulticast_after_threshold_requesters() {
        let mut l = secondary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "a"), &mut out);
        out.clear();
        // Three distinct receivers ask (threshold = 3): first two get
        // unicasts, the third triggers a site-scoped multicast.
        l.on_packet(
            Time::from_millis(1),
            HostId(501),
            nack(HostId(501), 1),
            &mut out,
        );
        l.on_packet(
            Time::from_millis(2),
            HostId(502),
            nack(HostId(502), 1),
            &mut out,
        );
        let unicasts = out
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Unicast {
                        packet: Packet::Retrans { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(unicasts, 2);
        out.clear();
        l.on_packet(
            Time::from_millis(3),
            HostId(503),
            nack(HostId(503), 1),
            &mut out,
        );
        assert!(matches!(
            &out[..],
            [
                Action::Multicast {
                    scope: TtlScope::Site,
                    packet: Packet::Retrans { .. }
                },
                Action::Notice(Notice::SiteRemulticast { requesters: 3, .. })
            ]
        ));
        // A fourth request *after* the multicast is evidence the
        // requester missed it: served by unicast, never starved.
        out.clear();
        l.on_packet(
            Time::from_millis(4),
            HostId(504),
            nack(HostId(504), 1),
            &mut out,
        );
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::Retrans { .. } }] if *to == HostId(504)
        ));
        // A request at the very instant of the multicast is covered by it.
        out.clear();
        l.on_packet(
            Time::from_millis(3),
            HostId(505),
            nack(HostId(505), 1),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn mid_hierarchy_logger_never_site_remulticasts() {
        // A regional logger's requesters are remote child loggers; the
        // site shortcut must stay off (config default for non-site
        // roles) and everyone gets a unicast.
        let mut cfg = LoggerConfig::secondary(GROUP, SRC, SECONDARY, PRIMARY, SRC_HOST);
        cfg.site_remulticast = false;
        let mut l = Logger::new(cfg);
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "a"), &mut out);
        out.clear();
        for i in 0..5u64 {
            l.on_packet(
                Time::from_millis(i),
                HostId(600 + i),
                nack(HostId(600 + i), 1),
                &mut out,
            );
        }
        let unicasts = out
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Unicast {
                        packet: Packet::Retrans { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(unicasts, 5);
        assert!(!out.iter().any(|a| matches!(a, Action::Multicast { .. })));
    }

    #[test]
    fn primary_acks_source_with_dual_seqs() {
        let mut cfg = LoggerConfig::primary(GROUP, SRC, PRIMARY, SRC_HOST);
        cfg.replicas = vec![HostId(301)];
        let mut l = Logger::new(cfg);
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "a"), &mut out);
        // LogAck with primary_seq=1, replica_seq=0, plus a ReplUpdate.
        let logack = out.iter().find_map(|a| match a {
            Action::Unicast {
                to,
                packet:
                    Packet::LogAck {
                        primary_seq,
                        replica_seq,
                        ..
                    },
            } if *to == SRC_HOST => Some((*primary_seq, *replica_seq)),
            _ => None,
        });
        assert_eq!(logack, Some((Seq(1), Seq::ZERO)));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Unicast { to, packet: Packet::ReplUpdate { seq, .. } }
                if *to == HostId(301) && *seq == Seq(1)
        )));
        // Replica acks: LogAck advances replica_seq.
        out.clear();
        let repl_ack = Packet::ReplAck {
            group: GROUP,
            source: SRC,
            seq: Seq(1),
        };
        l.on_packet(Time::from_millis(5), HostId(301), repl_ack, &mut out);
        let logack = out.iter().find_map(|a| match a {
            Action::Unicast {
                packet:
                    Packet::LogAck {
                        primary_seq,
                        replica_seq,
                        ..
                    },
                ..
            } => Some((*primary_seq, *replica_seq)),
            _ => None,
        });
        assert_eq!(logack, Some((Seq(1), Seq(1))));
    }

    #[test]
    fn primary_without_replicas_reports_own_log() {
        let mut l = primary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "a"), &mut out);
        let logack = out.iter().find_map(|a| match a {
            Action::Unicast {
                packet:
                    Packet::LogAck {
                        primary_seq,
                        replica_seq,
                        ..
                    },
                ..
            } => Some((*primary_seq, *replica_seq)),
            _ => None,
        });
        assert_eq!(logack, Some((Seq(1), Seq(1))));
    }

    #[test]
    fn replica_mirrors_and_acks() {
        let mut l = Logger::new(LoggerConfig::replica(
            GROUP,
            SRC,
            HostId(301),
            PRIMARY,
            SRC_HOST,
        ));
        let mut out = Actions::new();
        let upd = Packet::ReplUpdate {
            group: GROUP,
            source: SRC,
            seq: Seq(1),
            payload: Bytes::from_static(b"a"),
        };
        l.on_packet(Time::ZERO, PRIMARY, upd, &mut out);
        assert!(l.has(Seq(1)));
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::ReplAck { seq, .. } }]
                if *to == PRIMARY && *seq == Seq(1)
        ));
    }

    #[test]
    fn replica_reports_state_to_source_during_failover() {
        let mut l = Logger::new(LoggerConfig::replica(
            GROUP,
            SRC,
            HostId(301),
            PRIMARY,
            SRC_HOST,
        ));
        let mut out = Actions::new();
        for i in 1..=4 {
            let upd = Packet::ReplUpdate {
                group: GROUP,
                source: SRC,
                seq: Seq(i),
                payload: Bytes::from_static(b"x"),
            };
            l.on_packet(Time::ZERO, PRIMARY, upd, &mut out);
        }
        out.clear();
        let query = Packet::LocatePrimary {
            group: GROUP,
            source: SRC,
            requester: SRC_HOST,
        };
        l.on_packet(Time::from_secs(1), SRC_HOST, query, &mut out);
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::LogAck { primary_seq, .. } }]
                if *to == SRC_HOST && *primary_seq == Seq(4)
        ));
    }

    #[test]
    fn replica_promotes_on_primary_is() {
        let mut cfg = LoggerConfig::replica(GROUP, SRC, HostId(301), PRIMARY, SRC_HOST);
        cfg.replicas = vec![HostId(302)];
        let mut l = Logger::new(cfg);
        let mut out = Actions::new();
        let upd = Packet::ReplUpdate {
            group: GROUP,
            source: SRC,
            seq: Seq(1),
            payload: Bytes::from_static(b"a"),
        };
        l.on_packet(Time::ZERO, PRIMARY, upd, &mut out);
        out.clear();
        let promote = Packet::PrimaryIs {
            group: GROUP,
            source: SRC,
            primary: HostId(301),
        };
        l.on_packet(Time::from_secs(1), SRC_HOST, promote, &mut out);
        assert_eq!(l.role(), LoggerRole::Primary);
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::Promoted { new_primary } if *new_primary == HostId(301))));
        // As primary it now LogAcks the source and replicates onward.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Unicast {
                packet: Packet::LogAck { .. },
                ..
            }
        )));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Unicast { to, packet: Packet::ReplUpdate { .. } } if *to == HostId(302)
        )));
    }

    #[test]
    fn secondary_redirects_to_new_primary() {
        let mut l = secondary();
        let mut out = Actions::new();
        // Miss #1 via a child NACK; parent (old primary) never answers.
        l.on_packet(Time::ZERO, RX, nack(RX, 1), &mut out);
        let d = l.next_deadline().unwrap();
        l.poll(d, &mut out);
        out.clear();
        let new_primary = HostId(999);
        let pi = Packet::PrimaryIs {
            group: GROUP,
            source: SRC,
            primary: new_primary,
        };
        l.on_packet(d + Duration::from_millis(1), SRC_HOST, pi, &mut out);
        assert_eq!(l.parent(), new_primary);
        // The pending fetch retries against the new parent immediately.
        let d2 = l.next_deadline().unwrap();
        out.clear();
        l.poll(d2, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Unicast { to, packet: Packet::Nack { .. } } if *to == new_primary
        )));
    }

    #[test]
    fn escalates_to_source_after_fetch_attempts() {
        let mut l = secondary();
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, RX, nack(RX, 1), &mut out);
        let mut escalated = false;
        for _ in 0..20 {
            let Some(d) = l.next_deadline() else { break };
            out.clear();
            l.poll(d, &mut out);
            if out.iter().any(|a| {
                matches!(
                    a,
                    Action::Unicast { to, packet: Packet::LocatePrimary { .. } } if *to == SRC_HOST
                )
            }) {
                escalated = true;
                break;
            }
        }
        assert!(escalated, "secondary never escalated to the source");
    }

    #[test]
    fn volunteers_with_probability_one() {
        let mut l = secondary();
        let mut out = Actions::new();
        let sel = Packet::AckerSelect {
            group: GROUP,
            source: SRC,
            epoch: EpochId(1),
            p_ack: 1.0,
        };
        l.on_packet(Time::ZERO, SRC_HOST, sel, &mut out);
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::AckerVolunteer { epoch, .. } }]
                if *to == SRC_HOST && *epoch == EpochId(1)
        ));
        // Data in that epoch gets acked.
        out.clear();
        let d = Packet::Data {
            group: GROUP,
            source: SRC,
            seq: Seq(1),
            epoch: EpochId(1),
            payload: Bytes::from_static(b"x"),
        };
        l.on_packet(Time::from_millis(1), SRC_HOST, d, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Unicast { to, packet: Packet::PacketAck { seq, .. } }
                if *to == SRC_HOST && *seq == Seq(1)
        )));
        // Data in an unvolunteered epoch is not acked.
        out.clear();
        let d = Packet::Data {
            group: GROUP,
            source: SRC,
            seq: Seq(2),
            epoch: EpochId(9),
            payload: Bytes::from_static(b"y"),
        };
        l.on_packet(Time::from_millis(2), SRC_HOST, d, &mut out);
        assert!(!out.iter().any(|a| matches!(
            a,
            Action::Unicast {
                packet: Packet::PacketAck { .. },
                ..
            }
        )));
    }

    #[test]
    fn never_volunteers_at_probability_zero() {
        let mut l = secondary();
        let mut out = Actions::new();
        let sel = Packet::AckerSelect {
            group: GROUP,
            source: SRC,
            epoch: EpochId(1),
            p_ack: 0.0,
        };
        l.on_packet(Time::ZERO, SRC_HOST, sel, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn answers_discovery() {
        let mut l = secondary();
        let mut out = Actions::new();
        let q = Packet::DiscoveryQuery {
            group: GROUP,
            nonce: 42,
            requester: RX,
        };
        l.on_packet(Time::ZERO, RX, q, &mut out);
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::DiscoveryReply { nonce: 42, logger, level: 1, .. } }]
                if *to == RX && *logger == SECONDARY
        ));
    }

    #[test]
    fn ignores_other_groups() {
        let mut l = secondary();
        let mut out = Actions::new();
        let other = Packet::Data {
            group: GroupId(99),
            source: SRC,
            seq: Seq(1),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"x"),
        };
        l.on_packet(Time::ZERO, SRC_HOST, other, &mut out);
        assert!(out.is_empty());
        assert_eq!(l.log_len(), 0);
    }

    #[test]
    fn retention_pruning_applies_on_poll() {
        let mut cfg = LoggerConfig::secondary(GROUP, SRC, SECONDARY, PRIMARY, SRC_HOST);
        cfg.retention = Retention::Lifetime(Duration::from_secs(5));
        let mut l = Logger::new(cfg);
        let mut out = Actions::new();
        l.on_packet(Time::ZERO, SRC_HOST, data(1, "a"), &mut out);
        assert_eq!(l.log_len(), 1);
        l.poll(Time::from_secs(10), &mut out);
        assert_eq!(l.log_len(), 0);
    }

    /// The log is zero-copy end to end: the `Bytes` buffer ingested from
    /// the wire is the same allocation handed back out in retransmission
    /// serves and in every `ReplUpdate` of the replication fan-out — no
    /// payload is ever duplicated on the logger's hot path.
    #[test]
    fn payload_buffer_is_shared_across_store_serve_and_replication() {
        fn ptr(b: &Bytes) -> *const u8 {
            b.as_ref().as_ptr()
        }
        let mut cfg = LoggerConfig::primary(GROUP, SRC, PRIMARY, SRC_HOST);
        cfg.replicas = vec![HostId(501), HostId(502)];
        let mut l = Logger::new(cfg);

        let original = Bytes::from_static(b"shared-allocation");
        let origin = ptr(&original);
        let mut out = Actions::new();
        l.on_packet(
            Time::ZERO,
            SRC_HOST,
            Packet::Data {
                group: GROUP,
                source: SRC,
                seq: Seq(1),
                epoch: EpochId(0),
                payload: original,
            },
            &mut out,
        );

        // Replication fan-out: both ReplUpdates carry the ingested
        // allocation, not copies.
        let repl_ptrs: Vec<*const u8> = out
            .iter()
            .filter_map(|a| match a {
                Action::Unicast {
                    packet: Packet::ReplUpdate { payload, .. },
                    ..
                } => Some(ptr(payload)),
                _ => None,
            })
            .collect();
        assert_eq!(repl_ptrs.len(), 2, "one ReplUpdate per replica");
        assert!(repl_ptrs.iter().all(|&p| p == origin));

        // Serve path: the retransmission is the same allocation too.
        out.clear();
        l.on_packet(Time::from_millis(5), RX, nack(RX, 1), &mut out);
        let served: Vec<*const u8> = out
            .iter()
            .filter_map(|a| match a {
                Action::Unicast {
                    packet: Packet::Retrans { payload, .. },
                    ..
                } => Some(ptr(payload)),
                _ => None,
            })
            .collect();
        assert_eq!(served, vec![origin]);
    }
}
