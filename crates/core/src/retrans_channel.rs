//! The §7 "separate retransmission channel" extension.
//!
//! Future work the paper sketches: "A separate multicast channel could be
//! used for retransmissions. The sender would retransmit every packet on
//! the retransmission channel n times, using an exponential backoff
//! scheme similar to that used for heartbeat packets. A client would
//! recover a lost transmission by subscribing to the retransmission
//! channel, rather than requesting the packet."
//!
//! [`RetransChannelSender`] implements the sender half as a machine that
//! shadows the main stream. On the receiver side no new machine is
//! needed: a [`crate::receiver::Receiver`] configured with
//! [`crate::receiver::ReceiverConfig`] already accepts `Retrans` packets;
//! the embedding joins the retransmission group when the receiver reports
//! loss and leaves when recovery completes (the `Join`/`Leave` actions
//! emitted by [`RetransSubscriber`] automate that policy).

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;

use lbrm_wire::{GroupId, HostId, Packet, Seq, SourceId, TtlScope};

use crate::machine::{Action, Actions, Machine, Notice};
use crate::time::Time;

/// Sender-side configuration.
#[derive(Debug, Clone)]
pub struct RetransChannelConfig {
    /// The retransmission multicast group (distinct from the data group).
    pub channel: GroupId,
    /// Source whose packets are repeated.
    pub source: SourceId,
    /// How many times each packet is repeated on the channel.
    pub repeats: u32,
    /// Gap before the first repeat.
    pub initial_gap: Duration,
    /// Backoff multiplier between repeats.
    pub backoff: f64,
}

impl RetransChannelConfig {
    /// Conventional parameters: 4 repeats at 0.25 s, 0.5 s, 1 s, 2 s.
    pub fn new(channel: GroupId, source: SourceId) -> Self {
        RetransChannelConfig {
            channel,
            source,
            repeats: 4,
            initial_gap: Duration::from_millis(250),
            backoff: 2.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Repeat {
    seq: Seq,
    payload: Bytes,
    remaining: u32,
    gap: Duration,
    next_at: Time,
}

/// Repeats every data packet on a separate multicast channel with
/// exponential backoff.
pub struct RetransChannelSender {
    config: RetransChannelConfig,
    schedule: BTreeMap<u64, Repeat>,
    counter: u64,
}

impl RetransChannelSender {
    /// Creates the sender half.
    pub fn new(config: RetransChannelConfig) -> Self {
        assert!(config.backoff >= 1.0);
        RetransChannelSender {
            config,
            schedule: BTreeMap::new(),
            counter: 0,
        }
    }

    /// Registers a freshly sent data packet for repetition.
    pub fn on_data_sent(&mut self, now: Time, seq: Seq, payload: Bytes) {
        if self.config.repeats == 0 {
            return;
        }
        self.counter += 1;
        self.schedule.insert(
            self.counter,
            Repeat {
                seq,
                payload,
                remaining: self.config.repeats,
                gap: self.config.initial_gap,
                next_at: now + self.config.initial_gap,
            },
        );
    }

    /// Packets still scheduled for repetition.
    pub fn scheduled(&self) -> usize {
        self.schedule.len()
    }
}

impl Machine for RetransChannelSender {
    fn on_packet(&mut self, _now: Time, _from: HostId, _packet: Packet, _out: &mut Actions) {}

    fn poll(&mut self, now: Time, out: &mut Actions) {
        let due: Vec<u64> = self
            .schedule
            .iter()
            .filter(|(_, r)| now >= r.next_at)
            .map(|(&k, _)| k)
            .collect();
        for key in due {
            let r = self.schedule.get_mut(&key).expect("due repeat");
            out.push(Action::Multicast {
                scope: TtlScope::Global,
                packet: Packet::Retrans {
                    group: self.config.channel,
                    source: self.config.source,
                    seq: r.seq,
                    payload: r.payload.clone(),
                },
            });
            r.remaining -= 1;
            if r.remaining == 0 {
                self.schedule.remove(&key);
            } else {
                r.gap = Duration::from_secs_f64(r.gap.as_secs_f64() * self.config.backoff);
                r.next_at = now + r.gap;
            }
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        self.schedule.values().map(|r| r.next_at).min()
    }
}

/// Receiver-side subscription policy: join the retransmission channel
/// while losses are outstanding, leave once whole again. Feed it the
/// notices your receiver emits.
pub struct RetransSubscriber {
    channel: GroupId,
    outstanding: i64,
    joined: bool,
}

impl RetransSubscriber {
    /// Creates the policy for `channel`.
    pub fn new(channel: GroupId) -> Self {
        RetransSubscriber {
            channel,
            outstanding: 0,
            joined: false,
        }
    }

    /// `true` while subscribed.
    pub fn joined(&self) -> bool {
        self.joined
    }

    /// Reacts to a receiver notice, emitting `Join`/`Leave` as needed.
    pub fn on_notice(&mut self, notice: &Notice, out: &mut Actions) {
        match notice {
            Notice::LossDetected { first, last, .. } => {
                self.outstanding += last.distance_from(*first) as i64 + 1;
                if !self.joined && self.outstanding > 0 {
                    self.joined = true;
                    out.push(Action::Join(self.channel));
                }
            }
            Notice::Recovered { .. } => {
                self.outstanding = (self.outstanding - 1).max(0);
                if self.joined && self.outstanding == 0 {
                    self.joined = false;
                    out.push(Action::Leave(self.channel));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::LossSignal;

    const CHANNEL: GroupId = GroupId(77);
    const SRC: SourceId = SourceId(1);

    #[test]
    fn repeats_follow_exponential_backoff() {
        let mut s = RetransChannelSender::new(RetransChannelConfig::new(CHANNEL, SRC));
        s.on_data_sent(Time::ZERO, Seq(1), Bytes::from_static(b"x"));
        let mut times = Vec::new();
        let mut out = Actions::new();
        while let Some(d) = s.next_deadline() {
            out.clear();
            s.poll(d, &mut out);
            for a in &out {
                if let Action::Multicast {
                    packet: Packet::Retrans { seq, group, .. },
                    ..
                } = a
                {
                    assert_eq!(*seq, Seq(1));
                    assert_eq!(*group, CHANNEL);
                    times.push(d.as_secs_f64());
                }
            }
        }
        assert_eq!(times.len(), 4);
        // 0.25, 0.75, 1.75, 3.75 — the heartbeat-like backoff.
        let expect = [0.25, 0.75, 1.75, 3.75];
        for (got, want) in times.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert_eq!(s.scheduled(), 0);
    }

    #[test]
    fn multiple_packets_interleave() {
        let mut s = RetransChannelSender::new(RetransChannelConfig::new(CHANNEL, SRC));
        s.on_data_sent(Time::ZERO, Seq(1), Bytes::from_static(b"a"));
        s.on_data_sent(Time::from_millis(100), Seq(2), Bytes::from_static(b"b"));
        let mut count = 0;
        let mut out = Actions::new();
        while let Some(d) = s.next_deadline() {
            out.clear();
            s.poll(d, &mut out);
            count += out.len();
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn zero_repeats_disables() {
        let mut cfg = RetransChannelConfig::new(CHANNEL, SRC);
        cfg.repeats = 0;
        let mut s = RetransChannelSender::new(cfg);
        s.on_data_sent(Time::ZERO, Seq(1), Bytes::from_static(b"x"));
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn subscriber_joins_on_loss_and_leaves_when_whole() {
        let mut sub = RetransSubscriber::new(CHANNEL);
        let mut out = Actions::new();
        sub.on_notice(
            &Notice::LossDetected {
                first: Seq(2),
                last: Seq(3),
                signal: LossSignal::SeqGap,
            },
            &mut out,
        );
        assert_eq!(out, vec![Action::Join(CHANNEL)]);
        assert!(sub.joined());
        out.clear();
        sub.on_notice(
            &Notice::Recovered {
                seq: Seq(2),
                after: Duration::from_millis(1),
            },
            &mut out,
        );
        assert!(out.is_empty());
        sub.on_notice(
            &Notice::Recovered {
                seq: Seq(3),
                after: Duration::from_millis(2),
            },
            &mut out,
        );
        assert_eq!(out, vec![Action::Leave(CHANNEL)]);
        assert!(!sub.joined());
    }
}
