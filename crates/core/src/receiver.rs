//! The LBRM receiver.
//!
//! A receiver detects loss three ways (§2): a gap in data sequence
//! numbers, a heartbeat repeating a sequence number it has not seen, and
//! MaxIT idle expiry. Being *receiver-reliable*, it decides for itself
//! what to recover — everything, nothing but the latest state, or a
//! recent window — and pulls retransmissions from its recovery targets in
//! order: the site's secondary logging server first, then the primary
//! (§2.2.1's "next-higher-level" fallback), re-resolving the primary via
//! the source when the hierarchy goes quiet (§2.2.3).

use std::collections::BTreeMap;
use std::time::Duration;

use lbrm_wire::packet::SeqRange;
use lbrm_wire::{GroupId, HostId, Packet, Seq, SourceId};

use crate::gaps::{GapTracker, Observation, SeqUnwrapper};
use crate::heartbeat::HeartbeatConfig;
use crate::machine::{Action, Actions, Delivery, LossSignal, Machine, Notice};
use crate::time::{earliest, Time};
use crate::trace::{ProtocolEvent, Tracer};

/// What a receiver recovers (receiver-reliability, §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityMode {
    /// Recover every lost packet.
    RecoverAll,
    /// Never recover; only the newest data matters (pure freshness).
    LatestOnly,
    /// Recover only the newest `n` sequence numbers; older losses are
    /// abandoned.
    Window(u32),
}

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Group subscribed to.
    pub group: GroupId,
    /// Source listened to.
    pub source: SourceId,
    /// This receiver's host.
    pub host: HostId,
    /// Maximum Idle Time: the freshness bound the source promised.
    pub maxit: Duration,
    /// Recovery policy.
    pub mode: ReliabilityMode,
    /// Wait before the first NACK — lets reordered packets arrive and
    /// avoids NACK implosion at the logger (§2.3.2, Appendix A).
    pub nack_delay: Duration,
    /// Retry interval for unanswered NACKs.
    pub nack_retry: Duration,
    /// NACK attempts per recovery target before moving to the next.
    pub attempts_per_target: u32,
    /// Total NACK attempts for one packet before abandoning it as
    /// unrecoverable (e.g. backfill past the stream origin, or a packet
    /// older than every log's retention).
    pub max_recovery_attempts: u32,
    /// Recovery targets in preference order (site secondary first, then
    /// the primary). Updated in place when a `PrimaryIs` announces a
    /// promotion.
    pub recovery_targets: Vec<HostId>,
    /// The source's host, consulted to re-locate the primary when every
    /// target is unresponsive.
    pub source_host: HostId,
    /// The sender's heartbeat parameters, used to *adapt* the idle
    /// alarm: each heartbeat announces (via its index) how long until the
    /// next one, so the receiver expects silence of up to that interval
    /// without declaring the channel dead. Without this, a variable-
    /// heartbeat source idling toward `h_max` would false-alarm a
    /// `maxit`-based timer constantly.
    pub heartbeat: HeartbeatConfig,
    /// Multiplier on the expected inter-packet interval before the idle
    /// alarm fires (covers one lost heartbeat plus jitter).
    pub idle_slack: f64,
    /// Late-joiner backfill: on the first packet observed, also recover
    /// up to this many immediately preceding sequence numbers from the
    /// log — the §4.4 mobile-reconnect / audit-history pattern. `0`
    /// starts from the join point (the default).
    pub backfill: u32,
}

impl ReceiverConfig {
    /// A receiver on `host` recovering from `targets` (nearest first).
    pub fn new(
        group: GroupId,
        source: SourceId,
        host: HostId,
        source_host: HostId,
        targets: Vec<HostId>,
    ) -> Self {
        ReceiverConfig {
            group,
            source,
            host,
            maxit: Duration::from_millis(250),
            mode: ReliabilityMode::RecoverAll,
            nack_delay: Duration::from_millis(30),
            nack_retry: Duration::from_millis(400),
            attempts_per_target: 3,
            max_recovery_attempts: 12,
            recovery_targets: targets,
            source_host,
            heartbeat: HeartbeatConfig::default(),
            idle_slack: 2.0,
            backfill: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Recovery {
    seq: Seq,
    detected_at: Time,
    next_nack_at: Time,
    attempts: u32,
    total_attempts: u32,
    target_idx: usize,
}

/// Running statistics, exposed for experiments and applications.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Packets delivered from the original multicast.
    pub delivered: u64,
    /// Packets delivered via recovery.
    pub recovered: u64,
    /// Loss-detection events.
    pub losses_detected: u64,
    /// Losses abandoned by policy.
    pub abandoned: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
}

/// The receiver state machine.
pub struct Receiver {
    config: ReceiverConfig,
    gaps: GapTracker,
    unwrapper: SeqUnwrapper,
    pending: BTreeMap<u64, Recovery>,
    last_source_packet_at: Option<Time>,
    /// Expected interval until the sender's next transmission, learned
    /// from heartbeat indices.
    expected_interval: Duration,
    fresh: bool,
    /// The log-authority term last announced to the group.
    term: u32,
    /// Leader of [`term`](Self::term); initially the presumed primary
    /// (the last recovery target).
    known_leader: Option<HostId>,
    /// Hosts deposed by a later term, mapped to the term under which
    /// they last held authority; their repairs are fenced.
    deposed: BTreeMap<HostId, u32>,
    stats: ReceiverStats,
    tracer: Tracer,
}

impl Receiver {
    /// Creates a receiver.
    pub fn new(config: ReceiverConfig) -> Self {
        let known_leader = config.recovery_targets.last().copied();
        Receiver {
            expected_interval: config.heartbeat.h_min,
            config,
            gaps: GapTracker::new(),
            unwrapper: SeqUnwrapper::new(),
            pending: BTreeMap::new(),
            last_source_packet_at: None,
            fresh: false,
            term: 0,
            known_leader,
            deposed: BTreeMap::new(),
            stats: ReceiverStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// The log-authority term this receiver last observed.
    pub fn term(&self) -> u32 {
        self.term
    }

    /// Attaches a protocol-event tracer (see [`crate::trace`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.with_host(self.config.host);
    }

    /// The window of silence the receiver currently tolerates before
    /// declaring the channel idle-dead.
    fn idle_window(&self) -> Duration {
        let expected =
            Duration::from_secs_f64(self.expected_interval.as_secs_f64() * self.config.idle_slack);
        expected.max(self.config.maxit)
    }

    /// Updates the expected next-packet interval from a heartbeat index
    /// (`None` = a data packet, which resets the sender's schedule to
    /// `h_min`).
    fn learn_interval(&mut self, hb_index: Option<u32>) {
        let hb = &self.config.heartbeat;
        let interval = match hb_index {
            None => hb.h_min,
            Some(k) => {
                let scaled = hb.h_min.as_secs_f64() * hb.backoff.powi(k as i32);
                Duration::from_secs_f64(scaled.min(hb.h_max.as_secs_f64()))
            }
        };
        self.expected_interval = interval;
    }

    /// Running statistics.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Time since the last source packet (data or heartbeat), if any —
    /// the receiver's bound on how stale its state can be.
    pub fn staleness(&self, now: Time) -> Option<Duration> {
        self.last_source_packet_at.map(|t| now.since(t))
    }

    /// `true` while the MaxIT freshness guarantee holds.
    pub fn is_fresh(&self, now: Time) -> bool {
        self.staleness(now).is_some_and(|s| s <= self.config.maxit)
    }

    /// Number of losses currently being recovered.
    pub fn outstanding_recoveries(&self) -> usize {
        self.pending.len()
    }

    /// Replaces the recovery target list (e.g. after discovery found a
    /// closer logger).
    pub fn set_recovery_targets(&mut self, targets: Vec<HostId>) {
        self.config.recovery_targets = targets;
        for r in self.pending.values_mut() {
            r.target_idx = 0;
        }
    }

    fn touch_source(&mut self, now: Time, out: &mut Actions) {
        if self.last_source_packet_at.is_some() && !self.fresh {
            out.push(Action::Notice(Notice::FreshnessRestored));
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::FreshnessRestored);
        }
        self.fresh = true;
        self.last_source_packet_at = Some(now);
    }

    /// Applies the reliability mode to newly detected losses `[first,
    /// last]` and schedules recovery.
    fn on_loss(&mut self, now: Time, first: Seq, last: Seq, signal: LossSignal, out: &mut Actions) {
        self.stats.losses_detected += 1;
        out.push(Action::Notice(Notice::LossDetected {
            first,
            last,
            signal,
        }));
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::GapDetected { first, last });
        match self.config.mode {
            ReliabilityMode::LatestOnly => {
                let give_up_count = last.distance_from(first) as u64 + 1;
                self.stats.abandoned += give_up_count;
                if self.tracer.is_enabled() {
                    for seq in first.iter_to(last) {
                        if self.gaps.is_missing(seq) {
                            self.tracer
                                .emit(now.nanos(), || ProtocolEvent::RecoveryAbandoned { seq });
                        }
                    }
                }
                self.gaps.give_up_before(last.next());
                return;
            }
            ReliabilityMode::Window(n) => {
                if let Some(high) = self.gaps.highest() {
                    let floor_idx = self.unwrapper.peek(high).saturating_sub(u64::from(n) - 1);
                    let floor = SeqUnwrapper::rewrap(floor_idx);
                    let before = self.gaps.missing_count();
                    self.gaps.give_up_before(floor);
                    self.stats.abandoned += (before - self.gaps.missing_count()) as u64;
                    if self.tracer.is_enabled() {
                        for (_, r) in self.pending.range(..floor_idx) {
                            let seq = r.seq;
                            self.tracer
                                .emit(now.nanos(), || ProtocolEvent::RecoveryAbandoned { seq });
                        }
                    }
                    self.pending.retain(|&idx, _| idx >= floor_idx);
                }
            }
            ReliabilityMode::RecoverAll => {}
        }
        for seq in first.iter_to(last) {
            if !self.gaps.is_missing(seq) {
                continue;
            }
            let idx = self.unwrapper.unwrap(seq);
            self.pending.entry(idx).or_insert(Recovery {
                seq,
                detected_at: now,
                next_nack_at: now + self.config.nack_delay,
                attempts: 0,
                total_attempts: 0,
                target_idx: 0,
            });
        }
    }

    /// Closes the recovery for `seq` (if one is open), emitting the
    /// terminal `RepairReceived` + `Recovered` pair that anchors the
    /// forensic timeline: `from` is the repair carrier's host and
    /// `kind` the carrier packet kind.
    fn cancel_recovery(
        &mut self,
        now: Time,
        seq: Seq,
        from: HostId,
        kind: &'static str,
    ) -> Option<Recovery> {
        let idx = self.unwrapper.peek(seq);
        let rec = self.pending.remove(&idx);
        if let Some(rec) = &rec {
            let latency = now.since(rec.detected_at);
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::RepairReceived {
                    seq,
                    from,
                    kind,
                });
            self.tracer.emit(now.nanos(), || ProtocolEvent::Recovered {
                seq,
                latency_nanos: latency.as_nanos() as u64,
            });
        }
        rec
    }

    /// On first contact with the stream, extend recovery below the join
    /// point by the configured backfill window (§4 late-join history).
    fn maybe_backfill(&mut self, now: Time, out: &mut Actions) {
        if self.config.backfill == 0 {
            return;
        }
        if let Some((first, last)) = self.gaps.backfill(self.config.backfill) {
            self.on_loss(now, first, last, LossSignal::SeqGap, out);
        }
    }

    fn deliver(&mut self, seq: Seq, payload: bytes::Bytes, recovered: bool, out: &mut Actions) {
        if recovered {
            self.stats.recovered += 1;
        } else {
            self.stats.delivered += 1;
        }
        out.push(Action::Deliver(Delivery {
            seq,
            payload,
            recovered,
        }));
    }
}

impl Machine for Receiver {
    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.with_host(self.config.host);
    }

    fn on_start(&mut self, now: Time, _out: &mut Actions) {
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::RoleAnnounced {
                role: "receiver",
            });
    }

    fn on_packet(&mut self, now: Time, from: HostId, packet: Packet, out: &mut Actions) {
        let (group, source) = (self.config.group, self.config.source);
        // Fencing: repairs and primary claims from a host deposed by a
        // later term carry no log authority and are dropped whole — no
        // delivery, no gap bookkeeping.
        if let Some(&stale) = self.deposed.get(&from) {
            if matches!(packet, Packet::Retrans { .. } | Packet::PrimaryIs { .. }) {
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::StaleTermFenced {
                        from,
                        term: stale,
                    });
                return;
            }
        }
        match packet {
            Packet::Data {
                group: g,
                source: s,
                seq,
                payload,
                ..
            } if g == group && s == source => {
                self.touch_source(now, out);
                self.learn_interval(None);
                let first_contact = !self.gaps.started();
                match self.gaps.observe(seq) {
                    Observation::First | Observation::InOrder => {
                        self.deliver(seq, payload, false, out);
                    }
                    Observation::Ahead { gap } => {
                        // Deliver the new packet immediately (freshness
                        // beats ordering, §1), then chase the gap.
                        self.deliver(seq, payload, false, out);
                        let last = seq.prev();
                        let first = SeqUnwrapper::rewrap(self.unwrapper.peek(last) - (gap - 1));
                        self.on_loss(now, first, last, LossSignal::SeqGap, out);
                    }
                    Observation::Filled => {
                        // A late original filled the gap on its own.
                        if let Some(rec) = self.cancel_recovery(now, seq, from, "data") {
                            out.push(Action::Notice(Notice::Recovered {
                                seq,
                                after: now.since(rec.detected_at),
                            }));
                        }
                        self.deliver(seq, payload, false, out);
                    }
                    Observation::BeforeStart => {
                        // A reordered packet from before our first
                        // observation: valid data, deliver it.
                        self.deliver(seq, payload, false, out);
                    }
                    Observation::Duplicate => {
                        self.stats.duplicates += 1;
                    }
                }
                if first_contact {
                    self.maybe_backfill(now, out);
                }
            }
            Packet::Heartbeat {
                group: g,
                source: s,
                seq,
                payload,
                hb_index,
                ..
            } if g == group && s == source => {
                let first_contact = !self.gaps.started();
                self.touch_source(now, out);
                self.learn_interval(Some(hb_index));
                if !payload.is_empty() && self.gaps.is_missing(seq) {
                    // §7 extension: the heartbeat carries the payload.
                    self.gaps.observe(seq);
                    if let Some(rec) = self.cancel_recovery(now, seq, from, "heartbeat") {
                        out.push(Action::Notice(Notice::Recovered {
                            seq,
                            after: now.since(rec.detected_at),
                        }));
                    }
                    self.deliver(seq, payload, true, out);
                    return;
                }
                let before_high = self.gaps.highest();
                let newly = self.gaps.observe_announced(seq);
                if newly > 0 {
                    let first = match before_high {
                        Some(h) => h.next(),
                        None => seq,
                    };
                    // §7 heartbeats may carry the newest payload; an empty
                    // one just announces it.
                    if !payload.is_empty() {
                        self.gaps.observe(seq);
                        self.deliver(seq, payload, true, out);
                        if seq != first {
                            self.on_loss(now, first, seq.prev(), LossSignal::Heartbeat, out);
                        }
                    } else {
                        self.on_loss(now, first, seq, LossSignal::Heartbeat, out);
                    }
                }
                if first_contact {
                    self.maybe_backfill(now, out);
                }
            }
            Packet::Retrans {
                group: g,
                source: s,
                seq,
                payload,
            } if g == group && s == source => match self.gaps.observe(seq) {
                Observation::Filled => {
                    if let Some(rec) = self.cancel_recovery(now, seq, from, "retrans") {
                        out.push(Action::Notice(Notice::Recovered {
                            seq,
                            after: now.since(rec.detected_at),
                        }));
                    }
                    self.deliver(seq, payload, true, out);
                }
                Observation::First | Observation::InOrder => {
                    self.deliver(seq, payload, true, out);
                }
                Observation::Ahead { gap } => {
                    self.deliver(seq, payload, true, out);
                    let last = seq.prev();
                    let first = SeqUnwrapper::rewrap(self.unwrapper.peek(last) - (gap - 1));
                    self.on_loss(now, first, last, LossSignal::SeqGap, out);
                }
                Observation::BeforeStart => {
                    self.deliver(seq, payload, true, out);
                }
                Observation::Duplicate => {
                    self.stats.duplicates += 1;
                    self.tracer
                        .emit(now.nanos(), || ProtocolEvent::RepairDuplicate { seq, from });
                }
            },
            Packet::PrimaryIs {
                group: g,
                source: s,
                primary,
            } if g == group && s == source => {
                // The primary's address is a cached value (§2.2.3):
                // replace the last-resort target.
                if let Some(last) = self.config.recovery_targets.last_mut() {
                    *last = primary;
                } else {
                    self.config.recovery_targets.push(primary);
                }
                for r in self.pending.values_mut() {
                    if r.target_idx + 1 >= self.config.recovery_targets.len() {
                        r.attempts = 0;
                        r.next_nack_at = now;
                    }
                }
            }
            Packet::TermAnnounce {
                group: g,
                source: s,
                term,
                leader,
            } if g == group && s == source && term > self.term => {
                if let Some(old) = self.known_leader {
                    if old != leader {
                        self.deposed.insert(old, self.term);
                    }
                }
                self.deposed.remove(&leader);
                self.term = term;
                self.known_leader = Some(leader);
                // The new leader replaces the last-resort recovery
                // target (same cached-pointer rule as PrimaryIs).
                if let Some(last) = self.config.recovery_targets.last_mut() {
                    *last = leader;
                } else {
                    self.config.recovery_targets.push(leader);
                }
                for r in self.pending.values_mut() {
                    if r.target_idx + 1 >= self.config.recovery_targets.len() {
                        r.attempts = 0;
                        r.next_nack_at = now;
                    }
                }
            }
            _ => {}
        }
    }

    fn poll(&mut self, now: Time, out: &mut Actions) {
        // Idle expiry: expected traffic stopped arriving.
        if self.fresh {
            if let Some(last) = self.last_source_packet_at {
                if now.since(last) > self.idle_window() {
                    self.fresh = false;
                    out.push(Action::Notice(Notice::FreshnessLost));
                    self.tracer
                        .emit(now.nanos(), || ProtocolEvent::FreshnessLost);
                    out.push(Action::Notice(Notice::LossDetected {
                        first: self.gaps.highest().map_or(Seq::ZERO, |h| h.next()),
                        last: self.gaps.highest().map_or(Seq::ZERO, |h| h.next()),
                        signal: LossSignal::IdleTimeout,
                    }));
                }
            }
        }
        // Recovery NACKs, batched per target.
        if self.config.recovery_targets.is_empty() {
            return;
        }
        let mut per_target: BTreeMap<HostId, Vec<SeqRange>> = BTreeMap::new();
        let mut exhausted = false;
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, r)| now >= r.next_nack_at)
            .map(|(&i, _)| i)
            .collect();
        for idx in due {
            let targets = self.config.recovery_targets.clone();
            let r = self.pending.get_mut(&idx).expect("due recovery");
            if r.total_attempts >= self.config.max_recovery_attempts {
                // Nobody can supply this packet (pre-origin backfill, or
                // retention expired everywhere): stop asking.
                let seq = r.seq;
                self.pending.remove(&idx);
                self.gaps.abandon(seq);
                self.stats.abandoned += 1;
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::RecoveryAbandoned { seq });
                continue;
            }
            if r.attempts >= self.config.attempts_per_target {
                if r.target_idx + 1 < targets.len() {
                    r.target_idx += 1;
                    r.attempts = 0;
                } else {
                    // All targets exhausted: keep hammering the last one
                    // but ask the source where the primary went.
                    exhausted = true;
                    r.attempts = 0;
                }
            }
            r.attempts += 1;
            r.total_attempts += 1;
            r.next_nack_at = now + self.config.nack_retry;
            let target = targets[r.target_idx.min(targets.len() - 1)];
            let ranges = per_target.entry(target).or_default();
            match ranges.last_mut() {
                Some(last) if last.last.next() == r.seq => last.last = r.seq,
                _ => ranges.push(SeqRange::single(r.seq)),
            }
        }
        for (target, ranges) in per_target {
            self.tracer.emit(now.nanos(), || ProtocolEvent::NackSent {
                target,
                packets: ranges
                    .iter()
                    .map(|r| r.len().min(u64::from(u32::MAX)) as u32)
                    .sum(),
                first: ranges.first().expect("nonempty batch").first,
                last: ranges.last().expect("nonempty batch").last,
            });
            out.push(Action::Unicast {
                to: target,
                packet: Packet::Nack {
                    group: self.config.group,
                    source: self.config.source,
                    requester: self.config.host,
                    ranges,
                },
            });
        }
        if exhausted {
            let primary = *self
                .config
                .recovery_targets
                .last()
                .expect("nonempty targets");
            out.push(Action::Notice(Notice::PrimaryUnresponsive { primary }));
            self.tracer
                .emit(now.nanos(), || ProtocolEvent::PrimaryUnresponsive {
                    primary,
                });
            out.push(Action::Unicast {
                to: self.config.source_host,
                packet: Packet::LocatePrimary {
                    group: self.config.group,
                    source: self.config.source,
                    requester: self.config.host,
                },
            });
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        let mut d = self
            .last_source_packet_at
            .filter(|_| self.fresh)
            .map(|t| t + self.idle_window() + Duration::from_nanos(1));
        for r in self.pending.values() {
            d = earliest(d, Some(r.next_nack_at));
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{deliveries, notices};
    use bytes::Bytes;
    use lbrm_wire::EpochId;

    const GROUP: GroupId = GroupId(1);
    const SRC: SourceId = SourceId(10);
    const SRC_HOST: HostId = HostId(100);
    const ME: HostId = HostId(400);
    const SECONDARY: HostId = HostId(300);
    const PRIMARY: HostId = HostId(200);

    fn rx() -> Receiver {
        Receiver::new(ReceiverConfig::new(
            GROUP,
            SRC,
            ME,
            SRC_HOST,
            vec![SECONDARY, PRIMARY],
        ))
    }

    fn data(seq: u32) -> Packet {
        Packet::Data {
            group: GROUP,
            source: SRC,
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"payload"),
        }
    }

    fn heartbeat(seq: u32) -> Packet {
        Packet::Heartbeat {
            group: GROUP,
            source: SRC,
            seq: Seq(seq),
            epoch: EpochId(0),
            hb_index: 1,
            payload: Bytes::new(),
        }
    }

    fn retrans(seq: u32) -> Packet {
        Packet::Retrans {
            group: GROUP,
            source: SRC,
            seq: Seq(seq),
            payload: Bytes::from_static(b"payload"),
        }
    }

    #[test]
    fn in_order_delivery() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        r.on_packet(Time::from_millis(1), SRC_HOST, data(2), &mut out);
        assert_eq!(deliveries(&out).len(), 2);
        assert_eq!(r.stats().delivered, 2);
        assert_eq!(r.outstanding_recoveries(), 0);
    }

    #[test]
    fn gap_detection_delivers_latest_and_nacks_secondary() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        r.on_packet(Time::from_millis(10), SRC_HOST, data(4), &mut out);
        // Latest data delivered immediately despite the gap.
        assert_eq!(deliveries(&out).len(), 1);
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::LossDetected { first, last, signal: LossSignal::SeqGap }
                if *first == Seq(2) && *last == Seq(3)
        )));
        // NACK after the reorder delay, to the secondary first.
        let d = r.next_deadline().unwrap();
        assert_eq!(d, Time::from_millis(10) + r.config.nack_delay);
        out.clear();
        r.poll(d, &mut out);
        match &out[..] {
            [Action::Unicast {
                to,
                packet: Packet::Nack {
                    ranges, requester, ..
                },
            }] => {
                assert_eq!(*to, SECONDARY);
                assert_eq!(*requester, ME);
                assert_eq!(
                    ranges,
                    &vec![SeqRange {
                        first: Seq(2),
                        last: Seq(3)
                    }]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retrans_fills_gap_and_reports_recovery_latency() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        r.on_packet(Time::from_millis(10), SRC_HOST, data(3), &mut out);
        out.clear();
        r.on_packet(Time::from_millis(60), SECONDARY, retrans(2), &mut out);
        let ds = deliveries(&out);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].recovered);
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::Recovered { seq, after } if *seq == Seq(2) && *after == Duration::from_millis(50)
        )));
        assert_eq!(r.outstanding_recoveries(), 0);
        assert_eq!(r.stats().recovered, 1);
    }

    #[test]
    fn late_original_cancels_recovery() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        r.on_packet(Time::from_millis(5), SRC_HOST, data(3), &mut out);
        assert_eq!(r.outstanding_recoveries(), 1);
        out.clear();
        // The "lost" packet was merely reordered.
        r.on_packet(Time::from_millis(8), SRC_HOST, data(2), &mut out);
        assert_eq!(r.outstanding_recoveries(), 0);
        assert_eq!(deliveries(&out).len(), 1);
        assert!(!deliveries(&out)[0].recovered);
        // No NACK goes out later.
        out.clear();
        r.poll(Time::from_secs(1), &mut out);
        assert!(!out.iter().any(|a| matches!(a, Action::Unicast { .. })));
    }

    #[test]
    fn heartbeat_reveals_loss_of_newest() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        r.on_packet(Time::from_millis(250), SRC_HOST, heartbeat(2), &mut out);
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::LossDetected { first, last, signal: LossSignal::Heartbeat }
                if *first == Seq(2) && *last == Seq(2)
        )));
        assert_eq!(r.outstanding_recoveries(), 1);
    }

    #[test]
    fn duplicates_counted_not_delivered() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        r.on_packet(Time::from_millis(1), SRC_HOST, data(1), &mut out);
        assert!(deliveries(&out).is_empty());
        assert_eq!(r.stats().duplicates, 1);
    }

    #[test]
    fn freshness_lifecycle() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        assert!(r.is_fresh(Time::from_millis(100)));
        assert!(!r.is_fresh(Time::from_millis(251)));
        // Poll past MaxIT: freshness lost.
        let d = r.next_deadline().unwrap();
        out.clear();
        r.poll(d, &mut out);
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::FreshnessLost)));
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::LossDetected {
                signal: LossSignal::IdleTimeout,
                ..
            }
        )));
        // A heartbeat restores freshness.
        out.clear();
        r.on_packet(
            d + Duration::from_millis(10),
            SRC_HOST,
            heartbeat(1),
            &mut out,
        );
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::FreshnessRestored)));
        assert!(r.is_fresh(d + Duration::from_millis(10)));
    }

    #[test]
    fn escalates_to_primary_then_locates() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        r.on_packet(Time::from_millis(1), SRC_HOST, data(3), &mut out);
        let mut saw_secondary = false;
        let mut saw_primary = false;
        let mut saw_locate = false;
        for _ in 0..30 {
            let Some(d) = r.next_deadline() else { break };
            out.clear();
            r.poll(d, &mut out);
            for a in &out {
                match a {
                    Action::Unicast {
                        to,
                        packet: Packet::Nack { .. },
                    } if *to == SECONDARY => {
                        saw_secondary = true;
                    }
                    Action::Unicast {
                        to,
                        packet: Packet::Nack { .. },
                    } if *to == PRIMARY => {
                        saw_primary = true;
                    }
                    Action::Unicast {
                        to,
                        packet: Packet::LocatePrimary { .. },
                    } if *to == SRC_HOST => {
                        saw_locate = true;
                    }
                    _ => {}
                }
            }
            if saw_locate {
                break;
            }
        }
        assert!(saw_secondary && saw_primary && saw_locate);
    }

    #[test]
    fn primary_is_redirects_last_target() {
        let mut r = rx();
        let mut out = Actions::new();
        let new_primary = HostId(999);
        r.on_packet(
            Time::ZERO,
            SRC_HOST,
            Packet::PrimaryIs {
                group: GROUP,
                source: SRC,
                primary: new_primary,
            },
            &mut out,
        );
        assert_eq!(r.config.recovery_targets, vec![SECONDARY, new_primary]);
    }

    #[test]
    fn latest_only_mode_abandons_losses() {
        let mut cfg = ReceiverConfig::new(GROUP, SRC, ME, SRC_HOST, vec![SECONDARY]);
        cfg.mode = ReliabilityMode::LatestOnly;
        let mut r = Receiver::new(cfg);
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        r.on_packet(Time::from_millis(1), SRC_HOST, data(5), &mut out);
        assert_eq!(r.outstanding_recoveries(), 0);
        assert_eq!(r.stats().abandoned, 3);
        // No NACKs ever.
        out.clear();
        r.poll(Time::from_secs(10), &mut out);
        assert!(!out.iter().any(|a| matches!(a, Action::Unicast { .. })));
    }

    #[test]
    fn window_mode_recovers_only_recent() {
        let mut cfg = ReceiverConfig::new(GROUP, SRC, ME, SRC_HOST, vec![SECONDARY]);
        cfg.mode = ReliabilityMode::Window(3);
        let mut r = Receiver::new(cfg);
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        // Jump to 10: missing 2..=9, but the window keeps only 8, 9
        // (window of 3 ending at 10).
        r.on_packet(Time::from_millis(1), SRC_HOST, data(10), &mut out);
        assert_eq!(r.outstanding_recoveries(), 2);
        let d = r.next_deadline().unwrap();
        out.clear();
        r.poll(d, &mut out);
        match &out[..] {
            [Action::Unicast {
                packet: Packet::Nack { ranges, .. },
                ..
            }] => {
                assert_eq!(
                    ranges,
                    &vec![SeqRange {
                        first: Seq(8),
                        last: Seq(9)
                    }]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn heartbeat_with_payload_recovers_directly() {
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        // Heartbeat carrying the payload of lost #2 (§7 extension).
        let hb = Packet::Heartbeat {
            group: GROUP,
            source: SRC,
            seq: Seq(2),
            epoch: EpochId(0),
            hb_index: 1,
            payload: Bytes::from_static(b"repeat"),
        };
        r.on_packet(Time::from_millis(250), SRC_HOST, hb, &mut out);
        let ds = deliveries(&out);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].recovered);
        assert_eq!(ds[0].payload.as_ref(), b"repeat");
        assert_eq!(r.outstanding_recoveries(), 0);
    }

    #[test]
    fn idle_window_adapts_to_heartbeat_backoff() {
        // After seeing heartbeat #5 the receiver knows the next one is
        // 0.25 * 2^5 = 8 s away, and must not false-alarm before then.
        let mut r = rx();
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        let hb5 = Packet::Heartbeat {
            group: GROUP,
            source: SRC,
            seq: Seq(1),
            epoch: EpochId(0),
            hb_index: 5,
            payload: Bytes::new(),
        };
        let at = Time::from_millis(15_750);
        r.on_packet(at, SRC_HOST, hb5, &mut out);
        out.clear();
        // 10 s later, inside the 16 s adaptive window: no alarm.
        r.poll(at + Duration::from_secs(10), &mut out);
        assert!(!notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::FreshnessLost)));
        // 17 s later, past the window: alarm.
        r.poll(at + Duration::from_secs(17), &mut out);
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::FreshnessLost)));
        // A data packet resets the expectation to h_min (window 0.5 s).
        out.clear();
        let t2 = at + Duration::from_secs(18);
        r.on_packet(t2, SRC_HOST, data(2), &mut out);
        r.poll(t2 + Duration::from_millis(600), &mut out);
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::FreshnessLost)));
    }

    #[test]
    fn backfill_recovers_history_on_join() {
        // A late joiner whose first packet is #20 pulls the previous 5
        // from the log.
        let mut cfg = ReceiverConfig::new(GROUP, SRC, ME, SRC_HOST, vec![SECONDARY]);
        cfg.backfill = 5;
        let mut r = Receiver::new(cfg);
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(20), &mut out);
        assert_eq!(deliveries(&out).len(), 1);
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::LossDetected { first, last, .. } if *first == Seq(15) && *last == Seq(19)
        )));
        assert_eq!(r.outstanding_recoveries(), 5);
        // The NACK asks for exactly 15..=19.
        let d = r.next_deadline().unwrap();
        out.clear();
        r.poll(d, &mut out);
        match &out[..] {
            [Action::Unicast {
                packet: Packet::Nack { ranges, .. },
                ..
            }] => {
                assert_eq!(
                    ranges,
                    &vec![SeqRange {
                        first: Seq(15),
                        last: Seq(19)
                    }]
                );
            }
            other => panic!("{other:?}"),
        }
        // Retransmissions fill history; the receiver ends whole.
        for s in 15..=19u32 {
            r.on_packet(Time::from_millis(100), SECONDARY, retrans(s), &mut out);
        }
        assert_eq!(r.outstanding_recoveries(), 0);
        assert_eq!(r.stats().recovered, 5);
    }

    #[test]
    fn unrecoverable_packets_are_abandoned_after_max_attempts() {
        // Nobody ever answers: after max_recovery_attempts total NACKs
        // the receiver writes the packet off instead of asking forever.
        let mut cfg = ReceiverConfig::new(GROUP, SRC, ME, SRC_HOST, vec![SECONDARY]);
        cfg.max_recovery_attempts = 4;
        let mut r = Receiver::new(cfg);
        let mut out = Actions::new();
        r.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        r.on_packet(Time::from_millis(1), SRC_HOST, data(3), &mut out);
        assert_eq!(r.outstanding_recoveries(), 1);
        let mut nacks = 0;
        for _ in 0..40 {
            let Some(d) = r.next_deadline() else { break };
            out.clear();
            r.poll(d, &mut out);
            nacks += out
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        Action::Unicast {
                            packet: Packet::Nack { .. },
                            ..
                        }
                    )
                })
                .count();
            if r.outstanding_recoveries() == 0 {
                break;
            }
        }
        assert_eq!(nacks, 4, "exactly max_recovery_attempts NACKs");
        assert_eq!(r.outstanding_recoveries(), 0);
        assert_eq!(r.stats().abandoned, 1);
        // The abandoned packet no longer counts as missing.
        let mut out2 = Actions::new();
        r.poll(Time::from_secs(100), &mut out2);
        assert!(!out2.iter().any(|a| matches!(a, Action::Unicast { .. })));
    }

    #[test]
    fn staleness_reports_time_since_source() {
        let mut r = rx();
        let mut out = Actions::new();
        assert_eq!(r.staleness(Time::from_secs(5)), None);
        r.on_packet(Time::from_secs(5), SRC_HOST, data(1), &mut out);
        assert_eq!(
            r.staleness(Time::from_secs(7)),
            Some(Duration::from_secs(2))
        );
    }
}
