//! The LBRM multicast source.
//!
//! The sender multicasts application data with sequence numbers, keeps
//! the variable-heartbeat promise of §2 ("a packet at least once every
//! MaxIT"), reliably hands every packet to the primary logging server —
//! retaining it in a local buffer until the primary's `LogAck` covers it
//! (§2.2) — and runs the statistical acknowledgement engine of §2.3 to
//! decide between immediate multicast retransmission and unicast
//! recovery. It also drives primary-logger failover (§2.2.3): when the
//! primary stops acknowledging, the source polls the replicas for their
//! log state, promotes the most up-to-date one, and brings it current
//! from its own buffer.

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;

use lbrm_wire::{EpochId, GroupId, HostId, Packet, Seq, SourceId, TtlScope};

use crate::gaps::SeqUnwrapper;
use crate::heartbeat::{FixedHeartbeat, HeartbeatConfig, VariableHeartbeat};
use crate::machine::{Action, Actions, Machine, Notice};
use crate::slab::SeqSlab;
use crate::statack::{StatAck, StatAckConfig, StatAckOutput};
use crate::time::{earliest, Time};
use crate::trace::{ProtocolEvent, Tracer};

/// Which heartbeat schedule the sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatScheme {
    /// The paper's variable (exponential-backoff) scheme.
    Variable,
    /// The fixed-rate baseline (period = `h_min`), for comparison
    /// experiments.
    Fixed,
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Multicast group to publish on.
    pub group: GroupId,
    /// This stream's source id.
    pub source: SourceId,
    /// The host this sender runs on.
    pub host: HostId,
    /// Heartbeat parameters.
    pub heartbeat: HeartbeatConfig,
    /// Variable (LBRM) or fixed (baseline) heartbeat.
    pub scheme: HeartbeatScheme,
    /// §7 extension: repeat the previous data payload inside heartbeats
    /// when it is at most this many bytes (`0` disables).
    pub repeat_payload_up_to: usize,
    /// The primary logging server.
    pub primary: HostId,
    /// Release buffered data only when a *replica* has it (§2.2.3). When
    /// `false`, the primary's own ack suffices.
    pub require_replica_ack: bool,
    /// Retransmit un-logged packets to the primary at this interval.
    pub handoff_retry: Duration,
    /// Handoff attempts without progress before the primary is declared
    /// unresponsive and failover starts.
    pub handoff_attempts_before_failover: u32,
    /// Known replicas of the primary log (failover candidates).
    pub replicas: Vec<HostId>,
    /// How long to wait for replica state reports during failover.
    pub failover_wait: Duration,
    /// Statistical acknowledgement; `None` disables (§3 notes the
    /// original implementation also ran without it).
    pub statack: Option<StatAckConfig>,
}

impl SenderConfig {
    /// A conventional configuration for `group`/`source` publishing from
    /// `host` with logging at `primary`.
    pub fn new(group: GroupId, source: SourceId, host: HostId, primary: HostId) -> Self {
        SenderConfig {
            group,
            source,
            host,
            heartbeat: HeartbeatConfig::default(),
            scheme: HeartbeatScheme::Variable,
            repeat_payload_up_to: 0,
            primary,
            require_replica_ack: false,
            handoff_retry: Duration::from_millis(500),
            handoff_attempts_before_failover: 4,
            replicas: Vec::new(),
            failover_wait: Duration::from_millis(500),
            statack: None,
        }
    }
}

enum Schedule {
    Variable(VariableHeartbeat),
    Fixed(FixedHeartbeat),
}

impl Schedule {
    fn on_data_sent(&mut self, now: Time) {
        match self {
            Schedule::Variable(h) => h.on_data_sent(now),
            Schedule::Fixed(h) => h.on_data_sent(now),
        }
    }

    fn next_at(&self) -> Option<Time> {
        match self {
            Schedule::Variable(h) => h.next_heartbeat_at(),
            Schedule::Fixed(h) => h.next_heartbeat_at(),
        }
    }

    fn due(&self, now: Time) -> bool {
        match self {
            Schedule::Variable(h) => h.due(now),
            Schedule::Fixed(h) => h.due(now),
        }
    }

    fn on_heartbeat_sent(&mut self, now: Time) -> u32 {
        match self {
            Schedule::Variable(h) => h.on_heartbeat_sent(now),
            Schedule::Fixed(h) => h.on_heartbeat_sent(now),
        }
    }
}

#[derive(Debug, Clone)]
struct Buffered {
    seq: Seq,
    epoch: EpochId,
    payload: Bytes,
}

enum PrimaryHealth {
    Healthy,
    /// Running a prepare/promise election for `term` since `since`,
    /// collecting replica promises (voter → unwrapped log end).
    Probing {
        since: Time,
        term: u32,
        promises: BTreeMap<HostId, u64>,
    },
}

/// The sender state machine. Applications publish via
/// [`send`](Sender::send); everything else runs through the [`Machine`]
/// interface.
pub struct Sender {
    config: SenderConfig,
    schedule: Schedule,
    statack: Option<StatAck>,
    unwrapper: SeqUnwrapper,
    next_seq: Seq,
    last_seq: Option<Seq>,
    last_payload: Bytes,
    /// Retained packets, keyed by unwrapped index. An entry is dropped
    /// only once the log acknowledgement covers it *and* statistical-ack
    /// bookkeeping has settled (a re-multicast decision may need the
    /// payload after the primary already logged it).
    buffer: SeqSlab<Buffered>,
    /// Unwrapped index below which the log (per policy) holds everything.
    released_below: u64,
    /// Indexes still awaiting a statistical-ack verdict.
    unsettled: std::collections::BTreeSet<u64>,
    current_primary: HostId,
    health: PrimaryHealth,
    /// The log-authority term the group currently operates under. Term 0
    /// is the configured primary; every quorum election increments it.
    term: u32,
    /// Highest term this sender has ever proposed (proposals stay
    /// monotone across failed elections).
    last_proposed: u32,
    /// Hosts deposed by a later election, mapped to the term under which
    /// they last held authority. Their `LogAck`s are fenced.
    deposed: BTreeMap<HostId, u32>,
    next_handoff_at: Option<Time>,
    handoff_attempts: u32,
    started: bool,
    tracer: Tracer,
}

impl Sender {
    /// Creates a sender.
    pub fn new(config: SenderConfig) -> Self {
        let schedule = match config.scheme {
            HeartbeatScheme::Variable => {
                Schedule::Variable(VariableHeartbeat::new(config.heartbeat))
            }
            HeartbeatScheme::Fixed => Schedule::Fixed(FixedHeartbeat::new(config.heartbeat.h_min)),
        };
        Sender {
            schedule,
            statack: None,
            unwrapper: SeqUnwrapper::new(),
            next_seq: Seq::FIRST,
            last_seq: None,
            last_payload: Bytes::new(),
            buffer: SeqSlab::new(),
            released_below: 0,
            unsettled: std::collections::BTreeSet::new(),
            current_primary: config.primary,
            health: PrimaryHealth::Healthy,
            term: 0,
            last_proposed: 0,
            deposed: BTreeMap::new(),
            next_handoff_at: None,
            handoff_attempts: 0,
            started: false,
            tracer: Tracer::disabled(),
            config,
        }
    }

    /// The sequence number the next data packet will carry.
    pub fn next_seq(&self) -> Seq {
        self.next_seq
    }

    /// Sequence of the most recent data packet, if any.
    pub fn last_seq(&self) -> Option<Seq> {
        self.last_seq
    }

    /// Packets currently retained awaiting log acknowledgement.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The logging server currently believed primary.
    pub fn primary(&self) -> HostId {
        self.current_primary
    }

    /// The log-authority term the group currently operates under.
    pub fn term(&self) -> u32 {
        self.term
    }

    /// Current epoch stamped on outgoing data.
    pub fn current_epoch(&self) -> EpochId {
        self.statack
            .as_ref()
            .map_or(EpochId::INITIAL, |s| s.current_epoch())
    }

    /// Attaches a protocol-event tracer (see [`crate::trace`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.with_host(self.config.host);
    }

    /// Publishes one application payload at `now`.
    pub fn send(&mut self, now: Time, payload: Bytes, out: &mut Actions) {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        self.last_seq = Some(seq);
        self.last_payload = payload.clone();
        let epoch = self.current_epoch();
        let idx = self.unwrapper.unwrap(seq);
        if self.buffer.is_empty() {
            // (Re)base the release floor on the first outstanding packet.
            self.released_below = idx;
        }
        self.buffer.insert(
            idx,
            Buffered {
                seq,
                epoch,
                payload: payload.clone(),
            },
        );
        self.schedule.on_data_sent(now);
        if let Some(sa) = &mut self.statack {
            sa.on_data_sent(now, seq);
            self.unsettled.insert(idx);
        }
        if self.current_primary != self.config.host && self.next_handoff_at.is_none() {
            self.next_handoff_at = Some(now + self.config.handoff_retry);
        }
        out.push(Action::Multicast {
            scope: TtlScope::Global,
            packet: Packet::Data {
                group: self.config.group,
                source: self.config.source,
                seq,
                epoch,
                payload,
            },
        });
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::DataSent { seq, epoch });
    }

    fn data_packet(&self, b: &Buffered) -> Packet {
        Packet::Data {
            group: self.config.group,
            source: self.config.source,
            seq: b.seq,
            epoch: b.epoch,
            payload: b.payload.clone(),
        }
    }

    fn release_through(&mut self, now: Time, seq: Seq, out: &mut Actions) {
        let end = self.unwrapper.peek(seq) + 1;
        if end <= self.released_below {
            return;
        }
        self.released_below = end;
        self.prune_buffer(now, Some(seq), out);
    }

    /// Drops buffer entries that are both log-released and statack-
    /// settled.
    fn prune_buffer(&mut self, now: Time, released_seq: Option<Seq>, out: &mut Actions) {
        let end = self.released_below;
        let unsettled = &self.unsettled;
        let before = self.buffer.len();
        self.buffer
            .retain(|idx, _| idx >= end || unsettled.contains(&idx));
        if self.buffer.len() != before {
            if let Some(seq) = released_seq {
                out.push(Action::Notice(Notice::BufferReleased { up_to: seq }));
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::BufferReleased { up_to: seq });
            }
        }
        // Handoff only chases log acknowledgement; statack holds (below
        // the release floor) don't keep it alive. Indexes ascend, so the
        // highest one decides whether anything is still unreleased.
        if self.buffer.last().is_none_or(|(idx, _)| idx < end) {
            self.next_handoff_at = None;
            self.handoff_attempts = 0;
        }
    }

    fn drain_statack(&mut self, now: Time, events: Vec<StatAckOutput>, out: &mut Actions) {
        for ev in events {
            match ev {
                StatAckOutput::StartSelection { epoch, p_ack } => {
                    out.push(Action::Multicast {
                        scope: TtlScope::Global,
                        packet: Packet::AckerSelect {
                            group: self.config.group,
                            source: self.config.source,
                            epoch,
                            p_ack,
                        },
                    });
                    self.tracer
                        .emit(now.nanos(), || ProtocolEvent::AckerSelected {
                            epoch,
                            p_ack,
                        });
                }
                StatAckOutput::EpochActive { epoch, ackers, nsl } => {
                    out.push(Action::Notice(Notice::EpochStarted {
                        epoch,
                        ackers,
                        nsl_estimate: nsl,
                    }));
                    self.tracer
                        .emit(now.nanos(), || ProtocolEvent::EpochActive {
                            epoch,
                            ackers: ackers as u32,
                        });
                }
                StatAckOutput::Remulticast { seq, missing } => {
                    let idx = self.unwrapper.peek(seq);
                    if let Some(b) = self.buffer.get(idx) {
                        let packet = self.data_packet(b);
                        out.push(Action::Multicast {
                            scope: TtlScope::Global,
                            packet,
                        });
                        out.push(Action::Notice(Notice::StatAckRemulticast {
                            seq,
                            missing_acks: missing,
                        }));
                        self.tracer
                            .emit(now.nanos(), || ProtocolEvent::Remulticast {
                                seq,
                                missing: missing as u32,
                            });
                    }
                }
                StatAckOutput::Settled { seq, complete } => {
                    let idx = self.unwrapper.peek(seq);
                    self.unsettled.remove(&idx);
                    self.prune_buffer(now, None, out);
                    self.tracer
                        .emit(now.nanos(), || ProtocolEvent::Settled { seq, complete });
                    if complete {
                        if let Some(sa) = &self.statack {
                            let t_wait = sa.t_wait();
                            self.tracer
                                .emit(now.nanos(), || ProtocolEvent::TWaitUpdated {
                                    t_wait_nanos: t_wait.as_nanos() as u64,
                                });
                        }
                    }
                }
                StatAckOutput::CongestionSuspected { streak } => {
                    out.push(Action::Notice(Notice::CongestionSuspected { streak }));
                    self.tracer
                        .emit(now.nanos(), || ProtocolEvent::CongestionSuspected {
                            streak,
                        });
                }
            }
        }
    }

    fn begin_failover(&mut self, now: Time, out: &mut Actions) {
        out.push(Action::Notice(Notice::PrimaryUnresponsive {
            primary: self.current_primary,
        }));
        let primary = self.current_primary;
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::PrimaryUnresponsive {
                primary,
            });
        if self.config.replicas.is_empty() {
            // Nothing to fail over to; keep retrying the primary.
            self.handoff_attempts = 0;
            return;
        }
        // Propose the next term (monotone across failed elections) and
        // solicit promises from every live replica.
        let term = self.last_proposed.max(self.term) + 1;
        self.last_proposed = term;
        self.health = PrimaryHealth::Probing {
            since: now,
            term,
            promises: BTreeMap::new(),
        };
        for &r in &self.config.replicas {
            if r != self.current_primary {
                out.push(Action::Unicast {
                    to: r,
                    packet: Packet::ElectPrepare {
                        group: self.config.group,
                        source: self.config.source,
                        term,
                        candidate: self.config.host,
                    },
                });
            }
        }
    }

    /// Promises needed for an election to commit: a majority of the
    /// configured replica set.
    fn quorum(&self) -> usize {
        self.config.replicas.len() / 2 + 1
    }

    fn finish_failover(&mut self, now: Time, out: &mut Actions) {
        let PrimaryHealth::Probing { term, promises, .. } = &self.health else {
            return;
        };
        let term = *term;
        // The election commits only on a majority of promises; promote
        // the most up-to-date promiser (§2.2.3).
        let winner = (promises.len() >= self.quorum())
            .then(|| {
                promises
                    .iter()
                    .max_by_key(|(host, end)| (**end, std::cmp::Reverse(host.raw())))
                    .map(|(&h, &e)| (h, e))
            })
            .flatten();
        let Some((best, best_end)) = winner else {
            // No quorum; go back to retrying the old primary.
            self.health = PrimaryHealth::Healthy;
            self.handoff_attempts = 0;
            self.next_handoff_at = Some(now + self.config.handoff_retry);
            return;
        };
        let old = self.current_primary;
        if old != best {
            // The deposed primary's authority ends at the old term;
            // anything it still sends under it is fenced.
            self.deposed.insert(old, self.term);
        }
        self.deposed.remove(&best);
        self.term = term;
        self.current_primary = best;
        self.health = PrimaryHealth::Healthy;
        self.handoff_attempts = 0;
        // Announce the new term to the whole group (receivers fence the
        // deposed primary off it) and tell the winner directly.
        let announce = Packet::TermAnnounce {
            group: self.config.group,
            source: self.config.source,
            term,
            leader: best,
        };
        out.push(Action::Unicast {
            to: best,
            packet: announce.clone(),
        });
        out.push(Action::Multicast {
            scope: TtlScope::Global,
            packet: announce,
        });
        // Keep the legacy primary pointer current too (receivers treat
        // the primary address as a cached value).
        let promote = Packet::PrimaryIs {
            group: self.config.group,
            source: self.config.source,
            primary: best,
        };
        out.push(Action::Unicast {
            to: best,
            packet: promote.clone(),
        });
        out.push(Action::Multicast {
            scope: TtlScope::Global,
            packet: promote,
        });
        // Bring it current from our buffer: everything beyond its log end.
        for (idx, b) in self.buffer.iter() {
            if idx > best_end || best_end == u64::MAX {
                out.push(Action::Unicast {
                    to: best,
                    packet: self.data_packet(b),
                });
            }
        }
        self.next_handoff_at = Some(now + self.config.handoff_retry);
        out.push(Action::Notice(Notice::Promoted { new_primary: best }));
        out.push(Action::Notice(Notice::TermElected { term, leader: best }));
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::FailoverPromoted {
                new_primary: best,
            });
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::TermElected {
                term,
                leader: best,
            });
    }
}

impl Machine for Sender {
    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.with_host(self.config.host);
    }

    fn on_start(&mut self, now: Time, out: &mut Actions) {
        if self.started {
            return;
        }
        self.started = true;
        self.tracer
            .emit(now.nanos(), || ProtocolEvent::RoleAnnounced {
                role: "sender",
            });
        if let Some(cfg) = self.config.statack.clone() {
            let mut sa = StatAck::new(cfg, now);
            let mut events = Vec::new();
            sa.poll(now, &mut events);
            self.statack = Some(sa);
            self.drain_statack(now, events, out);
        }
    }

    fn on_packet(&mut self, now: Time, from: HostId, packet: Packet, out: &mut Actions) {
        match packet {
            Packet::LogAck {
                group,
                source,
                primary_seq,
                replica_seq,
            } if group == self.config.group && source == self.config.source => {
                if let Some(&stale) = self.deposed.get(&from) {
                    // A deposed primary still acking: fenced, never
                    // releases buffer. Tell it directly which term it
                    // missed so a healed partition converges fast.
                    self.tracer
                        .emit(now.nanos(), || ProtocolEvent::StaleTermFenced {
                            from,
                            term: stale,
                        });
                    out.push(Action::Unicast {
                        to: from,
                        packet: Packet::TermAnnounce {
                            group: self.config.group,
                            source: self.config.source,
                            term: self.term,
                            leader: self.current_primary,
                        },
                    });
                } else if from == self.current_primary {
                    self.handoff_attempts = 0;
                    let release = if self.config.require_replica_ack {
                        replica_seq
                    } else {
                        primary_seq
                    };
                    self.release_through(now, release, out);
                    if !self.buffer.is_empty() && self.next_handoff_at.is_none() {
                        self.next_handoff_at = Some(now + self.config.handoff_retry);
                    }
                }
            }
            Packet::ElectPromise {
                group,
                source,
                term,
                voter,
                log_end,
            } if group == self.config.group && source == self.config.source => {
                if let PrimaryHealth::Probing {
                    term: proposed,
                    promises,
                    ..
                } = &mut self.health
                {
                    if term == *proposed {
                        let end = self.unwrapper.peek(log_end);
                        promises.insert(voter, end);
                        if promises.len() >= self.config.replicas.len() {
                            // Everyone answered; no point waiting out
                            // the election window.
                            self.finish_failover(now, out);
                        }
                    }
                }
            }
            Packet::TermAnnounce {
                group,
                source,
                term,
                leader,
            } if group == self.config.group && source == self.config.source
                // Normally our own echo; adopt only a genuinely newer
                // term (e.g. announced by a recovering co-sender).
                && term > self.term =>
            {
                let old = self.current_primary;
                if old != leader {
                    self.deposed.insert(old, self.term);
                }
                self.deposed.remove(&leader);
                self.term = term;
                self.current_primary = leader;
                self.health = PrimaryHealth::Healthy;
            }
            Packet::Nack {
                group,
                source,
                requester,
                ranges,
            } if group == self.config.group && source == self.config.source => {
                // Serve retransmissions from the retained buffer (the
                // primary recovering packets it never saw, or receivers in
                // a logger-less deployment).
                let packets: u32 = ranges
                    .iter()
                    .map(|r| r.len().min(u64::from(u32::MAX)) as u32)
                    .sum();
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::NackReceived {
                        from: requester,
                        packets,
                    });
                for range in ranges {
                    for seq in range.iter().take(256) {
                        let idx = self.unwrapper.peek(seq);
                        if let Some(b) = self.buffer.get(idx) {
                            out.push(Action::Unicast {
                                to: requester,
                                packet: Packet::Retrans {
                                    group: self.config.group,
                                    source: self.config.source,
                                    seq: b.seq,
                                    payload: b.payload.clone(),
                                },
                            });
                            self.tracer
                                .emit(now.nanos(), || ProtocolEvent::RetransServed {
                                    seq: b.seq,
                                    multicast: false,
                                    to: requester,
                                });
                        }
                    }
                }
            }
            Packet::AckerVolunteer {
                group,
                source,
                epoch,
                logger,
            } if group == self.config.group && source == self.config.source => {
                if let Some(sa) = &mut self.statack {
                    sa.on_volunteer(logger, epoch);
                }
            }
            Packet::PacketAck {
                group,
                source,
                epoch,
                seq,
                logger,
            } if group == self.config.group && source == self.config.source => {
                if let Some(sa) = &mut self.statack {
                    let mut events = Vec::new();
                    sa.on_ack(now, logger, epoch, seq, &mut events);
                    self.drain_statack(now, events, out);
                }
            }
            Packet::LocatePrimary {
                group,
                source,
                requester,
            } if group == self.config.group && source == self.config.source => {
                out.push(Action::Unicast {
                    to: requester,
                    packet: Packet::PrimaryIs {
                        group: self.config.group,
                        source: self.config.source,
                        primary: self.current_primary,
                    },
                });
            }
            _ => {}
        }
    }

    fn poll(&mut self, now: Time, out: &mut Actions) {
        // Heartbeats.
        while self.schedule.due(now) {
            if let Some(seq) = self.last_seq {
                let hb_index = self.schedule.on_heartbeat_sent(now);
                let payload = if self.config.repeat_payload_up_to > 0
                    && self.last_payload.len() <= self.config.repeat_payload_up_to
                {
                    self.last_payload.clone()
                } else {
                    Bytes::new()
                };
                out.push(Action::Multicast {
                    scope: TtlScope::Global,
                    packet: Packet::Heartbeat {
                        group: self.config.group,
                        source: self.config.source,
                        seq,
                        epoch: self.current_epoch(),
                        hb_index,
                        payload,
                    },
                });
                self.tracer
                    .emit(now.nanos(), || ProtocolEvent::HeartbeatSent {
                        seq,
                        hb_index,
                    });
                if self.term > 0 {
                    // Re-announce the current term at heartbeat cadence
                    // so hosts that missed the election (a healed
                    // partition, a restarted replica) fence the old
                    // primary and retarget without extra machinery.
                    out.push(Action::Multicast {
                        scope: TtlScope::Global,
                        packet: Packet::TermAnnounce {
                            group: self.config.group,
                            source: self.config.source,
                            term: self.term,
                            leader: self.current_primary,
                        },
                    });
                }
            } else {
                break;
            }
        }
        // Statistical acknowledgement.
        if let Some(sa) = &mut self.statack {
            let mut events = Vec::new();
            sa.poll(now, &mut events);
            self.drain_statack(now, events, out);
        }
        // Reliable handoff to the primary logger.
        if matches!(self.health, PrimaryHealth::Healthy) {
            if let Some(at) = self.next_handoff_at {
                if now >= at {
                    let unlogged: Vec<u64> = self
                        .buffer
                        .range(self.released_below, u64::MAX)
                        .map(|(idx, _)| idx)
                        .take(64)
                        .collect();
                    if unlogged.is_empty() {
                        self.next_handoff_at = None;
                    } else {
                        self.handoff_attempts += 1;
                        if self.handoff_attempts > self.config.handoff_attempts_before_failover {
                            self.next_handoff_at = Some(now + self.config.failover_wait);
                            self.begin_failover(now, out);
                        } else {
                            for idx in unlogged {
                                let b = self.buffer.get(idx).expect("unlogged index is live");
                                out.push(Action::Unicast {
                                    to: self.current_primary,
                                    packet: self.data_packet(b),
                                });
                            }
                            self.next_handoff_at = Some(now + self.config.handoff_retry);
                        }
                    }
                }
            }
        } else if let PrimaryHealth::Probing { since, .. } = &self.health {
            if now.since(*since) >= self.config.failover_wait {
                self.finish_failover(now, out);
            }
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        let mut d = self.schedule.next_at().filter(|_| self.last_seq.is_some());
        if let Some(sa) = &self.statack {
            d = earliest(d, sa.next_deadline());
        }
        d = earliest(d, self.next_handoff_at);
        if let PrimaryHealth::Probing { since, .. } = &self.health {
            d = earliest(d, Some(*since + self.config.failover_wait));
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{notices, sent_packets};

    const GROUP: GroupId = GroupId(1);
    const SRC: SourceId = SourceId(10);
    const HOST: HostId = HostId(100);
    const PRIMARY: HostId = HostId(200);

    fn sender() -> Sender {
        Sender::new(SenderConfig::new(GROUP, SRC, HOST, PRIMARY))
    }

    fn log_ack(seq: u32) -> Packet {
        Packet::LogAck {
            group: GROUP,
            source: SRC,
            primary_seq: Seq(seq),
            replica_seq: Seq(seq),
        }
    }

    #[test]
    fn send_multicasts_data_with_increasing_seq() {
        let mut s = sender();
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"a"), &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"b"), &mut out);
        let pkts = sent_packets(&out);
        let seqs: Vec<u32> = pkts
            .iter()
            .filter_map(|p| match p {
                Packet::Data { seq, .. } => Some(seq.raw()),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(s.buffered(), 2);
    }

    #[test]
    fn heartbeats_follow_variable_schedule_and_repeat_last_seq() {
        let mut s = sender();
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"a"), &mut out);
        out.clear();
        // First heartbeat due at h_min = 250 ms.
        assert!(s.next_deadline().unwrap() <= Time::from_millis(250));
        s.poll(Time::from_millis(250), &mut out);
        match &sent_packets(&out)[..] {
            [Packet::Heartbeat {
                seq, hb_index: 1, ..
            }] => assert_eq!(*seq, Seq(1)),
            other => panic!("expected one heartbeat, got {other:?}"),
        }
        out.clear();
        // (A handoff retry may interleave at 500 ms+; filter heartbeats.)
        s.poll(Time::from_millis(750), &mut out);
        let hbs: Vec<u32> = sent_packets(&out)
            .iter()
            .filter_map(|p| match p {
                Packet::Heartbeat { hb_index, .. } => Some(*hb_index),
                _ => None,
            })
            .collect();
        assert_eq!(hbs, vec![2]);
    }

    #[test]
    fn no_heartbeats_before_first_data() {
        let mut s = sender();
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        assert_eq!(s.next_deadline(), None);
        s.poll(Time::from_secs(100), &mut out);
        assert!(sent_packets(&out).is_empty());
    }

    #[test]
    fn log_ack_releases_buffer() {
        let mut s = sender();
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        for _ in 0..3 {
            s.send(Time::ZERO, Bytes::from_static(b"x"), &mut out);
        }
        out.clear();
        s.on_packet(Time::from_millis(10), PRIMARY, log_ack(2), &mut out);
        assert_eq!(s.buffered(), 1);
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::BufferReleased { up_to } if *up_to == Seq(2))));
        s.on_packet(Time::from_millis(20), PRIMARY, log_ack(3), &mut out);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn replica_ack_requirement_holds_buffer() {
        let mut cfg = SenderConfig::new(GROUP, SRC, HOST, PRIMARY);
        cfg.require_replica_ack = true;
        let mut s = Sender::new(cfg);
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"x"), &mut out);
        out.clear();
        // Primary has it but no replica does: buffer must be retained.
        let ack = Packet::LogAck {
            group: GROUP,
            source: SRC,
            primary_seq: Seq(1),
            replica_seq: Seq(0),
        };
        s.on_packet(Time::from_millis(5), PRIMARY, ack, &mut out);
        assert_eq!(s.buffered(), 1);
        s.on_packet(Time::from_millis(9), PRIMARY, log_ack(1), &mut out);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn handoff_retries_unacked_data_to_primary() {
        let mut s = sender();
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"x"), &mut out);
        out.clear();
        let retry_at = Time::ZERO + s.config.handoff_retry;
        s.poll(retry_at, &mut out);
        let unicast_data = out.iter().any(|a| {
            matches!(a, Action::Unicast { to, packet: Packet::Data { seq, .. } }
                if *to == PRIMARY && *seq == Seq(1))
        });
        assert!(unicast_data, "expected handoff retransmission, got {out:?}");
    }

    #[test]
    fn nack_served_from_buffer() {
        let mut s = sender();
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"hello"), &mut out);
        out.clear();
        let nack = Packet::Nack {
            group: GROUP,
            source: SRC,
            requester: PRIMARY,
            ranges: vec![lbrm_wire::packet::SeqRange::single(Seq(1))],
        };
        s.on_packet(Time::from_millis(5), PRIMARY, nack, &mut out);
        match &out[..] {
            [Action::Unicast {
                to,
                packet: Packet::Retrans { seq, payload, .. },
            }] => {
                assert_eq!(*to, PRIMARY);
                assert_eq!(*seq, Seq(1));
                assert_eq!(payload.as_ref(), b"hello");
            }
            other => panic!("expected retransmission, got {other:?}"),
        }
    }

    #[test]
    fn locate_primary_answered() {
        let mut s = sender();
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        let asker = HostId(77);
        s.on_packet(
            Time::ZERO,
            asker,
            Packet::LocatePrimary {
                group: GROUP,
                source: SRC,
                requester: asker,
            },
            &mut out,
        );
        assert!(matches!(
            &out[..],
            [Action::Unicast { to, packet: Packet::PrimaryIs { primary, .. } }]
                if *to == asker && *primary == PRIMARY
        ));
    }

    #[test]
    fn failover_promotes_most_up_to_date_replica() {
        let replica_a = HostId(301);
        let replica_b = HostId(302);
        let mut cfg = SenderConfig::new(GROUP, SRC, HOST, PRIMARY);
        cfg.replicas = vec![replica_a, replica_b];
        let mut s = Sender::new(cfg);
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        let mut now = Time::ZERO;
        for _ in 0..3 {
            s.send(now, Bytes::from_static(b"x"), &mut out);
        }
        out.clear();
        // Primary never acks: drive handoff retries (interleaved with
        // heartbeats) past the threshold.
        for _ in 0..60 {
            now = s.next_deadline().unwrap();
            s.poll(now, &mut out);
            if notices(&out)
                .iter()
                .any(|n| matches!(n, Notice::PrimaryUnresponsive { .. }))
            {
                break;
            }
        }
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::PrimaryUnresponsive { primary } if *primary == PRIMARY)));
        // The election solicits promises for term 1 from both replicas.
        let prepares: Vec<HostId> = out
            .iter()
            .filter_map(|a| match a {
                Action::Unicast {
                    to,
                    packet: Packet::ElectPrepare { term: 1, .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(prepares, vec![replica_a, replica_b]);
        // Both replicas promise: B is more up to date.
        let promise = |voter: HostId, end: u32| Packet::ElectPromise {
            group: GROUP,
            source: SRC,
            term: 1,
            voter,
            log_end: Seq(end),
        };
        out.clear();
        s.on_packet(now, replica_a, promise(replica_a, 1), &mut out);
        s.on_packet(now, replica_b, promise(replica_b, 2), &mut out);
        assert_eq!(s.primary(), replica_b);
        assert_eq!(s.term(), 1);
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::Promoted { new_primary } if *new_primary == replica_b)));
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::TermElected { term: 1, leader } if *leader == replica_b)));
        // The new term is announced, the new primary is told, the group
        // is told, and the missing packet (#3) is brought current from
        // the buffer.
        let announced = out.iter().any(|a| {
            matches!(a, Action::Multicast { packet: Packet::TermAnnounce { term: 1, leader, .. }, .. }
                if *leader == replica_b)
        });
        assert!(announced, "expected term announce: {out:?}");
        let promoted_unicast = out.iter().any(|a| {
            matches!(a, Action::Unicast { to, packet: Packet::PrimaryIs { primary, .. } }
                if *to == replica_b && *primary == replica_b)
        });
        assert!(promoted_unicast);
        let refill = out.iter().any(|a| {
            matches!(a, Action::Unicast { to, packet: Packet::Data { seq, .. } }
                if *to == replica_b && *seq == Seq(3))
        });
        assert!(refill, "expected buffer refill of #3: {out:?}");
        // The deposed primary's acks are fenced: its LogAck must not
        // release the buffer.
        out.clear();
        let buffered = s.buffered();
        s.on_packet(now, PRIMARY, log_ack(3), &mut out);
        assert_eq!(s.buffered(), buffered, "fenced ack released buffer");
        assert!(notices(&out).is_empty());
    }

    #[test]
    fn statack_selection_emitted_on_start() {
        let mut cfg = SenderConfig::new(GROUP, SRC, HOST, PRIMARY);
        cfg.statack = Some(StatAckConfig::default());
        let mut s = Sender::new(cfg);
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        assert!(matches!(
            sent_packets(&out)[..],
            [Packet::AckerSelect { .. }]
        ));
    }

    #[test]
    fn statack_remulticast_resends_data() {
        let mut cfg = SenderConfig::new(GROUP, SRC, HOST, PRIMARY);
        cfg.statack = Some(StatAckConfig {
            nsl_initial: 300.0,
            k: 3,
            ..StatAckConfig::default()
        });
        let mut s = Sender::new(cfg);
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        let epoch = match sent_packets(&out)[..] {
            [Packet::AckerSelect { epoch, .. }] => *epoch,
            _ => panic!(),
        };
        for h in [1, 2, 3] {
            s.on_packet(
                Time::ZERO,
                HostId(h),
                Packet::AckerVolunteer {
                    group: GROUP,
                    source: SRC,
                    epoch,
                    logger: HostId(h),
                },
                &mut out,
            );
        }
        // Activate the epoch.
        let mut now = s.next_deadline().unwrap();
        out.clear();
        s.poll(now, &mut out);
        assert_eq!(s.current_epoch(), epoch);
        s.send(now, Bytes::from_static(b"q"), &mut out);
        // No acks arrive; at t_wait the sender re-multicasts #1.
        out.clear();
        now = s.next_deadline().unwrap();
        s.poll(now, &mut out);
        let re = out.iter().any(|a| {
            matches!(a, Action::Multicast { packet: Packet::Data { seq, .. }, .. } if *seq == Seq(1))
        });
        assert!(re, "expected re-multicast: {out:?}");
        assert!(notices(&out).iter().any(
            |n| matches!(n, Notice::StatAckRemulticast { seq, missing_acks: 3 } if *seq == Seq(1))
        ));
    }

    #[test]
    fn repeat_payload_in_heartbeat_when_small() {
        let mut cfg = SenderConfig::new(GROUP, SRC, HOST, PRIMARY);
        cfg.repeat_payload_up_to = 16;
        let mut s = Sender::new(cfg);
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"tiny"), &mut out);
        out.clear();
        s.poll(Time::from_millis(250), &mut out);
        let hb_payload = |out: &Actions| {
            sent_packets(out)
                .iter()
                .find_map(|p| match p {
                    Packet::Heartbeat { payload, .. } => Some(payload.clone()),
                    _ => None,
                })
                .expect("heartbeat sent")
        };
        assert_eq!(hb_payload(&out).as_ref(), b"tiny");
        // A large payload is not repeated.
        s.send(Time::from_secs(1), Bytes::from(vec![0u8; 64]), &mut out);
        out.clear();
        s.poll(Time::from_millis(1250), &mut out);
        assert!(hb_payload(&out).is_empty());
    }

    #[test]
    fn fixed_scheme_heartbeats_at_constant_rate() {
        let mut cfg = SenderConfig::new(GROUP, SRC, HOST, PRIMARY);
        cfg.scheme = HeartbeatScheme::Fixed;
        let mut s = Sender::new(cfg);
        let mut out = Actions::new();
        s.on_start(Time::ZERO, &mut out);
        s.send(Time::ZERO, Bytes::from_static(b"x"), &mut out);
        out.clear();
        // Ten polls, 250 ms apart: ten heartbeats.
        for i in 1..=10u64 {
            s.poll(Time::from_millis(250 * i), &mut out);
        }
        let hbs = sent_packets(&out)
            .iter()
            .filter(|p| matches!(p, Packet::Heartbeat { .. }))
            .count();
        assert_eq!(hbs, 10);
    }
}
