//! The sans-IO machine interface.
//!
//! Every LBRM protocol entity (sender, receiver, logging server,
//! discovery client, SRM baseline member) implements [`Machine`]: a pure
//! state machine that consumes packets and clock readings and emits
//! [`Action`]s. Drivers are trivial:
//!
//! * feed arriving packets to [`Machine::on_packet`],
//! * call [`Machine::poll`] whenever [`Machine::next_deadline`] passes,
//! * execute the emitted actions (send, deliver, log).
//!
//! Machines never block, never sleep and never touch sockets, so the
//! same code runs under `lbrm-sim` (virtual time, experiments) and
//! `lbrm-net` (tokio + UDP, deployment), and unit tests drive them
//! directly with hand-crafted packet sequences.

use bytes::Bytes;

use lbrm_wire::{EpochId, HostId, Packet, Seq, TtlScope};

use crate::time::Time;

/// A packet delivered to the receiving application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Data sequence number.
    pub seq: Seq,
    /// Application payload.
    pub payload: Bytes,
    /// `true` when the packet arrived via recovery (retransmission)
    /// rather than the original multicast.
    pub recovered: bool,
}

/// How a receiver noticed a loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossSignal {
    /// A gap appeared in the data sequence numbers.
    SeqGap,
    /// A heartbeat repeated a sequence number ahead of what we hold.
    Heartbeat,
    /// Nothing arrived for MaxIT.
    IdleTimeout,
}

/// Protocol events surfaced to the embedding application or harness.
///
/// Notices are informational: drivers may ignore them, log them, or (as
/// the experiment harness does) turn them into measurements.
#[derive(Debug, Clone, PartialEq)]
pub enum Notice {
    /// A receiver detected loss of `[first, last]`.
    LossDetected {
        /// First missing sequence.
        first: Seq,
        /// Last missing sequence (inclusive).
        last: Seq,
        /// Which mechanism noticed.
        signal: LossSignal,
    },
    /// A receiver recovered sequence `seq`, `after` the loss was detected.
    Recovered {
        /// The recovered sequence number.
        seq: Seq,
        /// Time from loss detection to recovery.
        after: std::time::Duration,
    },
    /// Nothing has been received for MaxIT: state freshness is no longer
    /// guaranteed (§2). The application may e.g. invalidate caches.
    FreshnessLost,
    /// Traffic resumed after [`Notice::FreshnessLost`].
    FreshnessRestored,
    /// The sender's buffer was released up to `up_to` (inclusive) after a
    /// primary-logger acknowledgement.
    BufferReleased {
        /// Highest released sequence.
        up_to: Seq,
    },
    /// The sender re-multicast `seq` because Designated-Acker coverage
    /// indicated widespread loss (§2.3.2).
    StatAckRemulticast {
        /// The re-multicast sequence.
        seq: Seq,
        /// How many expected ACKs were missing at `t_wait`.
        missing_acks: usize,
    },
    /// A new statistical-ack epoch took effect.
    EpochStarted {
        /// The epoch id.
        epoch: EpochId,
        /// Number of Designated Ackers that volunteered.
        ackers: usize,
        /// The sender's current estimate of the secondary-logger count.
        nsl_estimate: f64,
    },
    /// The sender (or a recovering party) concluded the primary logger is
    /// unresponsive.
    PrimaryUnresponsive {
        /// The unresponsive host.
        primary: HostId,
    },
    /// A replica was promoted to primary (§2.2.3).
    Promoted {
        /// The newly promoted primary.
        new_primary: HostId,
    },
    /// A failover election reached quorum: `leader` now holds
    /// authority for `term`, and packets from older terms are fenced.
    TermElected {
        /// The elected term.
        term: u32,
        /// The leader elected for the term.
        leader: HostId,
    },
    /// Discovery located a logging server.
    LoggerDiscovered {
        /// The logger host.
        logger: HostId,
        /// Its hierarchy level (0 = primary).
        level: u8,
        /// Scope at which it answered.
        scope: TtlScope,
    },
    /// Discovery exhausted all scopes without finding a logger.
    DiscoveryFailed,
    /// A logging server chose to re-multicast a repair to its site
    /// instead of unicasting (§2.2.1).
    SiteRemulticast {
        /// The repaired sequence.
        seq: Seq,
        /// Number of distinct requesters that triggered the decision.
        requesters: usize,
    },
    /// Statistical-ack coverage has been incomplete for several
    /// consecutive packets: the sender-side §5 congestion signal. The
    /// application should consider reducing its send rate.
    CongestionSuspected {
        /// Consecutive incompletely-acked packets.
        streak: u32,
    },
}

/// An effect requested by a machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send `packet` to one host.
    Unicast {
        /// Destination.
        to: HostId,
        /// The packet.
        packet: Packet,
    },
    /// Multicast `packet` to its group at `scope`.
    Multicast {
        /// TTL scope.
        scope: TtlScope,
        /// The packet.
        packet: Packet,
    },
    /// Hand a data packet to the application (receiver side).
    Deliver(Delivery),
    /// Surface a protocol notice.
    Notice(Notice),
    /// Subscribe this host to a multicast group (used by the §7
    /// retransmission-channel extension and by fast resubscription).
    Join(lbrm_wire::GroupId),
    /// Unsubscribe from a multicast group.
    Leave(lbrm_wire::GroupId),
}

/// Accumulator for actions emitted during one machine call.
pub type Actions = Vec<Action>;

/// A sans-IO protocol state machine.
pub trait Machine {
    /// Called once before any other entry point.
    fn on_start(&mut self, _now: Time, _out: &mut Actions) {}

    /// Attaches a protocol-event tracer (see [`crate::trace`]). Machines
    /// that emit [`crate::trace::ProtocolEvent`]s override this; the
    /// default drops the tracer, so drivers may install one on any
    /// machine unconditionally.
    fn set_tracer(&mut self, _tracer: crate::trace::Tracer) {}

    /// A packet addressed to this machine arrived (unicast or multicast).
    fn on_packet(&mut self, now: Time, from: HostId, packet: Packet, out: &mut Actions);

    /// Clock callback: run any work due at or before `now`. Spurious
    /// calls (before any deadline) must be harmless.
    fn poll(&mut self, now: Time, out: &mut Actions);

    /// The next instant at which [`Machine::poll`] should run, if any.
    fn next_deadline(&self) -> Option<Time>;
}

/// Test/driver helper: extracts all packets a machine tried to send,
/// with their addressing.
pub fn sent_packets(actions: &[Action]) -> Vec<&Packet> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Unicast { packet, .. } | Action::Multicast { packet, .. } => Some(packet),
            _ => None,
        })
        .collect()
}

/// Test/driver helper: extracts deliveries.
pub fn deliveries(actions: &[Action]) -> Vec<&Delivery> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Deliver(d) => Some(d),
            _ => None,
        })
        .collect()
}

/// Test/driver helper: extracts notices.
pub fn notices(actions: &[Action]) -> Vec<&Notice> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Notice(n) => Some(n),
            _ => None,
        })
        .collect()
}
