//! Gap tracking over the data sequence space.
//!
//! Receivers and logging servers both need to answer: *which sequence
//! numbers am I missing?* [`GapTracker`] maintains that set. Internally
//! sequence numbers are *unwrapped* onto a `u64` index line (RTP-style),
//! so the tracker is correct across 32-bit wraparound without the
//! fragility of doing interval arithmetic in modular space.

use std::collections::BTreeSet;

use lbrm_wire::packet::SeqRange;
use lbrm_wire::Seq;

/// Maps wrapping 32-bit sequence numbers onto a monotone `u64` line.
///
/// The mapping picks, for each observed `Seq`, the 64-bit extension
/// closest to the highest index seen so far — correct as long as
/// reordering stays within ±2^31 packets of the stream head.
#[derive(Debug, Clone, Default)]
pub struct SeqUnwrapper {
    highest: Option<u64>,
}

impl SeqUnwrapper {
    /// Creates an unwrapper with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unwraps `seq` to its position on the index line, updating the
    /// stream head if this is the newest packet yet.
    pub fn unwrap(&mut self, seq: Seq) -> u64 {
        let idx = self.peek(seq);
        if self.highest.is_none_or(|h| idx > h) {
            self.highest = Some(idx);
        }
        idx
    }

    /// Computes the unwrapped index without recording it.
    pub fn peek(&self, seq: Seq) -> u64 {
        let raw = u64::from(seq.raw());
        let Some(h) = self.highest else {
            return raw;
        };
        // Candidates in the head's cycle and the two adjacent ones; pick
        // the one nearest the head.
        let cycle = h >> 32;
        let mut best = raw + (cycle << 32);
        let mut best_dist = best.abs_diff(h);
        if cycle > 0 {
            let cand = raw + ((cycle - 1) << 32);
            if cand.abs_diff(h) < best_dist {
                best_dist = cand.abs_diff(h);
                best = cand;
            }
        }
        if let Some(cand) = (cycle + 1)
            .checked_mul(1 << 32)
            .and_then(|s| s.checked_add(raw))
        {
            if cand.abs_diff(h) < best_dist {
                best = cand;
            }
        }
        best
    }

    /// Re-wraps an index to its 32-bit sequence number.
    pub fn rewrap(idx: u64) -> Seq {
        Seq(idx as u32)
    }

    /// Highest unwrapped index observed.
    pub fn highest(&self) -> Option<u64> {
        self.highest
    }
}

/// Outcome of observing a sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// First packet ever observed.
    First,
    /// The next in-order packet.
    InOrder,
    /// Ahead of the head: created `gap` missing packets.
    Ahead {
        /// Number of sequence numbers newly marked missing.
        gap: u64,
    },
    /// Filled a previously missing slot.
    Filled,
    /// Already had it (or it predates the tracking floor).
    Duplicate,
    /// Precedes the first packet ever observed — a reordered early
    /// packet (or pre-join history). Not tracked as a gap, but not a
    /// duplicate either: consumers usually deliver it.
    BeforeStart,
}

/// Tracks received / missing sequence numbers above a floor.
///
/// ```
/// use lbrm_core::gaps::{GapTracker, Observation};
/// use lbrm_wire::Seq;
///
/// let mut t = GapTracker::new();
/// t.observe(Seq(1));
/// assert_eq!(t.observe(Seq(4)), Observation::Ahead { gap: 2 });
/// let missing = t.missing_ranges(16);
/// assert_eq!((missing[0].first, missing[0].last), (Seq(2), Seq(3)));
/// assert_eq!(t.observe(Seq(2)), Observation::Filled);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GapTracker {
    unwrapper: SeqUnwrapper,
    /// Everything below this index is settled (received or given up).
    floor: u64,
    /// Head: highest index observed + 1 (0 when nothing observed).
    head: u64,
    /// Missing indexes in `[floor, head)`.
    missing: BTreeSet<u64>,
    /// The floor set by the very first observation; indexes below it are
    /// pre-start territory, not given-up gaps.
    start_floor: u64,
    /// Pre-start indexes already seen (bounded duplicate detection for
    /// the reordered-stream-head case).
    early: BTreeSet<u64>,
    started: bool,
}

/// Cap on remembered pre-start indexes.
const MAX_EARLY: usize = 256;

impl GapTracker {
    /// Creates an empty tracker; the first observed packet sets the floor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes sequence `seq` as received.
    pub fn observe(&mut self, seq: Seq) -> Observation {
        let idx = self.unwrapper.unwrap(seq);
        if !self.started {
            self.started = true;
            self.floor = idx;
            self.start_floor = idx;
            self.head = idx + 1;
            return Observation::First;
        }
        if idx < self.start_floor {
            if self.early.contains(&idx) {
                return Observation::Duplicate;
            }
            self.early.insert(idx);
            while self.early.len() > MAX_EARLY {
                self.early.pop_first();
            }
            return Observation::BeforeStart;
        }
        if idx < self.floor {
            return Observation::Duplicate;
        }
        if idx < self.head {
            if self.missing.remove(&idx) {
                self.advance_floor();
                return Observation::Filled;
            }
            return Observation::Duplicate;
        }
        let gap = idx - self.head;
        for m in self.head..idx {
            self.missing.insert(m);
        }
        self.head = idx + 1;
        if gap == 0 {
            self.advance_floor();
            Observation::InOrder
        } else {
            Observation::Ahead { gap }
        }
    }

    /// Declares that a heartbeat announced `seq` as the newest data
    /// packet: if we have not seen it, everything from the head through
    /// `seq` is missing. Returns the number of newly missing packets.
    pub fn observe_announced(&mut self, seq: Seq) -> u64 {
        let idx = self.unwrapper.unwrap(seq);
        if !self.started {
            // A heartbeat before any data: we know packets up to `seq`
            // exist but have nothing. Treat seq itself as missing too.
            self.started = true;
            self.floor = idx;
            self.start_floor = idx;
            self.head = idx + 1;
            self.missing.insert(idx);
            return 1;
        }
        if idx < self.head {
            return 0;
        }
        let newly = idx + 1 - self.head;
        for m in self.head..=idx {
            self.missing.insert(m);
        }
        self.head = idx + 1;
        newly
    }

    fn advance_floor(&mut self) {
        while self.floor < self.head && !self.missing.contains(&self.floor) {
            self.floor += 1;
        }
    }

    /// `true` once at least one packet (or announcement) was observed.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Highest sequence observed or announced, if any.
    pub fn highest(&self) -> Option<Seq> {
        if self.started {
            Some(SeqUnwrapper::rewrap(self.head - 1))
        } else {
            None
        }
    }

    /// Number of currently missing packets.
    pub fn missing_count(&self) -> usize {
        self.missing.len()
    }

    /// `true` if `seq` is currently marked missing.
    pub fn is_missing(&self, seq: Seq) -> bool {
        let idx = self.unwrapper.peek(seq);
        self.missing.contains(&idx)
    }

    /// `true` if `seq` is settled (observed, or abandoned via
    /// [`give_up_before`](Self::give_up_before)) — i.e. not missing and
    /// not beyond the head. Parties that must distinguish *received* from
    /// *abandoned* (the log store) keep the payloads and consult those.
    pub fn has(&self, seq: Seq) -> bool {
        let idx = self.unwrapper.peek(seq);
        if !self.started {
            return false;
        }
        if idx < self.start_floor {
            return self.early.contains(&idx);
        }
        idx < self.head && !self.missing.contains(&idx)
    }

    /// The missing set as ascending, disjoint, maximal ranges — ready for
    /// a NACK. At most `max_ranges` are returned (earliest first).
    pub fn missing_ranges(&self, max_ranges: usize) -> Vec<SeqRange> {
        let mut out: Vec<SeqRange> = Vec::new();
        let mut cur: Option<(u64, u64)> = None;
        for &m in &self.missing {
            match cur {
                Some((first, last)) if m == last + 1 => cur = Some((first, m)),
                Some((first, last)) => {
                    out.push(SeqRange {
                        first: SeqUnwrapper::rewrap(first),
                        last: SeqUnwrapper::rewrap(last),
                    });
                    if out.len() == max_ranges {
                        return out;
                    }
                    cur = Some((m, m));
                }
                None => cur = Some((m, m)),
            }
        }
        if let Some((first, last)) = cur {
            if out.len() < max_ranges {
                out.push(SeqRange {
                    first: SeqUnwrapper::rewrap(first),
                    last: SeqUnwrapper::rewrap(last),
                });
            }
        }
        out
    }

    /// Extends tracking `count` sequence numbers *below* the first
    /// observation, marking them missing — a late joiner deciding to
    /// backfill recent history from the log. Only meaningful right after
    /// the first observation; returns the newly missing range, if any.
    pub fn backfill(&mut self, count: u32) -> Option<(Seq, Seq)> {
        if !self.started || count == 0 {
            return None;
        }
        let old_start = self.start_floor;
        let lo = old_start.saturating_sub(u64::from(count));
        if lo == old_start {
            return None;
        }
        for idx in lo..old_start {
            if !self.early.contains(&idx) {
                self.missing.insert(idx);
            }
        }
        self.early.retain(|&e| e < lo);
        self.start_floor = lo;
        self.floor = self.floor.min(lo);
        self.advance_floor();
        Some((
            SeqUnwrapper::rewrap(lo),
            SeqUnwrapper::rewrap(old_start - 1),
        ))
    }

    /// Abandons one missing sequence (recovery gave up on it). Returns
    /// `true` if it was indeed missing.
    pub fn abandon(&mut self, seq: Seq) -> bool {
        let idx = self.unwrapper.peek(seq);
        let removed = self.missing.remove(&idx);
        if removed {
            self.advance_floor();
        }
        removed
    }

    /// Abandons recovery of everything before `seq` (exclusive): used by
    /// latest-only / windowed reliability modes.
    pub fn give_up_before(&mut self, seq: Seq) {
        let idx = self.unwrapper.peek(seq);
        self.missing.retain(|&m| m >= idx);
        if idx > self.floor {
            self.floor = idx.min(self.head);
        }
        self.advance_floor();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(t: &GapTracker) -> Vec<(u32, u32)> {
        t.missing_ranges(64)
            .iter()
            .map(|r| (r.first.raw(), r.last.raw()))
            .collect()
    }

    #[test]
    fn in_order_stream_has_no_gaps() {
        let mut t = GapTracker::new();
        assert_eq!(t.observe(Seq(10)), Observation::First);
        assert_eq!(t.observe(Seq(11)), Observation::InOrder);
        assert_eq!(t.observe(Seq(12)), Observation::InOrder);
        assert_eq!(t.missing_count(), 0);
        assert_eq!(t.highest(), Some(Seq(12)));
        assert!(t.has(Seq(11)));
    }

    #[test]
    fn gap_detected_and_filled() {
        let mut t = GapTracker::new();
        t.observe(Seq(1));
        assert_eq!(t.observe(Seq(4)), Observation::Ahead { gap: 2 });
        assert_eq!(ranges(&t), vec![(2, 3)]);
        assert!(t.is_missing(Seq(2)));
        assert_eq!(t.observe(Seq(2)), Observation::Filled);
        assert_eq!(ranges(&t), vec![(3, 3)]);
        assert_eq!(t.observe(Seq(3)), Observation::Filled);
        assert_eq!(t.missing_count(), 0);
    }

    #[test]
    fn duplicates_are_recognized() {
        let mut t = GapTracker::new();
        t.observe(Seq(5));
        assert_eq!(t.observe(Seq(5)), Observation::Duplicate);
        t.observe(Seq(7));
        t.observe(Seq(6));
        assert_eq!(t.observe(Seq(6)), Observation::Duplicate);
    }

    #[test]
    fn heartbeat_announcement_creates_missing() {
        let mut t = GapTracker::new();
        t.observe(Seq(10));
        // Heartbeat says newest data is #13: we are missing 11..=13.
        assert_eq!(t.observe_announced(Seq(13)), 3);
        assert_eq!(ranges(&t), vec![(11, 13)]);
        // Repeating the announcement adds nothing.
        assert_eq!(t.observe_announced(Seq(13)), 0);
        // Older announcement adds nothing.
        assert_eq!(t.observe_announced(Seq(12)), 0);
    }

    #[test]
    fn heartbeat_before_any_data() {
        let mut t = GapTracker::new();
        assert_eq!(t.observe_announced(Seq(5)), 1);
        assert!(t.is_missing(Seq(5)));
        assert_eq!(t.observe(Seq(5)), Observation::Filled);
        assert_eq!(t.missing_count(), 0);
    }

    #[test]
    fn multiple_disjoint_ranges() {
        let mut t = GapTracker::new();
        t.observe(Seq(1));
        t.observe(Seq(3));
        t.observe(Seq(6));
        t.observe(Seq(10));
        assert_eq!(ranges(&t), vec![(2, 2), (4, 5), (7, 9)]);
        // Range cap.
        assert_eq!(t.missing_ranges(2).len(), 2);
    }

    #[test]
    fn give_up_before_abandons_old_gaps() {
        let mut t = GapTracker::new();
        t.observe(Seq(1));
        t.observe(Seq(10));
        assert_eq!(t.missing_count(), 8);
        t.give_up_before(Seq(8));
        assert_eq!(ranges(&t), vec![(8, 9)]);
    }

    #[test]
    fn works_across_wraparound() {
        let mut t = GapTracker::new();
        t.observe(Seq(u32::MAX - 1));
        assert_eq!(t.observe(Seq(1)), Observation::Ahead { gap: 2 });
        assert_eq!(ranges(&t), vec![(u32::MAX, 0)]);
        assert_eq!(t.observe(Seq(u32::MAX)), Observation::Filled);
        assert_eq!(t.observe(Seq(0)), Observation::Filled);
        assert_eq!(t.missing_count(), 0);
        assert_eq!(t.highest(), Some(Seq(1)));
    }

    #[test]
    fn reordered_stream_head_is_before_start_not_duplicate() {
        // #2 beats #1 to the receiver: #1 must be classified as early
        // history, not silently swallowed.
        let mut t = GapTracker::new();
        assert_eq!(t.observe(Seq(2)), Observation::First);
        assert_eq!(t.observe(Seq(1)), Observation::BeforeStart);
        // A re-delivery of the early packet is now a duplicate.
        assert_eq!(t.observe(Seq(1)), Observation::Duplicate);
        assert!(t.has(Seq(1)));
        assert_eq!(t.missing_count(), 0);
    }

    #[test]
    fn early_set_is_bounded() {
        let mut t = GapTracker::new();
        t.observe(Seq(100_000));
        for i in 0..1_000u32 {
            t.observe(Seq(i));
        }
        // Still functional and bounded (no assert on exact size beyond
        // classification behaviour for the most recent entries).
        assert_eq!(t.observe(Seq(999)), Observation::Duplicate);
        assert_eq!(t.missing_count(), 0);
    }

    #[test]
    fn reordering_near_wrap() {
        let mut t = GapTracker::new();
        t.observe(Seq(u32::MAX));
        t.observe(Seq(2));
        t.observe(Seq(0)); // late arrival from previous cycle region
        t.observe(Seq(1));
        assert_eq!(t.missing_count(), 0);
    }

    #[test]
    fn unwrapper_monotone_head() {
        let mut u = SeqUnwrapper::new();
        let a = u.unwrap(Seq(u32::MAX));
        let b = u.unwrap(Seq(0));
        let c = u.unwrap(Seq(1));
        assert_eq!(b, a + 1);
        assert_eq!(c, a + 2);
        // An old packet maps below the head, not to a new cycle.
        let old = u.unwrap(Seq(u32::MAX - 5));
        assert_eq!(old, a - 5);
    }
}
