//! Variable and fixed heartbeat schedules (§2.1), plus the closed-form
//! overhead analysis behind Figures 4–5 and Table 1.
//!
//! The variable scheme clusters heartbeats right after a data packet:
//! the inter-heartbeat time `h` is reset to `h_min` on every data
//! transmission and multiplied by `backoff` after every heartbeat, up to
//! `h_max`. Isolated losses are therefore detected within `h_min`, while
//! an idle source converges to one heartbeat per `h_max` — the best of
//! both worlds the paper quantifies as a ~50× bandwidth saving for DIS
//! terrain.
//!
//! The schedule itself is pure arithmetic and emits nothing; each
//! heartbeat the [`crate::sender::Sender`] actually transmits is
//! observable as a [`crate::trace::ProtocolEvent::HeartbeatSent`] event
//! (with its `hb_index`), so heartbeat-overhead experiments can count
//! them through a [`crate::trace::TraceSink`] instead of sniffing
//! packets.

use std::time::Duration;

use crate::time::Time;

/// Parameters of the variable heartbeat scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatConfig {
    /// First inter-heartbeat interval after a data packet. The paper uses
    /// 250 ms, matching the DIS freshness requirement.
    pub h_min: Duration,
    /// Interval ceiling; the idle-channel heartbeat period. Paper: 32 s.
    pub h_max: Duration,
    /// Multiplier applied to `h` after each heartbeat. Paper: 2.
    pub backoff: f64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            h_min: Duration::from_millis(250),
            h_max: Duration::from_secs(32),
            backoff: 2.0,
        }
    }
}

impl HeartbeatConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// If `h_min` is zero, `h_max < h_min`, or `backoff < 1`.
    pub fn validate(&self) {
        assert!(self.h_min > Duration::ZERO, "h_min must be positive");
        assert!(self.h_max >= self.h_min, "h_max must be >= h_min");
        assert!(self.backoff >= 1.0, "backoff must be >= 1");
    }
}

/// The variable heartbeat schedule of §2.1.
///
/// Drivers call [`on_data_sent`](Self::on_data_sent) whenever the
/// application transmits, and emit a heartbeat whenever
/// [`next_heartbeat_at`](Self::next_heartbeat_at) passes, confirming
/// with [`on_heartbeat_sent`](Self::on_heartbeat_sent).
///
/// ```
/// use lbrm_core::heartbeat::{HeartbeatConfig, VariableHeartbeat};
/// use lbrm_core::time::Time;
///
/// let mut hb = VariableHeartbeat::new(HeartbeatConfig::default());
/// hb.on_data_sent(Time::ZERO);
/// // Heartbeats fire at 0.25 s, 0.75 s, 1.75 s, ... (Figure 3).
/// let first = hb.next_heartbeat_at().unwrap();
/// assert_eq!(first, Time::from_millis(250));
/// hb.on_heartbeat_sent(first);
/// assert_eq!(hb.next_heartbeat_at().unwrap(), Time::from_millis(750));
/// ```
#[derive(Debug, Clone)]
pub struct VariableHeartbeat {
    config: HeartbeatConfig,
    /// Current inter-heartbeat interval.
    h: Duration,
    /// When the next heartbeat is due (`None` before the first data).
    next_at: Option<Time>,
    /// Heartbeats emitted since the last data packet.
    hb_index: u32,
}

impl VariableHeartbeat {
    /// Creates an idle schedule; nothing is due until the first data
    /// packet.
    pub fn new(config: HeartbeatConfig) -> Self {
        config.validate();
        VariableHeartbeat {
            h: config.h_min,
            config,
            next_at: None,
            hb_index: 0,
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &HeartbeatConfig {
        &self.config
    }

    /// Notes a data transmission at `now`: resets `h` to `h_min` and
    /// preempts any pending heartbeat.
    pub fn on_data_sent(&mut self, now: Time) {
        self.h = self.config.h_min;
        self.hb_index = 0;
        self.next_at = Some(now + self.h);
    }

    /// When the next heartbeat should be transmitted.
    pub fn next_heartbeat_at(&self) -> Option<Time> {
        self.next_at
    }

    /// `true` if a heartbeat is due at `now`.
    pub fn due(&self, now: Time) -> bool {
        self.next_at.is_some_and(|t| t <= now)
    }

    /// Notes a heartbeat transmission at `now`; returns the 1-based index
    /// of this heartbeat since the last data packet. Applies the backoff.
    pub fn on_heartbeat_sent(&mut self, now: Time) -> u32 {
        self.hb_index += 1;
        let scaled = self.h.as_secs_f64() * self.config.backoff;
        self.h = Duration::from_secs_f64(scaled.min(self.config.h_max.as_secs_f64()));
        self.next_at = Some(now + self.h);
        self.hb_index
    }

    /// Current inter-heartbeat interval (diagnostics).
    pub fn current_interval(&self) -> Duration {
        self.h
    }
}

/// A fixed heartbeat schedule: one heartbeat every `h`, reset on data —
/// the baseline the paper compares against (and how *wb* session
/// messages behave).
#[derive(Debug, Clone)]
pub struct FixedHeartbeat {
    h: Duration,
    next_at: Option<Time>,
    hb_index: u32,
}

impl FixedHeartbeat {
    /// Creates an idle fixed schedule with period `h`.
    ///
    /// # Panics
    ///
    /// If `h` is zero.
    pub fn new(h: Duration) -> Self {
        assert!(h > Duration::ZERO, "heartbeat period must be positive");
        FixedHeartbeat {
            h,
            next_at: None,
            hb_index: 0,
        }
    }

    /// Notes a data transmission.
    pub fn on_data_sent(&mut self, now: Time) {
        self.hb_index = 0;
        self.next_at = Some(now + self.h);
    }

    /// When the next heartbeat is due.
    pub fn next_heartbeat_at(&self) -> Option<Time> {
        self.next_at
    }

    /// `true` if a heartbeat is due.
    pub fn due(&self, now: Time) -> bool {
        self.next_at.is_some_and(|t| t <= now)
    }

    /// Notes a heartbeat transmission; returns its 1-based index.
    pub fn on_heartbeat_sent(&mut self, now: Time) -> u32 {
        self.hb_index += 1;
        self.next_at = Some(now + self.h);
        self.hb_index
    }
}

/// Closed-form overhead analysis (Figures 4 and 5, Table 1).
pub mod analysis {
    use super::HeartbeatConfig;

    /// Number of heartbeats the *variable* scheme emits between two data
    /// packets `dt` seconds apart (heartbeat exactly at `dt` is preempted
    /// by the next data packet).
    pub fn variable_heartbeats_per_interval(dt: f64, c: &HeartbeatConfig) -> u64 {
        assert!(dt >= 0.0 && dt.is_finite());
        let h_min = c.h_min.as_secs_f64();
        let h_max = c.h_max.as_secs_f64();
        let mut h = h_min;
        let mut t = h;
        let mut n = 0;
        while t < dt {
            n += 1;
            h = (h * c.backoff).min(h_max);
            t += h;
        }
        n
    }

    /// Number of heartbeats the *fixed* scheme (period `h_min`) emits
    /// between two data packets `dt` seconds apart.
    pub fn fixed_heartbeats_per_interval(dt: f64, h: f64) -> u64 {
        assert!(dt >= 0.0 && dt.is_finite() && h > 0.0);
        // Heartbeats fire at h, 2h, ...; the one at exactly dt is
        // preempted by the next data packet.
        let n = (dt / h).ceil() - 1.0;
        n.max(0.0) as u64
    }

    /// Variable-scheme heartbeat rate (packets/s) as a function of the
    /// inter-data interval — one curve of Figure 4.
    pub fn variable_rate(dt: f64, c: &HeartbeatConfig) -> f64 {
        variable_heartbeats_per_interval(dt, c) as f64 / dt
    }

    /// Fixed-scheme heartbeat rate (packets/s) — the other Figure-4 curve.
    pub fn fixed_rate(dt: f64, h: f64) -> f64 {
        fixed_heartbeats_per_interval(dt, h) as f64 / dt
    }

    /// Overhead(Fixed)/Overhead(Variable) — Figure 5 and Table 1. Returns
    /// `f64::INFINITY` when the variable scheme emits no heartbeats but
    /// the fixed scheme does, and 1.0 when neither emits any.
    pub fn overhead_ratio(dt: f64, c: &HeartbeatConfig) -> f64 {
        let fixed = fixed_heartbeats_per_interval(dt, c.h_min.as_secs_f64()) as f64;
        let variable = variable_heartbeats_per_interval(dt, c) as f64;
        if variable == 0.0 {
            if fixed == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            fixed / variable
        }
    }

    /// Expected heartbeats per interval when inter-data gaps are
    /// exponentially distributed with mean `mean_dt` — a smoothed variant
    /// that models unsynchronized updates (used alongside the
    /// deterministic count when regenerating Table 1).
    pub fn variable_heartbeats_poisson(mean_dt: f64, c: &HeartbeatConfig) -> f64 {
        let h_min = c.h_min.as_secs_f64();
        let h_max = c.h_max.as_secs_f64();
        let mut h = h_min;
        let mut t = h;
        let mut sum = 0.0;
        // E[N] = Σ_k P(gap > t_k); truncate when negligible.
        while t / mean_dt < 60.0 {
            sum += (-t / mean_dt).exp();
            h = (h * c.backoff).min(h_max);
            t += h;
        }
        sum
    }

    /// Expected fixed-scheme heartbeats per exponential interval.
    pub fn fixed_heartbeats_poisson(mean_dt: f64, h: f64) -> f64 {
        // Σ_{k≥1} exp(-k·h/mean) = 1 / (exp(h/mean) - 1).
        1.0 / ((h / mean_dt).exp() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::analysis::*;
    use super::*;

    fn cfg() -> HeartbeatConfig {
        HeartbeatConfig::default()
    }

    #[test]
    fn variable_schedule_follows_paper_figure3() {
        // Data at t=0; heartbeats at 0.25, 0.75, 1.75, 3.75, ... (paper
        // Figure 3's doubling pattern).
        let mut hb = VariableHeartbeat::new(cfg());
        assert_eq!(hb.next_heartbeat_at(), None);
        hb.on_data_sent(Time::ZERO);
        let mut fire_times = Vec::new();
        for _ in 0..6 {
            let now = hb.next_heartbeat_at().unwrap();
            fire_times.push(now.as_secs_f64());
            hb.on_heartbeat_sent(now);
        }
        let expect = [0.25, 0.75, 1.75, 3.75, 7.75, 15.75];
        for (got, want) in fire_times.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    fn variable_interval_caps_at_h_max() {
        let mut hb = VariableHeartbeat::new(cfg());
        hb.on_data_sent(Time::ZERO);
        for _ in 0..20 {
            let now = hb.next_heartbeat_at().unwrap();
            hb.on_heartbeat_sent(now);
        }
        assert_eq!(hb.current_interval(), Duration::from_secs(32));
        // Steady state: one heartbeat per h_max.
        let before = hb.next_heartbeat_at().unwrap();
        hb.on_heartbeat_sent(before);
        let after = hb.next_heartbeat_at().unwrap();
        assert_eq!(after - before, Duration::from_secs(32));
    }

    #[test]
    fn data_resets_schedule() {
        let mut hb = VariableHeartbeat::new(cfg());
        hb.on_data_sent(Time::ZERO);
        for _ in 0..5 {
            let t = hb.next_heartbeat_at().unwrap();
            hb.on_heartbeat_sent(t);
        }
        assert!(hb.current_interval() > Duration::from_secs(1));
        let now = Time::from_secs(100);
        hb.on_data_sent(now);
        assert_eq!(hb.current_interval(), Duration::from_millis(250));
        assert_eq!(
            hb.next_heartbeat_at(),
            Some(now + Duration::from_millis(250))
        );
    }

    #[test]
    fn hb_index_counts_within_burst() {
        let mut hb = VariableHeartbeat::new(cfg());
        hb.on_data_sent(Time::ZERO);
        assert_eq!(hb.on_heartbeat_sent(Time::from_millis(250)), 1);
        assert_eq!(hb.on_heartbeat_sent(Time::from_millis(750)), 2);
        hb.on_data_sent(Time::from_secs(1));
        assert_eq!(hb.on_heartbeat_sent(Time::from_millis(1250)), 1);
    }

    #[test]
    fn fixed_schedule_is_periodic() {
        let mut hb = FixedHeartbeat::new(Duration::from_millis(250));
        hb.on_data_sent(Time::ZERO);
        let mut prev = Time::ZERO;
        for i in 1..=8 {
            let t = hb.next_heartbeat_at().unwrap();
            assert_eq!(t - prev, Duration::from_millis(250));
            assert_eq!(hb.on_heartbeat_sent(t), i);
            prev = t;
        }
    }

    #[test]
    fn due_respects_clock() {
        let mut hb = VariableHeartbeat::new(cfg());
        assert!(!hb.due(Time::from_secs(100)));
        hb.on_data_sent(Time::ZERO);
        assert!(!hb.due(Time::from_millis(249)));
        assert!(hb.due(Time::from_millis(250)));
    }

    #[test]
    #[should_panic(expected = "h_max must be >= h_min")]
    fn config_validation() {
        VariableHeartbeat::new(HeartbeatConfig {
            h_min: Duration::from_secs(2),
            h_max: Duration::from_secs(1),
            backoff: 2.0,
        });
    }

    // ----- analysis (Figures 4/5, Table 1) -----

    #[test]
    fn variable_count_dt120_matches_paper() {
        // The paper's marked point: dt = 120 s → ratio ≈ 53.4.
        let c = cfg();
        assert_eq!(variable_heartbeats_per_interval(120.0, &c), 9);
        assert_eq!(fixed_heartbeats_per_interval(120.0, 0.25), 479);
        let ratio = overhead_ratio(120.0, &c);
        assert!((ratio - 53.2).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn no_heartbeats_when_data_outpaces_h_min() {
        // "If dt < h_min, no heartbeats are transmitted under either
        // scheme" (§2.1.2).
        let c = cfg();
        assert_eq!(variable_heartbeats_per_interval(0.2, &c), 0);
        assert_eq!(fixed_heartbeats_per_interval(0.2, 0.25), 0);
        assert_eq!(overhead_ratio(0.2, &c), 1.0);
    }

    #[test]
    fn variable_never_exceeds_fixed() {
        // §2.1.2: "always less than ... the fixed-heartbeat scheme" (when
        // h_min equals the fixed interval; equal only when both are 0).
        let c = cfg();
        for i in 1..2000 {
            let dt = i as f64 * 0.37;
            let v = variable_heartbeats_per_interval(dt, &c);
            let f = fixed_heartbeats_per_interval(dt, 0.25);
            assert!(v <= f, "dt={dt}: variable {v} > fixed {f}");
        }
    }

    #[test]
    fn rates_approach_paper_asymptotes() {
        // Fig 4: fixed → 1/h_min = 4/s; variable → 1/h_max = 0.03125/s.
        let c = cfg();
        let fixed = fixed_rate(100_000.0, 0.25);
        assert!((fixed - 4.0).abs() < 0.01, "fixed {fixed}");
        let var = variable_rate(100_000.0, &c);
        assert!((var - 1.0 / 32.0).abs() < 0.001, "variable {var}");
    }

    #[test]
    fn ratio_grows_with_backoff() {
        // Table 1's shape: larger backoff, larger savings (using the
        // Poisson-averaged model, which resolves the integer plateaus of
        // the deterministic count).
        let mut prev = 0.0;
        for backoff in [1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
            let c = HeartbeatConfig { backoff, ..cfg() };
            let ratio =
                fixed_heartbeats_poisson(120.0, 0.25) / variable_heartbeats_poisson(120.0, &c);
            assert!(
                ratio > prev,
                "backoff {backoff}: ratio {ratio} not > {prev}"
            );
            prev = ratio;
        }
        // Backoff 2 lands in the paper's ballpark (53.3).
        let c = cfg();
        let r2 = fixed_heartbeats_poisson(120.0, 0.25) / variable_heartbeats_poisson(120.0, &c);
        assert!((r2 - 53.0).abs() < 3.0, "ratio at backoff 2: {r2}");
    }

    #[test]
    fn poisson_fixed_matches_series() {
        // Small-h limit: E[N] ≈ mean/h - 1/2.
        let e = fixed_heartbeats_poisson(120.0, 0.25);
        assert!((e - (120.0 / 0.25 - 0.5)).abs() < 0.01, "{e}");
    }
}
