//! The packet log held by a logging server.
//!
//! "The length of time that the logging server must store a packet is
//! application-specific" (§2): some applications keep packets only for
//! their useful lifetime, others log everything. [`Retention`] captures
//! those policies; [`LogStore`] is the store itself, indexed by unwrapped
//! sequence number so wraparound is a non-event.

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;

use lbrm_wire::{Seq, SeqRange};

use crate::gaps::SeqUnwrapper;
use crate::time::Time;

/// How long logged packets are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Keep everything (the paper's strong-persistence applications; a
    /// disk spill would hang off this policy in a deployment).
    All,
    /// Keep at most the newest `n` packets.
    Count(usize),
    /// Keep packets for their useful lifetime.
    Lifetime(Duration),
}

/// One logged packet.
#[derive(Debug, Clone)]
struct Entry {
    seq: Seq,
    payload: Bytes,
    logged_at: Time,
}

/// A set of `u64` indexes stored as coalesced half-open runs
/// `[start, end)`. Memory is proportional to the number of *gaps*, not
/// packets, so "ever logged" bookkeeping stays small for long streams.
#[derive(Debug, Clone, Default)]
struct IntervalSet {
    runs: BTreeMap<u64, u64>,
}

impl IntervalSet {
    fn contains(&self, idx: u64) -> bool {
        self.runs
            .range(..=idx)
            .next_back()
            .is_some_and(|(_, &end)| idx < end)
    }

    /// Inserts one index, coalescing with neighbors. Returns `true` if new.
    fn insert(&mut self, idx: u64) -> bool {
        if self.contains(idx) {
            return false;
        }
        // Merge with a preceding run ending exactly at idx.
        let prev = self
            .runs
            .range(..=idx)
            .next_back()
            .filter(|(_, &end)| end == idx)
            .map(|(&s, _)| s);
        // Merge with a following run starting exactly at idx + 1.
        let next = self.runs.get(&(idx + 1)).copied();
        match (prev, next) {
            (Some(p), Some(n)) => {
                self.runs.remove(&(idx + 1));
                self.runs.insert(p, n);
            }
            (Some(p), None) => {
                self.runs.insert(p, idx + 1);
            }
            (None, Some(n)) => {
                self.runs.remove(&(idx + 1));
                self.runs.insert(idx, n);
            }
            (None, None) => {
                self.runs.insert(idx, idx + 1);
            }
        }
        true
    }

    /// The first (lowest) run, if any.
    fn first_run(&self) -> Option<(u64, u64)> {
        self.runs.first_key_value().map(|(&s, &e)| (s, e))
    }
}

/// An in-memory packet log with retention and contiguity tracking.
#[derive(Debug, Clone)]
pub struct LogStore {
    retention: Retention,
    unwrapper: SeqUnwrapper,
    entries: BTreeMap<u64, Entry>,
    /// Every index ever logged (survives pruning), as coalesced runs:
    /// contiguity claims are made from this, so pruning can never fake
    /// contiguity across a never-logged gap.
    logged: IntervalSet,
}

impl LogStore {
    /// Creates an empty store with the given retention policy.
    pub fn new(retention: Retention) -> Self {
        LogStore {
            retention,
            unwrapper: SeqUnwrapper::new(),
            entries: BTreeMap::new(),
            logged: IntervalSet::default(),
        }
    }

    /// Number of packets currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no packets are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a packet; returns `true` if it was new. Duplicate inserts
    /// keep the original timestamp and payload.
    pub fn insert(&mut self, now: Time, seq: Seq, payload: Bytes) -> bool {
        let idx = self.unwrapper.unwrap(seq);
        let fresh = self.logged.insert(idx);
        if fresh {
            self.entries.insert(
                idx,
                Entry {
                    seq,
                    payload,
                    logged_at: now,
                },
            );
            self.prune(now);
        }
        fresh
    }

    /// Fetches a packet's payload if present.
    pub fn get(&self, seq: Seq) -> Option<Bytes> {
        let idx = self.unwrapper.peek(seq);
        self.entries.get(&idx).map(|e| e.payload.clone())
    }

    /// `true` if the packet is currently held.
    pub fn has(&self, seq: Seq) -> bool {
        self.get(seq).is_some()
    }

    /// Highest sequence such that every packet from the lowest-ever
    /// logged one through it has been logged (the cumulative-ack value a
    /// primary reports in `LogAck`). `None` until anything is logged.
    ///
    /// Late out-of-order arrivals *below* the previous lowest sequence
    /// can lower this value; consumers treat `LogAck` release points as
    /// monotone (the sender keeps the max it has seen).
    pub fn contiguous_high(&self) -> Option<Seq> {
        self.logged
            .first_run()
            .map(|(_, end)| SeqUnwrapper::rewrap(end - 1))
    }

    /// Sequences in `[first, last]` that are *not* held, as coalesced
    /// inclusive runs (what a logger still needs to fetch from its
    /// parent). Walks only the entries actually present in the span, so a
    /// NACK covering a mostly-empty range costs O(held + runs), never
    /// O(span): a request spanning millions of absent sequences returns a
    /// single run instead of iterating (and allocating) them all.
    pub fn missing_in(&self, first: Seq, last: Seq) -> Vec<SeqRange> {
        let lo = self.unwrapper.peek(first);
        let hi = self.unwrapper.peek(last);
        if hi < lo {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut cursor = lo;
        for &held in self.entries.range(lo..=hi).map(|(k, _)| k) {
            if held > cursor {
                out.push(SeqRange {
                    first: SeqUnwrapper::rewrap(cursor),
                    last: SeqUnwrapper::rewrap(held - 1),
                });
            }
            cursor = held + 1;
        }
        if cursor <= hi {
            out.push(SeqRange {
                first: SeqUnwrapper::rewrap(cursor),
                last: SeqUnwrapper::rewrap(hi),
            });
        }
        out
    }

    /// Applies the retention policy at time `now`.
    pub fn prune(&mut self, now: Time) {
        match self.retention {
            Retention::All => {}
            Retention::Count(n) => {
                while self.entries.len() > n {
                    self.entries.pop_first();
                }
            }
            Retention::Lifetime(ttl) => {
                // Entries sit in logged order for the in-order common
                // case, so expired ones cluster at the front: pop them
                // directly and stop at the first unexpired entry — no
                // temporary key Vec on every insert.
                while let Some(e) = self.entries.first_entry() {
                    if now.since(e.get().logged_at) > ttl {
                        e.remove();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Iterates held packets in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (Seq, &Bytes)> {
        self.entries.values().map(|e| (e.seq, &e.payload))
    }

    /// The oldest held sequence, if any.
    pub fn oldest(&self) -> Option<Seq> {
        self.entries.first_key_value().map(|(_, e)| e.seq)
    }

    /// The newest held sequence, if any.
    pub fn newest(&self) -> Option<Seq> {
        self.entries.last_key_value().map(|(_, e)| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut log = LogStore::new(Retention::All);
        assert!(log.insert(Time::ZERO, Seq(1), b("one")));
        assert!(log.insert(Time::ZERO, Seq(2), b("two")));
        assert!(!log.insert(Time::ZERO, Seq(1), b("dup")));
        assert_eq!(log.get(Seq(1)), Some(b("one"))); // original kept
        assert_eq!(log.get(Seq(3)), None);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn contiguity_tracks_gaps() {
        let mut log = LogStore::new(Retention::All);
        assert_eq!(log.contiguous_high(), None);
        log.insert(Time::ZERO, Seq(1), b("a"));
        assert_eq!(log.contiguous_high(), Some(Seq(1)));
        log.insert(Time::ZERO, Seq(3), b("c"));
        assert_eq!(log.contiguous_high(), Some(Seq(1))); // 2 missing
        log.insert(Time::ZERO, Seq(2), b("b"));
        assert_eq!(log.contiguous_high(), Some(Seq(3)));
    }

    #[test]
    fn missing_in_reports_holes() {
        let mut log = LogStore::new(Retention::All);
        log.insert(Time::ZERO, Seq(1), b("a"));
        log.insert(Time::ZERO, Seq(4), b("d"));
        assert_eq!(
            log.missing_in(Seq(1), Seq(4)),
            vec![SeqRange {
                first: Seq(2),
                last: Seq(3)
            }]
        );
        assert_eq!(log.missing_in(Seq(4), Seq(1)), Vec::<SeqRange>::new());
        assert_eq!(log.missing_in(Seq(1), Seq(1)), Vec::<SeqRange>::new());
    }

    #[test]
    fn missing_in_emits_runs_not_sequences() {
        // A NACK spanning a mostly-empty range must cost O(held + runs):
        // the result is a handful of runs, never millions of elements.
        let mut log = LogStore::new(Retention::All);
        log.insert(Time::ZERO, Seq(1), b("a"));
        log.insert(Time::ZERO, Seq(5_000_000), b("m"));
        let missing = log.missing_in(Seq(1), Seq(10_000_000));
        assert_eq!(
            missing,
            vec![
                SeqRange {
                    first: Seq(2),
                    last: Seq(4_999_999)
                },
                SeqRange {
                    first: Seq(5_000_001),
                    last: Seq(10_000_000)
                },
            ]
        );
        // Edge runs: hole at the very start and very end of the span.
        let empty = LogStore::new(Retention::All);
        assert_eq!(
            empty.missing_in(Seq(10), Seq(20)),
            vec![SeqRange {
                first: Seq(10),
                last: Seq(20)
            }]
        );
        // Fully-held span has no runs.
        let mut full = LogStore::new(Retention::All);
        for i in 1..=5 {
            full.insert(Time::ZERO, Seq(i), b("x"));
        }
        assert_eq!(full.missing_in(Seq(1), Seq(5)), Vec::<SeqRange>::new());
    }

    #[test]
    fn count_retention_evicts_oldest() {
        let mut log = LogStore::new(Retention::Count(3));
        for i in 1..=5 {
            log.insert(Time::ZERO, Seq(i), b("x"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.oldest(), Some(Seq(3)));
        assert_eq!(log.newest(), Some(Seq(5)));
        assert!(!log.has(Seq(1)));
        assert!(log.has(Seq(5)));
        // Contiguity is not broken by pruning: everything through 5 was
        // once logged.
        assert_eq!(log.contiguous_high(), Some(Seq(5)));
    }

    #[test]
    fn lifetime_retention_expires() {
        let mut log = LogStore::new(Retention::Lifetime(Duration::from_secs(10)));
        log.insert(Time::ZERO, Seq(1), b("a"));
        log.insert(Time::from_secs(8), Seq(2), b("b"));
        log.prune(Time::from_secs(11));
        assert!(!log.has(Seq(1)));
        assert!(log.has(Seq(2)));
        log.prune(Time::from_secs(19));
        assert!(log.is_empty());
    }

    #[test]
    fn iter_in_order_across_wrap() {
        let mut log = LogStore::new(Retention::All);
        log.insert(Time::ZERO, Seq(u32::MAX), b("a"));
        log.insert(Time::ZERO, Seq(0), b("b"));
        log.insert(Time::ZERO, Seq(1), b("c"));
        let seqs: Vec<Seq> = log.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![Seq(u32::MAX), Seq(0), Seq(1)]);
        assert_eq!(log.contiguous_high(), Some(Seq(1)));
    }

    #[test]
    fn pruning_never_fakes_contiguity_over_a_gap() {
        // Seq 2 is never logged; even after pruning hides the hole, the
        // store must not claim contiguity past 1 — a primary reporting
        // otherwise would let the source discard an unlogged packet.
        let mut log = LogStore::new(Retention::Count(2));
        log.insert(Time::ZERO, Seq(1), b("a"));
        log.insert(Time::ZERO, Seq(3), b("c"));
        log.insert(Time::ZERO, Seq(4), b("d"));
        log.insert(Time::ZERO, Seq(5), b("e"));
        assert_eq!(log.contiguous_high(), Some(Seq(1)));
        // Late arrival of 2 (e.g. recovered from the source) repairs it.
        log.insert(Time::ZERO, Seq(2), b("b"));
        assert_eq!(log.contiguous_high(), Some(Seq(5)));
    }

    #[test]
    fn out_of_order_inserts() {
        let mut log = LogStore::new(Retention::All);
        log.insert(Time::ZERO, Seq(5), b("e"));
        log.insert(Time::ZERO, Seq(7), b("g"));
        log.insert(Time::ZERO, Seq(6), b("f"));
        assert_eq!(log.contiguous_high(), Some(Seq(7)));
        assert_eq!(log.missing_in(Seq(5), Seq(7)), Vec::<SeqRange>::new());
    }

    #[test]
    fn lifetime_prune_pops_expired_front_and_stops() {
        let mut log = LogStore::new(Retention::Lifetime(Duration::from_secs(10)));
        for i in 1..=3 {
            log.insert(Time::from_secs(i as u64), Seq(i), b("x"));
        }
        // At t=13 entries logged at 1 and 2 are expired, 3 is not.
        log.prune(Time::from_secs(13));
        assert!(!log.has(Seq(1)));
        assert!(!log.has(Seq(2)));
        assert!(log.has(Seq(3)));
        // A late out-of-order arrival (low seq, fresh timestamp) sits at
        // the front; the front-pop stops there — same shielding the
        // original front-scan had.
        log.insert(Time::from_secs(20), Seq(0), b("late-low"));
        log.prune(Time::from_secs(25));
        assert!(log.has(Seq(0)));
        assert!(log.has(Seq(3)), "shielded by the unexpired front entry");
    }
}
