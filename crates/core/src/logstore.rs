//! The packet log held by a logging server.
//!
//! "The length of time that the logging server must store a packet is
//! application-specific" (§2): some applications keep packets only for
//! their useful lifetime, others log everything. [`Retention`] captures
//! those policies; [`LogStore`] is the store itself, indexed by unwrapped
//! sequence number so wraparound is a non-event.
//!
//! Two interchangeable backends sit behind the same API, selected by
//! [`StoreBackend`] / the `LBRM_LOG_STORE` environment variable:
//!
//! * [`StoreBackend::Slab`] (the default) keeps entries in a
//!   [`SeqSlab`] — segmented storage with per-segment presence bitmaps,
//!   O(1) insert/get/has and word-scan span queries. This is the hot
//!   tier the repair path serves from.
//! * [`StoreBackend::Btree`] keeps the original `BTreeMap` and exists as
//!   a differential reference: `tests/logstore_diff_sim.rs` pins
//!   byte-identical traces across backends on seeded scenarios, and the
//!   randomized property tests in `crates/core/tests/` drive both
//!   through the same operation streams.
//!
//! Contiguity claims ([`LogStore::contiguous_high`]) are deliberately
//! *not* read from the slab's presence bitmaps: they come from an
//! [`IntervalSet`] of every index **ever** logged, which survives
//! pruning. A primary that reported contiguity from current presence
//! would let retention fake contiguity across a never-logged gap and the
//! source would discard an unlogged packet.

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;

use lbrm_wire::{Seq, SeqRange};

use crate::gaps::SeqUnwrapper;
use crate::slab::SeqSlab;
use crate::time::Time;

/// How long logged packets are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Keep everything (the paper's strong-persistence applications; a
    /// disk spill would hang off this policy in a deployment).
    All,
    /// Keep at most the newest `n` packets.
    Count(usize),
    /// Keep packets for their useful lifetime.
    Lifetime(Duration),
}

/// Which data structure backs a [`LogStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// Segmented slab with presence bitmaps: O(1) lookups, word-scan
    /// span queries (the default).
    #[default]
    Slab,
    /// The original `BTreeMap` store. Kept for differential testing —
    /// the slab must reproduce its visible behavior exactly.
    Btree,
}

impl StoreBackend {
    /// Backend selected by the `LBRM_LOG_STORE` environment variable.
    /// This is the hook the differential tests and the CI matrix use to
    /// run whole scenarios under both backends, so it is strict: only
    /// `"slab"`, `"btree"`, the empty string, or unset are accepted. A
    /// typo in the CI matrix must fail loudly — silently falling back to
    /// the slab would run the same backend twice and the differential
    /// coverage would evaporate without anyone noticing.
    ///
    /// # Panics
    ///
    /// Panics on any other value.
    pub fn from_env() -> StoreBackend {
        match std::env::var("LBRM_LOG_STORE") {
            Err(std::env::VarError::NotPresent) => StoreBackend::Slab,
            Err(e) => panic!("LBRM_LOG_STORE is not valid unicode: {e}"),
            Ok(v) => match Self::parse(&v) {
                Some(b) => b,
                None => {
                    panic!("LBRM_LOG_STORE must be \"slab\" or \"btree\" (or unset), got {v:?}")
                }
            },
        }
    }

    /// Parses a backend name: `"slab"`, `"btree"` (case-insensitive), or
    /// the empty string (treated as unset → the default slab).
    pub fn parse(v: &str) -> Option<StoreBackend> {
        if v.is_empty() || v.eq_ignore_ascii_case("slab") {
            Some(StoreBackend::Slab)
        } else if v.eq_ignore_ascii_case("btree") {
            Some(StoreBackend::Btree)
        } else {
            None
        }
    }
}

/// One logged packet. The sequence number is not stored: the unwrapped
/// index key re-wraps to it exactly.
#[derive(Debug, Clone)]
struct Entry {
    payload: Bytes,
    logged_at: Time,
}

/// A set of `u64` indexes stored as coalesced half-open runs
/// `[start, end)`. Memory is proportional to the number of *gaps*, not
/// packets, so "ever logged" bookkeeping stays small for long streams.
#[derive(Debug, Clone, Default)]
struct IntervalSet {
    runs: BTreeMap<u64, u64>,
}

impl IntervalSet {
    fn contains(&self, idx: u64) -> bool {
        self.runs
            .range(..=idx)
            .next_back()
            .is_some_and(|(_, &end)| idx < end)
    }

    /// Inserts one index, coalescing with neighbors. Returns `true` if new.
    fn insert(&mut self, idx: u64) -> bool {
        if self.contains(idx) {
            return false;
        }
        // Merge with a preceding run ending exactly at idx.
        let prev = self
            .runs
            .range(..=idx)
            .next_back()
            .filter(|(_, &end)| end == idx)
            .map(|(&s, _)| s);
        // Merge with a following run starting exactly at idx + 1.
        let next = self.runs.get(&(idx + 1)).copied();
        match (prev, next) {
            (Some(p), Some(n)) => {
                self.runs.remove(&(idx + 1));
                self.runs.insert(p, n);
            }
            (Some(p), None) => {
                self.runs.insert(p, idx + 1);
            }
            (None, Some(n)) => {
                self.runs.remove(&(idx + 1));
                self.runs.insert(idx, n);
            }
            (None, None) => {
                self.runs.insert(idx, idx + 1);
            }
        }
        true
    }

    /// The first (lowest) run, if any.
    fn first_run(&self) -> Option<(u64, u64)> {
        self.runs.first_key_value().map(|(&s, &e)| (s, e))
    }
}

/// Entry storage, one variant per [`StoreBackend`].
#[derive(Debug, Clone)]
enum Entries {
    Slab(SeqSlab<Entry>),
    Btree(BTreeMap<u64, Entry>),
}

/// An in-memory packet log with retention and contiguity tracking.
#[derive(Debug, Clone)]
pub struct LogStore {
    retention: Retention,
    unwrapper: SeqUnwrapper,
    entries: Entries,
    /// Every index ever logged (survives pruning), as coalesced runs:
    /// contiguity claims are made from this, so pruning can never fake
    /// contiguity across a never-logged gap.
    logged: IntervalSet,
}

impl LogStore {
    /// Creates an empty store with the given retention policy, on the
    /// backend named by `LBRM_LOG_STORE` (default: slab).
    pub fn new(retention: Retention) -> Self {
        Self::with_backend(retention, StoreBackend::from_env())
    }

    /// Creates an empty store on an explicit backend.
    pub fn with_backend(retention: Retention, backend: StoreBackend) -> Self {
        let entries = match backend {
            StoreBackend::Slab => Entries::Slab(SeqSlab::new()),
            StoreBackend::Btree => Entries::Btree(BTreeMap::new()),
        };
        LogStore {
            retention,
            unwrapper: SeqUnwrapper::new(),
            entries,
            logged: IntervalSet::default(),
        }
    }

    /// The backend this store runs on.
    pub fn backend(&self) -> StoreBackend {
        match &self.entries {
            Entries::Slab(_) => StoreBackend::Slab,
            Entries::Btree(_) => StoreBackend::Btree,
        }
    }

    /// Number of packets currently held.
    pub fn len(&self) -> usize {
        match &self.entries {
            Entries::Slab(s) => s.len(),
            Entries::Btree(m) => m.len(),
        }
    }

    /// `true` when no packets are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a packet; returns `true` if it was new. Duplicate inserts
    /// keep the original timestamp and payload.
    pub fn insert(&mut self, now: Time, seq: Seq, payload: Bytes) -> bool {
        let idx = self.unwrapper.unwrap(seq);
        let fresh = self.logged.insert(idx);
        if fresh {
            let entry = Entry {
                payload,
                logged_at: now,
            };
            match &mut self.entries {
                Entries::Slab(s) => {
                    s.insert(idx, entry);
                }
                Entries::Btree(m) => {
                    m.insert(idx, entry);
                }
            }
            self.prune(now);
        }
        fresh
    }

    /// Fetches a packet's payload if present.
    pub fn get(&self, seq: Seq) -> Option<Bytes> {
        let idx = self.unwrapper.peek(seq);
        match &self.entries {
            Entries::Slab(s) => s.get(idx).map(|e| e.payload.clone()),
            Entries::Btree(m) => m.get(&idx).map(|e| e.payload.clone()),
        }
    }

    /// `true` if the packet is currently held — answered from the
    /// presence bitmap (or key set); the payload is never cloned.
    pub fn has(&self, seq: Seq) -> bool {
        let idx = self.unwrapper.peek(seq);
        match &self.entries {
            Entries::Slab(s) => s.contains(idx),
            Entries::Btree(m) => m.contains_key(&idx),
        }
    }

    /// Highest sequence such that every packet from the lowest-ever
    /// logged one through it has been logged (the cumulative-ack value a
    /// primary reports in `LogAck`). `None` until anything is logged.
    ///
    /// Late out-of-order arrivals *below* the previous lowest sequence
    /// can lower this value; consumers treat `LogAck` release points as
    /// monotone (the sender keeps the max it has seen).
    pub fn contiguous_high(&self) -> Option<Seq> {
        self.logged
            .first_run()
            .map(|(_, end)| SeqUnwrapper::rewrap(end - 1))
    }

    /// Sequences in `[first, last]` that are *not* held, as coalesced
    /// inclusive runs (what a logger still needs to fetch from its
    /// parent). Cost is O(held + runs), never O(span): a request spanning
    /// millions of absent sequences returns a single run instead of
    /// iterating (and allocating) them all — a word scan over presence
    /// bitmaps on the slab, a range walk on the btree.
    pub fn missing_in(&self, first: Seq, last: Seq) -> Vec<SeqRange> {
        let lo = self.unwrapper.peek(first);
        let hi = self.unwrapper.peek(last);
        if hi < lo {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.missing_runs(lo, hi, &mut out);
        out
    }

    /// Appends the missing runs in `[lo, hi]` (unwrapped) to `out`.
    fn missing_runs(&self, lo: u64, hi: u64, out: &mut Vec<SeqRange>) {
        match &self.entries {
            Entries::Slab(s) => {
                s.missing_runs_in(lo, hi, |start, end| {
                    out.push(SeqRange {
                        first: SeqUnwrapper::rewrap(start),
                        last: SeqUnwrapper::rewrap(end),
                    });
                });
            }
            Entries::Btree(m) => {
                let mut cursor = lo;
                for &held in m.range(lo..=hi).map(|(k, _)| k) {
                    if held > cursor {
                        out.push(SeqRange {
                            first: SeqUnwrapper::rewrap(cursor),
                            last: SeqUnwrapper::rewrap(held - 1),
                        });
                    }
                    cursor = held + 1;
                }
                if cursor <= hi {
                    out.push(SeqRange {
                        first: SeqUnwrapper::rewrap(cursor),
                        last: SeqUnwrapper::rewrap(hi),
                    });
                }
            }
        }
    }

    /// Batched repair serving: partitions the `count` sequences starting
    /// at `first` into held payloads (appended to `present`, ascending
    /// sequence order) and missing runs (appended to `missing`,
    /// coalesced). One span scan replaces `count` individual
    /// `has`/`get` calls on the NACK path.
    pub fn collect_span(
        &self,
        first: Seq,
        count: u64,
        present: &mut Vec<(Seq, Bytes)>,
        missing: &mut Vec<SeqRange>,
    ) {
        if count == 0 {
            return;
        }
        let lo = self.unwrapper.peek(first);
        let hi = lo + (count - 1);
        match &self.entries {
            Entries::Slab(s) => {
                s.for_each_in(lo, hi, |idx, e| {
                    present.push((SeqUnwrapper::rewrap(idx), e.payload.clone()));
                });
            }
            Entries::Btree(m) => {
                for (&idx, e) in m.range(lo..=hi) {
                    present.push((SeqUnwrapper::rewrap(idx), e.payload.clone()));
                }
            }
        }
        self.missing_runs(lo, hi, missing);
    }

    /// Applies the retention policy at time `now`.
    pub fn prune(&mut self, now: Time) {
        match self.retention {
            Retention::All => {}
            Retention::Count(n) => match &mut self.entries {
                // The slab drops whole sealed segments in O(1) and
                // bit-trims only the head segment.
                Entries::Slab(s) => s.truncate_front(n),
                Entries::Btree(m) => {
                    while m.len() > n {
                        m.pop_first();
                    }
                }
            },
            Retention::Lifetime(ttl) => {
                // Entries sit in logged order for the in-order common
                // case, so expired ones cluster at the front: pop them
                // directly and stop at the first unexpired entry — no
                // temporary key Vec on every insert.
                match &mut self.entries {
                    Entries::Slab(s) => {
                        while let Some((_, e)) = s.first() {
                            if now.since(e.logged_at) > ttl {
                                s.pop_first();
                            } else {
                                break;
                            }
                        }
                    }
                    Entries::Btree(m) => {
                        while let Some(e) = m.first_entry() {
                            if now.since(e.get().logged_at) > ttl {
                                e.remove();
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Iterates held packets in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (Seq, &Bytes)> {
        let (slab, btree) = match &self.entries {
            Entries::Slab(s) => (Some(s.iter()), None),
            Entries::Btree(m) => (None, Some(m.iter())),
        };
        slab.into_iter()
            .flatten()
            .map(|(idx, e)| (SeqUnwrapper::rewrap(idx), &e.payload))
            .chain(
                btree
                    .into_iter()
                    .flatten()
                    .map(|(&idx, e)| (SeqUnwrapper::rewrap(idx), &e.payload)),
            )
    }

    /// The oldest held sequence, if any.
    pub fn oldest(&self) -> Option<Seq> {
        match &self.entries {
            Entries::Slab(s) => s.first().map(|(idx, _)| SeqUnwrapper::rewrap(idx)),
            Entries::Btree(m) => m
                .first_key_value()
                .map(|(&idx, _)| SeqUnwrapper::rewrap(idx)),
        }
    }

    /// The newest held sequence, if any.
    pub fn newest(&self) -> Option<Seq> {
        match &self.entries {
            Entries::Slab(s) => s.last().map(|(idx, _)| SeqUnwrapper::rewrap(idx)),
            Entries::Btree(m) => m
                .last_key_value()
                .map(|(&idx, _)| SeqUnwrapper::rewrap(idx)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    /// Runs a test body against both backends — every unit test below
    /// must hold identically on the slab and the btree reference.
    fn both(retention: Retention, test: impl Fn(LogStore)) {
        for backend in [StoreBackend::Slab, StoreBackend::Btree] {
            test(LogStore::with_backend(retention, backend));
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        both(Retention::All, |mut log| {
            assert!(log.insert(Time::ZERO, Seq(1), b("one")));
            assert!(log.insert(Time::ZERO, Seq(2), b("two")));
            assert!(!log.insert(Time::ZERO, Seq(1), b("dup")));
            assert_eq!(log.get(Seq(1)), Some(b("one"))); // original kept
            assert_eq!(log.get(Seq(3)), None);
            assert_eq!(log.len(), 2);
            assert!(!log.is_empty());
        });
    }

    #[test]
    fn contiguity_tracks_gaps() {
        both(Retention::All, |mut log| {
            assert_eq!(log.contiguous_high(), None);
            log.insert(Time::ZERO, Seq(1), b("a"));
            assert_eq!(log.contiguous_high(), Some(Seq(1)));
            log.insert(Time::ZERO, Seq(3), b("c"));
            assert_eq!(log.contiguous_high(), Some(Seq(1))); // 2 missing
            log.insert(Time::ZERO, Seq(2), b("b"));
            assert_eq!(log.contiguous_high(), Some(Seq(3)));
        });
    }

    #[test]
    fn missing_in_reports_holes() {
        both(Retention::All, |mut log| {
            log.insert(Time::ZERO, Seq(1), b("a"));
            log.insert(Time::ZERO, Seq(4), b("d"));
            assert_eq!(
                log.missing_in(Seq(1), Seq(4)),
                vec![SeqRange {
                    first: Seq(2),
                    last: Seq(3)
                }]
            );
            assert_eq!(log.missing_in(Seq(4), Seq(1)), Vec::<SeqRange>::new());
            assert_eq!(log.missing_in(Seq(1), Seq(1)), Vec::<SeqRange>::new());
        });
    }

    #[test]
    fn missing_in_emits_runs_not_sequences() {
        // A NACK spanning a mostly-empty range must cost O(held + runs):
        // the result is a handful of runs, never millions of elements.
        both(Retention::All, |mut log| {
            log.insert(Time::ZERO, Seq(1), b("a"));
            log.insert(Time::ZERO, Seq(5_000_000), b("m"));
            let missing = log.missing_in(Seq(1), Seq(10_000_000));
            assert_eq!(
                missing,
                vec![
                    SeqRange {
                        first: Seq(2),
                        last: Seq(4_999_999)
                    },
                    SeqRange {
                        first: Seq(5_000_001),
                        last: Seq(10_000_000)
                    },
                ]
            );
        });
        // Edge runs: hole at the very start and very end of the span.
        both(Retention::All, |empty| {
            assert_eq!(
                empty.missing_in(Seq(10), Seq(20)),
                vec![SeqRange {
                    first: Seq(10),
                    last: Seq(20)
                }]
            );
        });
        // Fully-held span has no runs.
        both(Retention::All, |mut full| {
            for i in 1..=5 {
                full.insert(Time::ZERO, Seq(i), b("x"));
            }
            assert_eq!(full.missing_in(Seq(1), Seq(5)), Vec::<SeqRange>::new());
        });
    }

    #[test]
    fn collect_span_partitions_present_and_missing() {
        both(Retention::All, |mut log| {
            log.insert(Time::ZERO, Seq(1), b("a"));
            log.insert(Time::ZERO, Seq(3), b("c"));
            log.insert(Time::ZERO, Seq(4), b("d"));
            let mut present = Vec::new();
            let mut missing = Vec::new();
            log.collect_span(Seq(1), 5, &mut present, &mut missing);
            let seqs: Vec<Seq> = present.iter().map(|(s, _)| *s).collect();
            assert_eq!(seqs, vec![Seq(1), Seq(3), Seq(4)]);
            assert_eq!(present[0].1, b("a"));
            assert_eq!(
                missing,
                vec![
                    SeqRange {
                        first: Seq(2),
                        last: Seq(2)
                    },
                    SeqRange {
                        first: Seq(5),
                        last: Seq(5)
                    },
                ]
            );
            // Zero-count spans touch nothing.
            present.clear();
            missing.clear();
            log.collect_span(Seq(1), 0, &mut present, &mut missing);
            assert!(present.is_empty() && missing.is_empty());
        });
    }

    #[test]
    fn count_retention_evicts_oldest() {
        both(Retention::Count(3), |mut log| {
            for i in 1..=5 {
                log.insert(Time::ZERO, Seq(i), b("x"));
            }
            assert_eq!(log.len(), 3);
            assert_eq!(log.oldest(), Some(Seq(3)));
            assert_eq!(log.newest(), Some(Seq(5)));
            assert!(!log.has(Seq(1)));
            assert!(log.has(Seq(5)));
            // Contiguity is not broken by pruning: everything through 5
            // was once logged.
            assert_eq!(log.contiguous_high(), Some(Seq(5)));
        });
    }

    #[test]
    fn lifetime_retention_expires() {
        both(Retention::Lifetime(Duration::from_secs(10)), |mut log| {
            log.insert(Time::ZERO, Seq(1), b("a"));
            log.insert(Time::from_secs(8), Seq(2), b("b"));
            log.prune(Time::from_secs(11));
            assert!(!log.has(Seq(1)));
            assert!(log.has(Seq(2)));
            log.prune(Time::from_secs(19));
            assert!(log.is_empty());
        });
    }

    #[test]
    fn iter_in_order_across_wrap() {
        both(Retention::All, |mut log| {
            log.insert(Time::ZERO, Seq(u32::MAX), b("a"));
            log.insert(Time::ZERO, Seq(0), b("b"));
            log.insert(Time::ZERO, Seq(1), b("c"));
            let seqs: Vec<Seq> = log.iter().map(|(s, _)| s).collect();
            assert_eq!(seqs, vec![Seq(u32::MAX), Seq(0), Seq(1)]);
            assert_eq!(log.contiguous_high(), Some(Seq(1)));
        });
    }

    #[test]
    fn pruning_never_fakes_contiguity_over_a_gap() {
        // Seq 2 is never logged; even after pruning hides the hole, the
        // store must not claim contiguity past 1 — a primary reporting
        // otherwise would let the source discard an unlogged packet.
        both(Retention::Count(2), |mut log| {
            log.insert(Time::ZERO, Seq(1), b("a"));
            log.insert(Time::ZERO, Seq(3), b("c"));
            log.insert(Time::ZERO, Seq(4), b("d"));
            log.insert(Time::ZERO, Seq(5), b("e"));
            assert_eq!(log.contiguous_high(), Some(Seq(1)));
            // Late arrival of 2 (e.g. recovered from the source) repairs
            // it.
            log.insert(Time::ZERO, Seq(2), b("b"));
            assert_eq!(log.contiguous_high(), Some(Seq(5)));
        });
    }

    #[test]
    fn out_of_order_inserts() {
        both(Retention::All, |mut log| {
            log.insert(Time::ZERO, Seq(5), b("e"));
            log.insert(Time::ZERO, Seq(7), b("g"));
            log.insert(Time::ZERO, Seq(6), b("f"));
            assert_eq!(log.contiguous_high(), Some(Seq(7)));
            assert_eq!(log.missing_in(Seq(5), Seq(7)), Vec::<SeqRange>::new());
        });
    }

    #[test]
    fn lifetime_prune_pops_expired_front_and_stops() {
        both(Retention::Lifetime(Duration::from_secs(10)), |mut log| {
            for i in 1..=3 {
                log.insert(Time::from_secs(i as u64), Seq(i), b("x"));
            }
            // At t=13 entries logged at 1 and 2 are expired, 3 is not.
            log.prune(Time::from_secs(13));
            assert!(!log.has(Seq(1)));
            assert!(!log.has(Seq(2)));
            assert!(log.has(Seq(3)));
            // A late out-of-order arrival (low seq, fresh timestamp) sits
            // at the front; the front-pop stops there — same shielding
            // the original front-scan had.
            log.insert(Time::from_secs(20), Seq(0), b("late-low"));
            log.prune(Time::from_secs(25));
            assert!(log.has(Seq(0)));
            assert!(log.has(Seq(3)), "shielded by the unexpired front entry");
        });
    }

    #[test]
    fn count_retention_across_segment_boundaries() {
        // Retention smaller than a segment, stream longer than several
        // segments: whole-segment drops plus head trims must agree with
        // the btree's pop_first loop.
        both(Retention::Count(100), |mut log| {
            for i in 1..=20_000u32 {
                log.insert(Time::ZERO, Seq(i), b("x"));
            }
            assert_eq!(log.len(), 100);
            assert_eq!(log.oldest(), Some(Seq(19_901)));
            assert_eq!(log.newest(), Some(Seq(20_000)));
            assert!(!log.has(Seq(19_900)));
            assert!(log.has(Seq(19_901)));
        });
    }

    #[test]
    fn backend_parse_and_default() {
        assert_eq!(StoreBackend::parse(""), Some(StoreBackend::Slab));
        assert_eq!(StoreBackend::parse("slab"), Some(StoreBackend::Slab));
        assert_eq!(StoreBackend::parse("SLAB"), Some(StoreBackend::Slab));
        assert_eq!(StoreBackend::parse("btree"), Some(StoreBackend::Btree));
        assert_eq!(StoreBackend::parse("lsm"), None);
        assert_eq!(
            LogStore::with_backend(Retention::All, StoreBackend::Btree).backend(),
            StoreBackend::Btree
        );
    }
}
