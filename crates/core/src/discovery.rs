//! Expanding-ring logger discovery (§2.2.1).
//!
//! "Each host uses a series of scoped multicast discovery queries to
//! locate a nearby logging service." The client multicasts a
//! [`Packet::DiscoveryQuery`] at site scope, collects replies for a short
//! window, and widens to region then global scope if nothing answers.
//! The first reply at the narrowest answering scope is the nearest
//! logger; ties within the window are broken toward the lower hierarchy
//! level only when the first reply is a primary and a secondary also
//! answered (local recovery is the point of the exercise).

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lbrm_wire::{GroupId, HostId, Packet, TtlScope};

use crate::machine::{Action, Actions, Machine, Notice};
use crate::time::Time;

/// Discovery client configuration.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Group whose logging service is sought.
    pub group: GroupId,
    /// This host.
    pub host: HostId,
    /// How long to collect replies at each scope.
    pub scope_wait: Duration,
    /// Queries per scope before widening.
    pub attempts_per_scope: u32,
    /// Re-run the whole search after failure (`None` = give up).
    pub retry_after: Option<Duration>,
    /// Determinism seed for nonces.
    pub seed: u64,
}

impl DiscoveryConfig {
    /// A conventional configuration.
    pub fn new(group: GroupId, host: HostId) -> Self {
        DiscoveryConfig {
            group,
            host,
            scope_wait: Duration::from_millis(200),
            attempts_per_scope: 2,
            retry_after: None,
            seed: host.raw(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Searching at `scope`, attempt number `attempt`, until `deadline`.
    Searching {
        scope: TtlScope,
        attempt: u32,
        deadline: Time,
    },
    Done,
    Failed,
}

/// The discovery client state machine.
pub struct DiscoveryClient {
    config: DiscoveryConfig,
    rng: SmallRng,
    phase: Phase,
    nonce: u64,
    /// Replies collected in the current window: (logger, level), arrival
    /// order preserved.
    replies: Vec<(HostId, u8)>,
    result: Option<(HostId, u8, TtlScope)>,
    retry_at: Option<Time>,
}

impl DiscoveryClient {
    /// Creates a client; the search starts at
    /// [`Machine::on_start`].
    pub fn new(config: DiscoveryConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        DiscoveryClient {
            config,
            rng,
            phase: Phase::Idle,
            nonce: 0,
            replies: Vec::new(),
            result: None,
            retry_at: None,
        }
    }

    /// The discovered logger, once found.
    pub fn result(&self) -> Option<(HostId, u8, TtlScope)> {
        self.result
    }

    /// `true` once the search ended (found or failed).
    pub fn finished(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Failed)
    }

    fn query(&mut self, now: Time, scope: TtlScope, attempt: u32, out: &mut Actions) {
        self.nonce = self.rng.random();
        self.replies.clear();
        self.phase = Phase::Searching {
            scope,
            attempt,
            deadline: now + self.config.scope_wait,
        };
        out.push(Action::Multicast {
            scope,
            packet: Packet::DiscoveryQuery {
                group: self.config.group,
                nonce: self.nonce,
                requester: self.config.host,
            },
        });
    }

    fn conclude_window(&mut self, now: Time, out: &mut Actions) {
        let Phase::Searching { scope, attempt, .. } = self.phase else {
            return;
        };
        if !self.replies.is_empty() {
            // Nearest = first to answer; but prefer a secondary over a
            // primary that happened to answer marginally earlier, so
            // site-local recovery wins.
            let (mut logger, mut level) = self.replies[0];
            if level == 0 {
                if let Some(&(l, lv)) = self.replies.iter().find(|(_, lv)| *lv > 0) {
                    logger = l;
                    level = lv;
                }
            }
            self.result = Some((logger, level, scope));
            self.phase = Phase::Done;
            out.push(Action::Notice(Notice::LoggerDiscovered {
                logger,
                level,
                scope,
            }));
            return;
        }
        if attempt + 1 < self.config.attempts_per_scope {
            self.query(now, scope, attempt + 1, out);
        } else if let Some(wider) = scope.widen() {
            self.query(now, wider, 0, out);
        } else {
            self.phase = Phase::Failed;
            out.push(Action::Notice(Notice::DiscoveryFailed));
            if let Some(after) = self.config.retry_after {
                self.retry_at = Some(now + after);
            }
        }
    }
}

impl Machine for DiscoveryClient {
    fn on_start(&mut self, now: Time, out: &mut Actions) {
        if self.phase == Phase::Idle {
            self.query(now, TtlScope::Site, 0, out);
        }
    }

    fn on_packet(&mut self, _now: Time, _from: HostId, packet: Packet, out: &mut Actions) {
        let _ = out;
        if let Packet::DiscoveryReply {
            group,
            nonce,
            logger,
            level,
        } = packet
        {
            if group == self.config.group
                && nonce == self.nonce
                && matches!(self.phase, Phase::Searching { .. })
            {
                self.replies.push((logger, level));
            }
        }
    }

    fn poll(&mut self, now: Time, out: &mut Actions) {
        match self.phase {
            Phase::Searching { deadline, .. } if now >= deadline => {
                self.conclude_window(now, out);
            }
            Phase::Failed => {
                if let Some(at) = self.retry_at {
                    if now >= at {
                        self.retry_at = None;
                        self.query(now, TtlScope::Site, 0, out);
                    }
                }
            }
            _ => {}
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        match self.phase {
            Phase::Searching { deadline, .. } => Some(deadline),
            Phase::Failed => self.retry_at,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::notices;

    const GROUP: GroupId = GroupId(1);
    const ME: HostId = HostId(1);

    fn reply(client: &DiscoveryClient, logger: u64, level: u8) -> Packet {
        Packet::DiscoveryReply {
            group: GROUP,
            nonce: client.nonce,
            logger: HostId(logger),
            level,
        }
    }

    fn client() -> DiscoveryClient {
        DiscoveryClient::new(DiscoveryConfig::new(GROUP, ME))
    }

    #[test]
    fn finds_site_logger_first() {
        let mut c = client();
        let mut out = Actions::new();
        c.on_start(Time::ZERO, &mut out);
        assert!(matches!(
            &out[..],
            [Action::Multicast {
                scope: TtlScope::Site,
                packet: Packet::DiscoveryQuery { .. }
            }]
        ));
        let r = reply(&c, 50, 1);
        c.on_packet(Time::from_millis(5), HostId(50), r, &mut out);
        out.clear();
        c.poll(c.next_deadline().unwrap(), &mut out);
        assert_eq!(c.result(), Some((HostId(50), 1, TtlScope::Site)));
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::LoggerDiscovered { logger, level: 1, scope: TtlScope::Site }
                if *logger == HostId(50)
        )));
    }

    #[test]
    fn widens_scope_when_silent() {
        let mut c = client();
        let mut out = Actions::new();
        c.on_start(Time::ZERO, &mut out);
        let mut scopes = vec![TtlScope::Site];
        // Exhaust attempts: 2 per scope × 3 scopes.
        for _ in 0..6 {
            let Some(d) = c.next_deadline() else { break };
            out.clear();
            c.poll(d, &mut out);
            for a in &out {
                if let Action::Multicast { scope, .. } = a {
                    scopes.push(*scope);
                }
            }
        }
        assert_eq!(
            scopes,
            vec![
                TtlScope::Site,
                TtlScope::Site,
                TtlScope::Region,
                TtlScope::Region,
                TtlScope::Global,
                TtlScope::Global
            ]
        );
        assert!(c.finished());
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::DiscoveryFailed)));
    }

    #[test]
    fn prefers_secondary_over_primary_in_same_window() {
        let mut c = client();
        let mut out = Actions::new();
        c.on_start(Time::ZERO, &mut out);
        let r0 = reply(&c, 9, 0);
        let r1 = reply(&c, 50, 1);
        c.on_packet(Time::from_millis(1), HostId(9), r0, &mut out);
        c.on_packet(Time::from_millis(2), HostId(50), r1, &mut out);
        out.clear();
        c.poll(c.next_deadline().unwrap(), &mut out);
        assert_eq!(c.result().unwrap().0, HostId(50));
    }

    #[test]
    fn stale_nonce_ignored() {
        let mut c = client();
        let mut out = Actions::new();
        c.on_start(Time::ZERO, &mut out);
        let stale = Packet::DiscoveryReply {
            group: GROUP,
            nonce: c.nonce.wrapping_add(1),
            logger: HostId(66),
            level: 1,
        };
        c.on_packet(Time::from_millis(1), HostId(66), stale, &mut out);
        out.clear();
        c.poll(c.next_deadline().unwrap(), &mut out);
        // Window concluded with no valid replies → second site attempt.
        assert!(c.result().is_none());
        assert!(matches!(
            &out[..],
            [Action::Multicast {
                scope: TtlScope::Site,
                ..
            }]
        ));
    }

    #[test]
    fn retry_after_failure() {
        let mut cfg = DiscoveryConfig::new(GROUP, ME);
        cfg.retry_after = Some(Duration::from_secs(5));
        cfg.attempts_per_scope = 1;
        let mut c = DiscoveryClient::new(cfg);
        let mut out = Actions::new();
        c.on_start(Time::ZERO, &mut out);
        for _ in 0..3 {
            let d = c.next_deadline().unwrap();
            out.clear();
            c.poll(d, &mut out);
        }
        assert!(matches!(c.phase, Phase::Failed));
        let retry = c.next_deadline().unwrap();
        out.clear();
        c.poll(retry, &mut out);
        assert!(matches!(
            &out[..],
            [Action::Multicast {
                scope: TtlScope::Site,
                ..
            }]
        ));
    }
}
