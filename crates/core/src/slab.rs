//! A segmented slab keyed by unwrapped sequence index.
//!
//! The packet log and the sender's retransmit buffer both map a dense,
//! mostly-contiguous band of unwrapped sequence indexes to payloads, and
//! both sit on the repair hot path: every NACK serve is a lookup, every
//! `LogAck` release is a front trim. A `BTreeMap` pays tree
//! pointer-chasing per operation; [`SeqSlab`] replaces it with fixed-size
//! **segments** of `SEG_SIZE` slots addressed by `idx >> SEG_SHIFT`, each
//! carrying a presence bitmap of `[u64; 64]` words:
//!
//! * `insert`/`get`/`remove`/`contains` are O(1) index arithmetic plus
//!   one bit test;
//! * span scans ([`SeqSlab::for_each_in`], [`SeqSlab::missing_runs_in`])
//!   are word scans over the bitmaps — a `trailing_zeros` walk that
//!   skips absent segments wholesale and never iterates per-entry over
//!   holes;
//! * front trimming ([`SeqSlab::truncate_front`], [`SeqSlab::retain`])
//!   drops whole sealed segments in O(1) and bit-clears only inside the
//!   head segment.
//!
//! Slot vectors grow lazily toward the highest occupied offset, so a
//! thousand small logs (one per simulated site) do not each pay
//! `SEG_SIZE * size_of::<T>()` up front.
//!
//! Indexes are expected to come from
//! [`SeqUnwrapper`](crate::gaps::SeqUnwrapper) — a monotone band within
//! ±2^31 of the stream head, far below `u64::MAX` (the arithmetic here
//! assumes `idx + 1` and `(seg + 1) << SEG_SHIFT` cannot overflow).
//! Memory is proportional to the *span* of live segments, not the live
//! count: an insert far below the current base extends the segment
//! directory (8 bytes per intervening segment), which the ±2^31 reorder
//! bound keeps at a few megabytes even in the adversarial worst case.

use std::collections::VecDeque;

/// log2 of the segment size: segments hold 4096 slots.
pub const SEG_SHIFT: u32 = 12;
/// Slots per segment.
pub const SEG_SIZE: usize = 1 << SEG_SHIFT;
const SEG_MASK: u64 = (SEG_SIZE as u64) - 1;
/// Bitmap words per segment.
const WORDS: usize = SEG_SIZE / 64;

#[derive(Debug, Clone)]
struct Segment<T> {
    /// Presence bitmap: bit `off` set iff `slots[off]` holds a value.
    bits: [u64; WORDS],
    /// Number of set bits (live slots).
    len: u32,
    /// Values, grown lazily toward the highest occupied offset.
    slots: Vec<Option<T>>,
}

impl<T> Segment<T> {
    fn new() -> Self {
        Segment {
            bits: [0; WORDS],
            len: 0,
            slots: Vec::new(),
        }
    }

    #[inline]
    fn contains(&self, off: usize) -> bool {
        (self.bits[off >> 6] >> (off & 63)) & 1 == 1
    }

    #[inline]
    fn get(&self, off: usize) -> Option<&T> {
        if self.contains(off) {
            self.slots[off].as_ref()
        } else {
            None
        }
    }

    fn insert(&mut self, off: usize, v: T) -> Option<T> {
        if self.slots.len() <= off {
            self.slots.resize_with(off + 1, || None);
        }
        let old = self.slots[off].replace(v);
        if old.is_none() {
            self.bits[off >> 6] |= 1u64 << (off & 63);
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, off: usize) -> Option<T> {
        if !self.contains(off) {
            return None;
        }
        self.bits[off >> 6] &= !(1u64 << (off & 63));
        self.len -= 1;
        self.slots[off].take()
    }

    fn first_set(&self) -> Option<usize> {
        self.bits
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| (i << 6) | w.trailing_zeros() as usize)
    }

    fn last_set(&self) -> Option<usize> {
        self.bits
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| (i << 6) | (63 - w.leading_zeros() as usize))
    }
}

/// A map from `u64` index to `T`, laid out as a deque of fixed-size
/// segments with per-segment presence bitmaps. See the module docs for
/// the layout and complexity story.
#[derive(Debug, Clone)]
pub struct SeqSlab<T> {
    /// Absolute segment number of `segs[0]`.
    base_seg: u64,
    /// Segment directory; `None` entries are never-touched (or fully
    /// dropped) segments inside the live span.
    segs: VecDeque<Option<Box<Segment<T>>>>,
    /// Total live entries across all segments.
    len: usize,
}

impl<T> Default for SeqSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SeqSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        SeqSlab {
            base_seg: 0,
            segs: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn seg_ref(&self, seg_num: u64) -> Option<&Segment<T>> {
        if seg_num < self.base_seg {
            return None;
        }
        self.segs
            .get((seg_num - self.base_seg) as usize)?
            .as_deref()
    }

    /// Fetches the value at `idx`, if present.
    #[inline]
    pub fn get(&self, idx: u64) -> Option<&T> {
        self.seg_ref(idx >> SEG_SHIFT)?
            .get((idx & SEG_MASK) as usize)
    }

    /// `true` iff `idx` holds a value — answered from the bitmap, the
    /// value itself is never touched.
    #[inline]
    pub fn contains(&self, idx: u64) -> bool {
        self.seg_ref(idx >> SEG_SHIFT)
            .is_some_and(|s| s.contains((idx & SEG_MASK) as usize))
    }

    /// Inserts a value at `idx`, returning the previous one if any.
    pub fn insert(&mut self, idx: u64, v: T) -> Option<T> {
        let seg_num = idx >> SEG_SHIFT;
        if self.segs.is_empty() {
            self.base_seg = seg_num;
            self.segs.push_back(None);
        } else if seg_num < self.base_seg {
            for _ in 0..(self.base_seg - seg_num) {
                self.segs.push_front(None);
            }
            self.base_seg = seg_num;
        } else {
            let need = (seg_num - self.base_seg) as usize + 1;
            while self.segs.len() < need {
                self.segs.push_back(None);
            }
        }
        let rel = (seg_num - self.base_seg) as usize;
        let seg = self.segs[rel].get_or_insert_with(|| Box::new(Segment::new()));
        let old = seg.insert((idx & SEG_MASK) as usize, v);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at `idx`, if present.
    pub fn remove(&mut self, idx: u64) -> Option<T> {
        let seg_num = idx >> SEG_SHIFT;
        if seg_num < self.base_seg {
            return None;
        }
        let rel = (seg_num - self.base_seg) as usize;
        let seg = self.segs.get_mut(rel)?.as_deref_mut()?;
        let v = seg.remove((idx & SEG_MASK) as usize);
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// Drops leading segments that hold nothing.
    fn shrink_front(&mut self) {
        while let Some(front) = self.segs.front() {
            if front.as_ref().is_none_or(|s| s.len == 0) {
                self.segs.pop_front();
                self.base_seg += 1;
            } else {
                break;
            }
        }
    }

    /// The lowest live entry, if any.
    pub fn first(&self) -> Option<(u64, &T)> {
        for (seg_num, slot) in (self.base_seg..).zip(self.segs.iter()) {
            if let Some(seg) = slot.as_deref() {
                if seg.len > 0 {
                    let off = seg.first_set().expect("len > 0 implies a set bit");
                    let v = seg.slots[off].as_ref().expect("bit set implies slot");
                    return Some(((seg_num << SEG_SHIFT) | off as u64, v));
                }
            }
        }
        None
    }

    /// The highest live entry, if any.
    pub fn last(&self) -> Option<(u64, &T)> {
        let mut seg_num = self.base_seg + self.segs.len() as u64;
        for slot in self.segs.iter().rev() {
            seg_num -= 1;
            if let Some(seg) = slot.as_deref() {
                if seg.len > 0 {
                    let off = seg.last_set().expect("len > 0 implies a set bit");
                    let v = seg.slots[off].as_ref().expect("bit set implies slot");
                    return Some(((seg_num << SEG_SHIFT) | off as u64, v));
                }
            }
        }
        None
    }

    /// Removes and returns the lowest live entry, if any.
    pub fn pop_first(&mut self) -> Option<(u64, T)> {
        self.shrink_front();
        let seg = self
            .segs
            .front_mut()?
            .as_deref_mut()
            .expect("shrink_front leaves a live front segment");
        let off = seg.first_set().expect("live front segment");
        let v = seg.remove(off).expect("bit set implies slot");
        let idx = (self.base_seg << SEG_SHIFT) | off as u64;
        self.len -= 1;
        self.shrink_front();
        Some((idx, v))
    }

    /// Drops the oldest entries until at most `target` remain. Whole
    /// leading segments are dropped in O(1); only the segment straddling
    /// the new front is bit-trimmed in place.
    pub fn truncate_front(&mut self, target: usize) {
        while self.len > target {
            self.shrink_front();
            let front = self
                .segs
                .front_mut()
                .expect("len > 0 implies a segment")
                .as_deref_mut()
                .expect("shrink_front leaves a live front segment");
            let excess = self.len - target;
            if front.len as usize <= excess {
                self.len -= front.len as usize;
                self.segs.pop_front();
                self.base_seg += 1;
            } else {
                let mut to_clear = excess;
                'words: for w in 0..WORDS {
                    while front.bits[w] != 0 {
                        let b = front.bits[w].trailing_zeros() as usize;
                        front.bits[w] &= front.bits[w] - 1;
                        front.slots[(w << 6) | b] = None;
                        front.len -= 1;
                        to_clear -= 1;
                        if to_clear == 0 {
                            break 'words;
                        }
                    }
                }
                debug_assert_eq!(to_clear, 0);
                self.len -= excess;
            }
        }
        self.shrink_front();
    }

    /// Keeps only entries for which `f` returns `true`, then drops
    /// emptied leading segments.
    pub fn retain(&mut self, mut f: impl FnMut(u64, &T) -> bool) {
        for (seg_num, slot) in (self.base_seg..).zip(self.segs.iter_mut()) {
            if let Some(seg) = slot.as_deref_mut() {
                let seg_base = seg_num << SEG_SHIFT;
                for w in 0..WORDS {
                    let mut bits = seg.bits[w];
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let off = (w << 6) | b;
                        let keep = f(
                            seg_base | off as u64,
                            seg.slots[off].as_ref().expect("bit set implies slot"),
                        );
                        if !keep {
                            seg.bits[w] &= !(1u64 << b);
                            seg.slots[off] = None;
                            seg.len -= 1;
                            self.len -= 1;
                        }
                    }
                }
            }
        }
        self.shrink_front();
    }

    /// Calls `f` for every live entry with index in `[lo, hi]`, in
    /// ascending order. This is the batched serving primitive: a word
    /// scan with a `trailing_zeros` walk per occupied word; absent or
    /// empty segments inside the span are skipped in O(1) each.
    pub fn for_each_in(&self, lo: u64, hi: u64, mut f: impl FnMut(u64, &T)) {
        if self.len == 0 || hi < lo || self.segs.is_empty() {
            return;
        }
        let lo_seg = lo >> SEG_SHIFT;
        let hi_seg = hi >> SEG_SHIFT;
        let last_alloc = self.base_seg + self.segs.len() as u64 - 1;
        let mut seg_num = lo_seg.max(self.base_seg);
        let stop = hi_seg.min(last_alloc);
        while seg_num <= stop {
            if let Some(seg) = self.segs[(seg_num - self.base_seg) as usize].as_deref() {
                if seg.len > 0 {
                    let seg_base = seg_num << SEG_SHIFT;
                    let w_lo = if seg_num == lo_seg {
                        ((lo & SEG_MASK) >> 6) as usize
                    } else {
                        0
                    };
                    let w_hi = if seg_num == hi_seg {
                        ((hi & SEG_MASK) >> 6) as usize
                    } else {
                        WORDS - 1
                    };
                    for w in w_lo..=w_hi {
                        let mut bits = seg.bits[w];
                        if seg_num == lo_seg && w == w_lo {
                            bits &= u64::MAX << (lo & 63);
                        }
                        if seg_num == hi_seg && w == w_hi {
                            bits &= u64::MAX >> (63 - (hi & 63));
                        }
                        while bits != 0 {
                            let b = bits.trailing_zeros() as u64;
                            bits &= bits - 1;
                            let off = ((w as u64) << 6) | b;
                            f(
                                seg_base | off,
                                seg.slots[off as usize]
                                    .as_ref()
                                    .expect("bit set implies slot"),
                            );
                        }
                    }
                }
            }
            seg_num += 1;
        }
    }

    /// Emits the *missing* index runs in `[lo, hi]` as coalesced
    /// inclusive `(start, end)` pairs — the complement of
    /// [`for_each_in`](Self::for_each_in) over the span. Cost is
    /// O(occupied words + runs), never O(span).
    pub fn missing_runs_in(&self, lo: u64, hi: u64, mut emit: impl FnMut(u64, u64)) {
        if hi < lo {
            return;
        }
        let mut cursor = lo;
        self.for_each_in(lo, hi, |idx, _| {
            if idx > cursor {
                emit(cursor, idx - 1);
            }
            cursor = idx + 1;
        });
        if cursor <= hi {
            emit(cursor, hi);
        }
    }

    /// Iterates live entries with index in `[lo, hi]`, ascending.
    pub fn range(&self, lo: u64, hi: u64) -> Range<'_, T> {
        Range {
            slab: self,
            cursor: lo,
            hi,
            done: self.len == 0 || hi < lo,
        }
    }

    /// Iterates all live entries in ascending index order.
    pub fn iter(&self) -> Range<'_, T> {
        self.range(0, u64::MAX)
    }
}

/// Ascending iterator over a [`SeqSlab`] index span.
pub struct Range<'a, T> {
    slab: &'a SeqSlab<T>,
    cursor: u64,
    hi: u64,
    done: bool,
}

impl<'a, T> Iterator for Range<'a, T> {
    type Item = (u64, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let slab = self.slab;
        if slab.segs.is_empty() {
            self.done = true;
            return None;
        }
        let last_alloc = slab.base_seg + slab.segs.len() as u64 - 1;
        while self.cursor <= self.hi {
            let seg_num = self.cursor >> SEG_SHIFT;
            if seg_num < slab.base_seg {
                self.cursor = slab.base_seg << SEG_SHIFT;
                continue;
            }
            if seg_num > last_alloc {
                break;
            }
            if let Some(seg) = slab.segs[(seg_num - slab.base_seg) as usize].as_deref() {
                let off = (self.cursor & SEG_MASK) as usize;
                let mut w = off >> 6;
                let mut bits = seg.bits[w] & (u64::MAX << (off & 63));
                loop {
                    if bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        let idx = (seg_num << SEG_SHIFT) | ((w as u64) << 6) | b as u64;
                        if idx > self.hi {
                            self.done = true;
                            return None;
                        }
                        self.cursor = idx + 1;
                        let v = seg.slots[(w << 6) | b]
                            .as_ref()
                            .expect("bit set implies slot");
                        return Some((idx, v));
                    }
                    w += 1;
                    if w == WORDS {
                        break;
                    }
                    bits = seg.bits[w];
                }
            }
            self.cursor = (seg_num + 1) << SEG_SHIFT;
        }
        self.done = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(s: &SeqSlab<u64>) -> Vec<u64> {
        s.iter().map(|(i, _)| i).collect()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = SeqSlab::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(5, 50), None);
        assert_eq!(s.insert(5, 55), Some(50));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(5), Some(&55));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.remove(5), Some(55));
        assert_eq!(s.remove(5), None);
        assert!(s.is_empty());
    }

    #[test]
    fn spans_segment_boundaries() {
        let mut s = SeqSlab::new();
        // Straddle the 4096 boundary and a far-away segment.
        for idx in [4094, 4095, 4096, 4097, 20_000] {
            s.insert(idx, idx);
        }
        assert_eq!(keys(&s), vec![4094, 4095, 4096, 4097, 20_000]);
        assert_eq!(s.first(), Some((4094, &4094)));
        assert_eq!(s.last(), Some((20_000, &20_000)));
        let mut missing = Vec::new();
        s.missing_runs_in(4090, 4100, |a, b| missing.push((a, b)));
        assert_eq!(missing, vec![(4090, 4093), (4098, 4100)]);
    }

    #[test]
    fn insert_below_base_extends_front() {
        let mut s = SeqSlab::new();
        s.insert(10_000, 1);
        s.insert(3, 2);
        assert_eq!(keys(&s), vec![3, 10_000]);
        assert_eq!(s.first(), Some((3, &2)));
    }

    #[test]
    fn word_boundary_masks() {
        let mut s = SeqSlab::new();
        for idx in [63, 64, 127, 128] {
            s.insert(idx, idx);
        }
        let mut got = Vec::new();
        s.for_each_in(63, 128, |i, _| got.push(i));
        assert_eq!(got, vec![63, 64, 127, 128]);
        got.clear();
        s.for_each_in(64, 127, |i, _| got.push(i));
        assert_eq!(got, vec![64, 127]);
        let mut missing = Vec::new();
        s.missing_runs_in(63, 128, |a, b| missing.push((a, b)));
        assert_eq!(missing, vec![(65, 126)]);
    }

    #[test]
    fn missing_runs_skip_absent_segments_cheaply() {
        let mut s = SeqSlab::new();
        s.insert(1, 1);
        s.insert(5_000_000, 2);
        let mut missing = Vec::new();
        s.missing_runs_in(1, 10_000_000, |a, b| missing.push((a, b)));
        assert_eq!(missing, vec![(2, 4_999_999), (5_000_001, 10_000_000)]);
        // Entirely-empty span.
        let empty: SeqSlab<u64> = SeqSlab::new();
        let mut runs = Vec::new();
        empty.missing_runs_in(10, 20, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(10, 20)]);
    }

    #[test]
    fn pop_first_and_truncate_front() {
        let mut s = SeqSlab::new();
        for idx in 0..10_000u64 {
            s.insert(idx, idx);
        }
        assert_eq!(s.pop_first(), Some((0, 0)));
        // Trim to 100 entries: drops two whole segments plus a bit-trim.
        s.truncate_front(100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.first().map(|(i, _)| i), Some(9900));
        assert_eq!(s.last().map(|(i, _)| i), Some(9999));
        s.truncate_front(0);
        assert!(s.is_empty());
        assert_eq!(s.pop_first(), None);
    }

    #[test]
    fn retain_drops_and_shrinks() {
        let mut s = SeqSlab::new();
        for idx in 0..9000u64 {
            s.insert(idx, idx);
        }
        s.retain(|idx, _| idx >= 8500);
        assert_eq!(s.len(), 500);
        assert_eq!(s.first().map(|(i, _)| i), Some(8500));
        // The front segments (0 and 1) were emptied and dropped.
        assert!(s.base_seg >= 2);
    }

    #[test]
    fn range_iterates_within_bounds() {
        let mut s = SeqSlab::new();
        for idx in [2, 64, 4095, 4096, 9000] {
            s.insert(idx, idx * 10);
        }
        let got: Vec<u64> = s.range(64, 4096).map(|(i, _)| i).collect();
        assert_eq!(got, vec![64, 4095, 4096]);
        assert_eq!(s.range(5, 1).count(), 0);
        assert_eq!(s.range(9001, u64::MAX).count(), 0);
    }
}
