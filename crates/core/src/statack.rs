//! The sender-side statistical acknowledgement engine (§2.3).
//!
//! The source divides its transmission into *epochs*. At each epoch
//! boundary it multicasts an Acker Selection Packet carrying `p_ack =
//! k / N_sl`; each secondary logger volunteers as a *Designated Acker*
//! with that probability and then unicasts an ACK for every data packet
//! of the epoch it receives. Knowing exactly how many ACKs to expect, the
//! source can distinguish isolated loss (serve retransmission requests by
//! unicast) from widespread loss (re-multicast immediately) within one
//! `t_wait` of sending — preventing NACK implosion in the common case of
//! loss on its own outgoing tail circuit (§2.3.4).
//!
//! This module is the bookkeeping core; [`crate::sender::Sender`] turns
//! its outputs into packets.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

use lbrm_wire::{EpochId, HostId, Seq};

use crate::estimate::{BolotConfig, BolotProbe, NslEstimator, ProbeStatus};
use crate::gaps::SeqUnwrapper;
use crate::time::{earliest, Time};

/// Configuration of the statistical-acknowledgement engine.
#[derive(Debug, Clone)]
pub struct StatAckConfig {
    /// Desired ACKs per data packet; "analysis suggests that between 5
    /// and 20 ACKs is appropriate" (§2.3.1).
    pub k: usize,
    /// Initial secondary-logger count estimate (seeded by Bolot probing
    /// or prior knowledge).
    pub nsl_initial: f64,
    /// EWMA gain for the `N_sl` tracker (paper: 1/8).
    pub nsl_alpha: f64,
    /// Initial `t_wait` (the ACK collection window).
    pub t_wait_init: Duration,
    /// Gain of the exponentially-converging `t_wait` estimator (§2.3.2).
    pub t_wait_alpha: f64,
    /// How often to re-select Designated Ackers.
    pub epoch_interval: Duration,
    /// How long to collect volunteers before activating a new epoch,
    /// as a multiple of `t_wait` ("long enough to include ACKs from all
    /// but the most highly delayed members").
    pub select_wait_factor: f64,
    /// Re-multicast when the estimated number of sites represented by
    /// missing ACKs reaches this value (§2.3.2's "significant number of
    /// sites").
    pub remulticast_site_threshold: f64,
    /// Cap on re-multicasts of one packet (missing ACKs can also mean a
    /// crashed acker; "such events are rare, and their effects are
    /// limited to the current epoch").
    pub max_remulticasts: u32,
    /// ACKs from hosts outside the Designated set before the host is
    /// black-listed as faulty (§2.3.3's "hotlist").
    pub hotlist_threshold: u32,
    /// Bolot-style initial group-size probing (§2.3.3): selection rounds
    /// double as probes with escalating probability until the `N_sl`
    /// estimate is confident, then normal epochs take over. `None`
    /// trusts [`nsl_initial`](Self::nsl_initial).
    pub initial_probe: Option<BolotConfig>,
    /// Consecutive incompletely-acked packets before the engine reports
    /// suspected congestion (the §5 future-work hook for slowing the
    /// sender during high loss). `0` disables.
    pub congestion_streak: u32,
}

impl Default for StatAckConfig {
    fn default() -> Self {
        StatAckConfig {
            k: 10,
            nsl_initial: 50.0,
            nsl_alpha: 0.125,
            t_wait_init: Duration::from_millis(200),
            t_wait_alpha: 0.25,
            epoch_interval: Duration::from_secs(60),
            select_wait_factor: 2.0,
            remulticast_site_threshold: 2.0,
            max_remulticasts: 2,
            hotlist_threshold: 3,
            initial_probe: None,
            congestion_streak: 3,
        }
    }
}

/// Semantic outputs of the engine; the sender turns these into packets
/// and notices.
#[derive(Debug, Clone, PartialEq)]
pub enum StatAckOutput {
    /// Multicast an Acker Selection Packet for `epoch` with `p_ack`.
    StartSelection {
        /// The new epoch id.
        epoch: EpochId,
        /// Volunteer probability to advertise.
        p_ack: f64,
    },
    /// The pending epoch became active: newly sent data carries it.
    EpochActive {
        /// The active epoch.
        epoch: EpochId,
        /// Number of Designated Ackers.
        ackers: usize,
        /// Current `N_sl` estimate.
        nsl: f64,
    },
    /// Missing ACK coverage at `t_wait`: re-multicast `seq` immediately.
    Remulticast {
        /// Sequence to re-send.
        seq: Seq,
        /// Missing ACK count at the deadline.
        missing: usize,
    },
    /// ACK bookkeeping for `seq` closed (all ACKs in, or written off at
    /// `2 × t_wait`).
    Settled {
        /// The settled sequence.
        seq: Seq,
        /// `true` if every expected ACK arrived.
        complete: bool,
    },
    /// Several consecutive packets settled with missing ACKs even after
    /// re-multicasts: the path to a meaningful share of the group looks
    /// congested, and the application should consider slowing down (§5).
    CongestionSuspected {
        /// Length of the incomplete streak.
        streak: u32,
    },
}

#[derive(Debug, Clone)]
struct Track {
    seq: Seq,
    epoch: EpochId,
    sent_at: Time,
    acked_by: BTreeSet<HostId>,
    expected: usize,
    decide_at: Time,
    closes_at: Time,
    decided: bool,
    remulticasts: u32,
}

/// The engine. One instance per (group, source) stream.
#[derive(Debug, Clone)]
pub struct StatAck {
    config: StatAckConfig,
    nsl: NslEstimator,
    t_wait: Duration,
    /// Epoch whose ackers currently acknowledge new data.
    epoch: EpochId,
    ackers: BTreeSet<HostId>,
    /// A selection in progress: (epoch, advertised p, volunteers, switch time).
    pending: Option<(EpochId, f64, BTreeSet<HostId>, Time)>,
    next_selection_at: Time,
    unwrapper: SeqUnwrapper,
    outstanding: BTreeMap<u64, Track>,
    /// Per-epoch acker sets still accepting late ACKs (current + previous).
    epoch_ackers: HashMap<EpochId, BTreeSet<HostId>>,
    bogus_acks: HashMap<HostId, u32>,
    blacklist: BTreeSet<HostId>,
    /// Bolot probing phase; `None` once the estimate is confident.
    probe: Option<BolotProbe>,
    /// Consecutive incomplete settlements (congestion signal).
    incomplete_streak: u32,
}

impl StatAck {
    /// Creates an engine; the first Acker Selection is emitted at the
    /// first [`poll`](Self::poll) at or after `start`.
    pub fn new(config: StatAckConfig, start: Time) -> Self {
        assert!(config.k >= 1, "k must be at least 1");
        let nsl = NslEstimator::new(config.nsl_initial.max(1.0), config.nsl_alpha);
        StatAck {
            t_wait: config.t_wait_init,
            nsl,
            epoch: EpochId::INITIAL,
            ackers: BTreeSet::new(),
            pending: None,
            next_selection_at: start,
            unwrapper: SeqUnwrapper::new(),
            outstanding: BTreeMap::new(),
            epoch_ackers: HashMap::new(),
            bogus_acks: HashMap::new(),
            blacklist: BTreeSet::new(),
            probe: config.initial_probe.map(BolotProbe::new),
            incomplete_streak: 0,
            config,
        }
    }

    /// `true` while the initial Bolot probing phase is still running.
    pub fn probing(&self) -> bool {
        self.probe.is_some()
    }

    /// The epoch newly sent data packets should carry.
    pub fn current_epoch(&self) -> EpochId {
        self.epoch
    }

    /// Number of Designated Ackers in the active epoch.
    pub fn acker_count(&self) -> usize {
        self.ackers.len()
    }

    /// Current `N_sl` estimate.
    pub fn nsl_estimate(&self) -> f64 {
        self.nsl.estimate()
    }

    /// Current ACK-collection window.
    pub fn t_wait(&self) -> Duration {
        self.t_wait
    }

    /// Hosts black-listed for acking when not selected.
    pub fn blacklist(&self) -> &BTreeSet<HostId> {
        &self.blacklist
    }

    /// Records a freshly transmitted data packet.
    pub fn on_data_sent(&mut self, now: Time, seq: Seq) {
        let idx = self.unwrapper.unwrap(seq);
        let expected = self.ackers.len();
        self.outstanding.insert(
            idx,
            Track {
                seq,
                epoch: self.epoch,
                sent_at: now,
                acked_by: BTreeSet::new(),
                expected,
                decide_at: now + self.t_wait,
                closes_at: now + 2 * self.t_wait,
                decided: expected == 0, // nothing to decide without ackers
                remulticasts: 0,
            },
        );
    }

    /// Records a volunteer for `epoch`.
    pub fn on_volunteer(&mut self, host: HostId, epoch: EpochId) {
        if self.blacklist.contains(&host) {
            return;
        }
        if let Some((e, _, volunteers, _)) = &mut self.pending {
            if *e == epoch {
                volunteers.insert(host);
            }
        }
    }

    /// Records a per-packet ACK.
    pub fn on_ack(
        &mut self,
        now: Time,
        host: HostId,
        epoch: EpochId,
        seq: Seq,
        out: &mut Vec<StatAckOutput>,
    ) {
        if self.blacklist.contains(&host) {
            return;
        }
        // Only the two most recent epochs' acker sets are retained. An ACK
        // for an epoch we no longer track is a *stale* ACK from a slow but
        // legitimate Designated Acker (its epoch aged out while the ACK was
        // in flight), not evidence of a faulty host — drop it without
        // feeding the hotlist. §2.3.3's hotlist is only for hosts acking an
        // epoch they verifiably were not selected for.
        let Some(selected) = self.epoch_ackers.get(&epoch) else {
            return;
        };
        if !selected.contains(&host) {
            let n = self.bogus_acks.entry(host).or_insert(0);
            *n += 1;
            if *n >= self.config.hotlist_threshold {
                self.blacklist.insert(host);
            }
            return;
        }
        let idx = self.unwrapper.peek(seq);
        let Some(track) = self.outstanding.get_mut(&idx) else {
            return;
        };
        if track.epoch != epoch {
            return;
        }
        track.acked_by.insert(host);
        if track.acked_by.len() >= track.expected {
            // Last expected ACK: feed the t_wait estimator (§2.3.2).
            // Karn's rule: once a packet has been re-multicast, `now -
            // sent_at` is ambiguous (the ACK may answer either copy) and
            // always spans at least one extra t_wait window, so retried
            // packets contribute no sample.
            if track.remulticasts == 0 {
                let rtt = now.since(track.sent_at);
                let a = self.config.t_wait_alpha;
                self.t_wait = Duration::from_secs_f64(
                    a * rtt.as_secs_f64() + (1.0 - a) * self.t_wait.as_secs_f64(),
                );
            }
            let seq = track.seq;
            self.outstanding.remove(&idx);
            self.incomplete_streak = 0;
            out.push(StatAckOutput::Settled {
                seq,
                complete: true,
            });
        }
    }

    /// Next instant at which [`poll`](Self::poll) has work.
    pub fn next_deadline(&self) -> Option<Time> {
        let mut d = Some(self.next_selection_at);
        if let Some((_, _, _, switch_at)) = &self.pending {
            d = earliest(d, Some(*switch_at));
        }
        for t in self.outstanding.values() {
            if !t.decided {
                d = earliest(d, Some(t.decide_at));
            }
            d = earliest(d, Some(t.closes_at));
        }
        d
    }

    /// Runs due work: epoch management and per-packet ACK deadlines.
    pub fn poll(&mut self, now: Time, out: &mut Vec<StatAckOutput>) {
        // Activate a matured selection.
        if let Some((epoch, p, volunteers, switch_at)) = self.pending.clone() {
            if now >= switch_at {
                let quick_retry = (4 * self.t_wait)
                    .max(Duration::from_millis(500))
                    .min(self.config.epoch_interval);
                if let Some(probe) = &mut self.probe {
                    // Probing phase (§2.3.3): this selection's response
                    // count is a Bolot probe sample.
                    match probe.record_round(volunteers.len() as u64) {
                        ProbeStatus::Done(estimate) => {
                            self.nsl = NslEstimator::new(estimate.max(1.0), self.config.nsl_alpha);
                            self.probe = None;
                        }
                        ProbeStatus::Escalated | ProbeStatus::NeedMoreRounds => {
                            self.next_selection_at = self.next_selection_at.min(now + quick_retry);
                        }
                    }
                } else if volunteers.is_empty() {
                    // Nobody volunteered (e.g. the group is still
                    // forming): an ackerless epoch detects nothing, so
                    // retry selection soon rather than idling a full
                    // epoch interval.
                    self.next_selection_at = self.next_selection_at.min(now + quick_retry);
                } else {
                    self.nsl.update(volunteers.len(), p);
                }
                self.ackers = volunteers.clone();
                self.epoch = epoch;
                self.epoch_ackers.insert(epoch, volunteers.clone());
                // Keep only the two most recent epochs' acker sets.
                let keep_prev = EpochId(epoch.raw().wrapping_sub(1));
                self.epoch_ackers
                    .retain(|e, _| *e == epoch || *e == keep_prev);
                self.pending = None;
                out.push(StatAckOutput::EpochActive {
                    epoch,
                    ackers: self.ackers.len(),
                    nsl: self.nsl.estimate(),
                });
            }
        }
        // Start a new selection.
        if self.pending.is_none() && now >= self.next_selection_at {
            let epoch = self.epoch.next();
            let p = match &self.probe {
                Some(probe) => probe.current_p(),
                None => self.nsl.p_ack_for(self.config.k),
            };
            let wait =
                Duration::from_secs_f64(self.t_wait.as_secs_f64() * self.config.select_wait_factor);
            self.pending = Some((epoch, p, BTreeSet::new(), now + wait));
            self.next_selection_at = now + self.config.epoch_interval;
            out.push(StatAckOutput::StartSelection { epoch, p_ack: p });
        }
        // Per-packet deadlines.
        let idxs: Vec<u64> = self.outstanding.keys().copied().collect();
        for idx in idxs {
            let Some(track) = self.outstanding.get_mut(&idx) else {
                continue;
            };
            if !track.decided && now >= track.decide_at {
                track.decided = true;
                let missing = track.expected.saturating_sub(track.acked_by.len());
                if missing > 0 {
                    let sites_per_acker =
                        (self.nsl.estimate() / track.expected.max(1) as f64).max(1.0);
                    let missing_sites = missing as f64 * sites_per_acker;
                    if missing_sites >= self.config.remulticast_site_threshold
                        && track.remulticasts < self.config.max_remulticasts
                    {
                        track.remulticasts += 1;
                        track.decided = false;
                        track.decide_at = now + self.t_wait;
                        track.closes_at = now + 2 * self.t_wait;
                        out.push(StatAckOutput::Remulticast {
                            seq: track.seq,
                            missing,
                        });
                    }
                }
            }
            let Some(track) = self.outstanding.get(&idx) else {
                continue;
            };
            if now >= track.closes_at {
                let complete = track.acked_by.len() >= track.expected;
                let seq = track.seq;
                let expected = track.expected;
                self.outstanding.remove(&idx);
                out.push(StatAckOutput::Settled { seq, complete });
                // §5 congestion feedback: streaks of incomplete coverage.
                if expected > 0 {
                    if complete {
                        self.incomplete_streak = 0;
                    } else {
                        self.incomplete_streak += 1;
                        if self.config.congestion_streak > 0
                            && self.incomplete_streak >= self.config.congestion_streak
                        {
                            out.push(StatAckOutput::CongestionSuspected {
                                streak: self.incomplete_streak,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Time = Time::ZERO;

    fn engine(k: usize, nsl: f64) -> StatAck {
        StatAck::new(
            StatAckConfig {
                k,
                nsl_initial: nsl,
                ..StatAckConfig::default()
            },
            T0,
        )
    }

    /// Drives selection to completion with `volunteers` volunteering.
    fn activate_epoch(e: &mut StatAck, volunteers: &[HostId], mut now: Time) -> (EpochId, Time) {
        let mut out = Vec::new();
        e.poll(now, &mut out);
        let epoch = match out.as_slice() {
            [StatAckOutput::StartSelection { epoch, p_ack }] => {
                assert!(*p_ack > 0.0 && *p_ack <= 1.0);
                *epoch
            }
            other => panic!("expected StartSelection, got {other:?}"),
        };
        for &v in volunteers {
            e.on_volunteer(v, epoch);
        }
        now = e.next_deadline().unwrap();
        let mut out = Vec::new();
        e.poll(now, &mut out);
        assert!(
            out.iter().any(
                |o| matches!(o, StatAckOutput::EpochActive { epoch: ep, ackers, .. }
                if *ep == epoch && *ackers == volunteers.len())
            ),
            "no EpochActive in {out:?}"
        );
        (epoch, now)
    }

    #[test]
    fn selection_lifecycle() {
        let mut e = engine(3, 30.0);
        let ackers = [HostId(1), HostId(2), HostId(3)];
        let (epoch, _) = activate_epoch(&mut e, &ackers, T0);
        assert_eq!(e.current_epoch(), epoch);
        assert_eq!(e.acker_count(), 3);
    }

    #[test]
    fn complete_acks_settle_and_update_t_wait() {
        let mut e = engine(2, 20.0);
        let ackers = [HostId(1), HostId(2)];
        let (epoch, now) = activate_epoch(&mut e, &ackers, T0);
        let t_wait_before = e.t_wait();
        e.on_data_sent(now, Seq(33));
        let mut out = Vec::new();
        let ack_at = now + Duration::from_millis(50);
        e.on_ack(ack_at, HostId(1), epoch, Seq(33), &mut out);
        assert!(out.is_empty());
        e.on_ack(ack_at, HostId(2), epoch, Seq(33), &mut out);
        assert_eq!(
            out,
            vec![StatAckOutput::Settled {
                seq: Seq(33),
                complete: true
            }]
        );
        // t_wait moved toward the 50 ms sample.
        assert!(e.t_wait() < t_wait_before);
    }

    #[test]
    fn missing_acks_trigger_remulticast_figure8() {
        // Figure 8: three designated ackers, one ACK lost → the source
        // re-multicasts #33 and then receives all three ACKs.
        let mut e = engine(3, 300.0); // each acker represents ~100 sites
        let ackers = [HostId(1), HostId(2), HostId(3)];
        let (epoch, now) = activate_epoch(&mut e, &ackers, T0);
        e.on_data_sent(now, Seq(33));
        let mut out = Vec::new();
        e.on_ack(
            now + Duration::from_millis(10),
            HostId(1),
            epoch,
            Seq(33),
            &mut out,
        );
        e.on_ack(
            now + Duration::from_millis(12),
            HostId(2),
            epoch,
            Seq(33),
            &mut out,
        );
        assert!(out.is_empty());
        // t_wait passes with one ACK missing.
        let deadline = e.next_deadline().unwrap();
        e.poll(deadline, &mut out);
        assert!(
            out.iter().any(
                |o| matches!(o, StatAckOutput::Remulticast { seq, missing: 1 }
                if *seq == Seq(33))
            ),
            "no remulticast in {out:?}"
        );
        // After the re-multicast the third ACK arrives and settles it.
        out.clear();
        e.on_ack(
            deadline + Duration::from_millis(5),
            HostId(3),
            epoch,
            Seq(33),
            &mut out,
        );
        assert_eq!(
            out,
            vec![StatAckOutput::Settled {
                seq: Seq(33),
                complete: true
            }]
        );
    }

    #[test]
    fn small_group_tolerates_single_missing_ack() {
        // §2.3.2: "with a 20 site configuration, it is feasible for each
        // logging server to acknowledge" — one missing ACK then means one
        // site, below the multicast threshold.
        let cfg = StatAckConfig {
            k: 20,
            nsl_initial: 3.0,
            remulticast_site_threshold: 2.0,
            ..StatAckConfig::default()
        };
        let mut e = StatAck::new(cfg, T0);
        let ackers = [HostId(1), HostId(2), HostId(3)];
        let (epoch, now) = activate_epoch(&mut e, &ackers, T0);
        e.on_data_sent(now, Seq(1));
        let mut out = Vec::new();
        e.on_ack(
            now + Duration::from_millis(10),
            HostId(1),
            epoch,
            Seq(1),
            &mut out,
        );
        e.on_ack(
            now + Duration::from_millis(10),
            HostId(2),
            epoch,
            Seq(1),
            &mut out,
        );
        // Deadline passes; 1 missing ack × (3/3 sites-per-acker) = 1 < 2.
        while let Some(d) = e.next_deadline() {
            if d > Time::from_secs(3600) {
                break;
            }
            e.poll(d, &mut out);
            if out
                .iter()
                .any(|o| matches!(o, StatAckOutput::Settled { .. }))
            {
                break;
            }
        }
        assert!(
            !out.iter()
                .any(|o| matches!(o, StatAckOutput::Remulticast { .. })),
            "{out:?}"
        );
        assert!(out.iter().any(
            |o| matches!(o, StatAckOutput::Settled { seq, complete: false } if *seq == Seq(1))
        ));
    }

    #[test]
    fn remulticast_capped() {
        let mut e = engine(2, 100.0);
        let ackers = [HostId(1), HostId(2)];
        let (_, now) = activate_epoch(&mut e, &ackers, T0);
        e.on_data_sent(now, Seq(5));
        let mut remulticasts = 0;
        let mut out = Vec::new();
        for _ in 0..50 {
            let Some(d) = e.next_deadline() else { break };
            if d > now + Duration::from_secs(3600) {
                break;
            }
            out.clear();
            e.poll(d, &mut out);
            remulticasts += out
                .iter()
                .filter(|o| matches!(o, StatAckOutput::Remulticast { .. }))
                .count();
            if out
                .iter()
                .any(|o| matches!(o, StatAckOutput::Settled { .. }))
            {
                break;
            }
        }
        assert_eq!(
            remulticasts,
            StatAckConfig::default().max_remulticasts as usize
        );
    }

    #[test]
    fn bogus_ackers_get_blacklisted() {
        // §2.3.3: a faulty logger answering every selection is hotlisted
        // and its future ACKs ignored.
        let mut e = engine(2, 20.0);
        let ackers = [HostId(1), HostId(2)];
        let (epoch, now) = activate_epoch(&mut e, &ackers, T0);
        e.on_data_sent(now, Seq(1));
        let rogue = HostId(66);
        let mut out = Vec::new();
        for _ in 0..StatAckConfig::default().hotlist_threshold {
            e.on_ack(now, rogue, epoch, Seq(1), &mut out);
        }
        assert!(e.blacklist().contains(&rogue));
        assert!(out.is_empty());
        // Blacklisted hosts cannot volunteer in later epochs.
        let mut out = Vec::new();
        e.poll(now + StatAckConfig::default().epoch_interval, &mut out);
        let new_epoch = out
            .iter()
            .find_map(|o| match o {
                StatAckOutput::StartSelection { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .unwrap_or_else(|| panic!("{out:?}"));
        e.on_volunteer(rogue, new_epoch);
        // Drive deadlines (remulticast bookkeeping for Seq(1) interleaves)
        // until the new epoch activates — with zero legitimate ackers.
        let mut activated = None;
        for _ in 0..20 {
            let d = e.next_deadline().unwrap();
            out.clear();
            e.poll(d, &mut out);
            if let Some(a) = out.iter().find_map(|o| match o {
                StatAckOutput::EpochActive { ackers, .. } => Some(*ackers),
                _ => None,
            }) {
                activated = Some(a);
                break;
            }
        }
        assert_eq!(activated, Some(0));
    }

    #[test]
    fn nsl_estimate_refined_by_selection_responses() {
        // Each selection's volunteer count k' refines N_sl via the EWMA.
        let mut e = engine(10, 100.0);
        // 40 volunteers respond to p_ack = 10/100 = 0.1 → sample 400.
        let volunteers: Vec<HostId> = (0..40).map(HostId).collect();
        activate_epoch(&mut e, &volunteers, T0);
        let est = e.nsl_estimate();
        assert!(est > 100.0, "estimate should rise toward 400, got {est}");
    }

    #[test]
    fn no_ackers_means_nothing_expected() {
        let mut e = engine(5, 50.0);
        // No epoch active yet: data tracked but trivially decided.
        e.on_data_sent(T0, Seq(1));
        let mut out = Vec::new();
        e.poll(T0 + Duration::from_secs(10), &mut out);
        assert!(!out
            .iter()
            .any(|o| matches!(o, StatAckOutput::Remulticast { .. })));
    }

    #[test]
    fn initial_probe_converges_before_normal_epochs() {
        use crate::estimate::BolotConfig;
        // 160 secondary loggers; the configured initial estimate is
        // wildly wrong (4). With probing, selections escalate p until
        // confident, then N_sl lands near the truth.
        let truth = 160u64;
        let cfg = StatAckConfig {
            k: 10,
            nsl_initial: 4.0,
            initial_probe: Some(BolotConfig {
                initial_p: 0.02,
                escalation: 4.0,
                min_responses: 8,
                rounds_to_average: 2,
            }),
            ..StatAckConfig::default()
        };
        let mut e = StatAck::new(cfg, T0);
        assert!(e.probing());
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut rounds = 0;
        while e.probing() && rounds < 40 {
            rounds += 1;
            let mut out = Vec::new();
            e.poll(e.next_deadline().unwrap(), &mut out);
            if let Some((epoch, p)) = out.iter().find_map(|o| match o {
                StatAckOutput::StartSelection { epoch, p_ack } => Some((*epoch, *p_ack)),
                _ => None,
            }) {
                use rand::Rng;
                for h in 0..truth {
                    if rng.random_bool(p) {
                        e.on_volunteer(HostId(h), epoch);
                    }
                }
            }
        }
        assert!(!e.probing(), "probe should finish");
        let est = e.nsl_estimate();
        let rel = (est - truth as f64).abs() / truth as f64;
        assert!(rel < 0.4, "estimate {est} vs true {truth}");
    }

    #[test]
    fn congestion_suspected_after_incomplete_streak() {
        let mut e = engine(2, 100.0);
        let ackers = [HostId(1), HostId(2)];
        let (_, mut now) = activate_epoch(&mut e, &ackers, T0);
        // No ACKs ever arrive: each packet settles incomplete; after the
        // configured streak the congestion signal fires.
        let mut congestion = None;
        for i in 1..=4u32 {
            e.on_data_sent(now, Seq(i));
            let mut out = Vec::new();
            for _ in 0..10 {
                let Some(d) = e.next_deadline() else { break };
                e.poll(d, &mut out);
                now = d;
                if out
                    .iter()
                    .any(|o| matches!(o, StatAckOutput::Settled { .. }))
                {
                    break;
                }
            }
            if let Some(s) = out.iter().find_map(|o| match o {
                StatAckOutput::CongestionSuspected { streak } => Some(*streak),
                _ => None,
            }) {
                congestion = Some((i, s));
                break;
            }
        }
        let (at_packet, streak) = congestion.expect("congestion signal expected");
        assert_eq!(streak, StatAckConfig::default().congestion_streak);
        assert_eq!(at_packet, StatAckConfig::default().congestion_streak);
        // A complete packet clears the streak.
        let epoch = e.current_epoch();
        e.on_data_sent(now, Seq(99));
        let mut out = Vec::new();
        e.on_ack(now, HostId(1), epoch, Seq(99), &mut out);
        e.on_ack(now, HostId(2), epoch, Seq(99), &mut out);
        assert!(out
            .iter()
            .any(|o| matches!(o, StatAckOutput::Settled { complete: true, .. })));
        assert_eq!(e.incomplete_streak, 0);
    }

    /// Drives the engine from `now` through one full selection cycle
    /// (StartSelection → volunteers → EpochActive) and returns the new
    /// epoch and the activation time.
    fn advance_epoch(e: &mut StatAck, volunteers: &[HostId], now: Time) -> (EpochId, Time) {
        let mut out = Vec::new();
        e.poll(now, &mut out);
        let epoch = out
            .iter()
            .find_map(|o| match o {
                StatAckOutput::StartSelection { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no StartSelection in {out:?}"));
        for &v in volunteers {
            e.on_volunteer(v, epoch);
        }
        for _ in 0..20 {
            let d = e.next_deadline().unwrap();
            out.clear();
            e.poll(d, &mut out);
            if out
                .iter()
                .any(|o| matches!(o, StatAckOutput::EpochActive { epoch: ep, .. } if *ep == epoch))
            {
                return (epoch, d);
            }
        }
        panic!("epoch {epoch:?} never activated");
    }

    #[test]
    fn stale_epoch_acks_are_ignored_not_hostile() {
        // Regression: an ACK for an epoch evicted from `epoch_ackers`
        // (older than current + previous) used to count toward the
        // §2.3.3 hotlist and could permanently blacklist a legitimate,
        // merely slow Designated Acker.
        let interval = StatAckConfig::default().epoch_interval;
        let mut e = engine(2, 20.0);
        let slow = HostId(1);
        let (old_epoch, now) = activate_epoch(&mut e, &[slow, HostId(2)], T0);
        // Two more epochs activate, evicting `old_epoch`'s acker set.
        let (_, now) = advance_epoch(&mut e, &[HostId(3)], now + interval);
        let (_, now) = advance_epoch(&mut e, &[HostId(4)], now + interval);
        // The slow acker's very late ACKs for the evicted epoch arrive.
        let mut out = Vec::new();
        for i in 0..StatAckConfig::default().hotlist_threshold + 2 {
            e.on_ack(now, slow, old_epoch, Seq(i), &mut out);
        }
        assert!(
            !e.blacklist().contains(&slow),
            "stale ACKs must not blacklist a legitimate acker"
        );
        // The host can still volunteer and ACK in a later epoch.
        let (new_epoch, now) = advance_epoch(&mut e, &[slow], now + interval);
        e.on_data_sent(now, Seq(70));
        out.clear();
        e.on_ack(
            now + Duration::from_millis(10),
            slow,
            new_epoch,
            Seq(70),
            &mut out,
        );
        assert_eq!(
            out,
            vec![StatAckOutput::Settled {
                seq: Seq(70),
                complete: true
            }]
        );
    }

    #[test]
    fn remulticast_acks_skip_t_wait_sample_karn() {
        // Regression (Karn's rule): after a re-multicast the completing
        // ACK spans at least one extra t_wait window and may answer
        // either copy, so it must not feed the t_wait EWMA.
        let mut e = engine(3, 300.0);
        let ackers = [HostId(1), HostId(2), HostId(3)];
        let (epoch, now) = activate_epoch(&mut e, &ackers, T0);
        e.on_data_sent(now, Seq(33));
        let mut out = Vec::new();
        e.on_ack(
            now + Duration::from_millis(10),
            HostId(1),
            epoch,
            Seq(33),
            &mut out,
        );
        e.on_ack(
            now + Duration::from_millis(12),
            HostId(2),
            epoch,
            Seq(33),
            &mut out,
        );
        let deadline = e.next_deadline().unwrap();
        e.poll(deadline, &mut out);
        assert!(
            out.iter()
                .any(|o| matches!(o, StatAckOutput::Remulticast { .. })),
            "{out:?}"
        );
        let t_wait_before = e.t_wait();
        out.clear();
        e.on_ack(
            deadline + Duration::from_millis(5),
            HostId(3),
            epoch,
            Seq(33),
            &mut out,
        );
        assert_eq!(
            out,
            vec![StatAckOutput::Settled {
                seq: Seq(33),
                complete: true
            }]
        );
        assert_eq!(
            e.t_wait(),
            t_wait_before,
            "retried packet fed the t_wait EWMA"
        );
        // An un-retried packet still updates the estimator.
        let fresh_now = deadline + Duration::from_millis(20);
        e.on_data_sent(fresh_now, Seq(34));
        out.clear();
        for &h in &ackers {
            e.on_ack(
                fresh_now + Duration::from_millis(40),
                h,
                epoch,
                Seq(34),
                &mut out,
            );
        }
        assert!(out
            .iter()
            .any(|o| matches!(o, StatAckOutput::Settled { complete: true, .. })));
        assert_ne!(e.t_wait(), t_wait_before);
    }

    #[test]
    fn late_acks_for_previous_epoch_still_count() {
        // "the source keeps track of the Designated Ackers for an epoch
        // and expects some overlap in acking between epochs".
        let mut e = engine(2, 20.0);
        let old_ackers = [HostId(1), HostId(2)];
        let (old_epoch, now) = activate_epoch(&mut e, &old_ackers, T0);
        e.on_data_sent(now, Seq(7));
        // A new epoch activates while #7 is outstanding.
        let later = now + StatAckConfig::default().epoch_interval;
        let mut out = Vec::new();
        e.poll(later, &mut out);
        let new_epoch = out
            .iter()
            .find_map(|o| match o {
                StatAckOutput::StartSelection { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .unwrap();
        e.on_volunteer(HostId(9), new_epoch);
        let switch = e.next_deadline().unwrap();
        e.poll(switch, &mut out);
        // Old-epoch ACKs for #7 are still accepted.
        out.clear();
        e.on_ack(switch, HostId(1), old_epoch, Seq(7), &mut out);
        e.on_ack(switch, HostId(2), old_epoch, Seq(7), &mut out);
        assert!(out.iter().any(
            |o| matches!(o, StatAckOutput::Settled { seq, complete: true } if *seq == Seq(7))
        ));
    }
}
