//! Log-Based Receiver-Reliable Multicast (LBRM) — the protocol.
//!
//! This crate implements the SIGCOMM '95 LBRM design (Holbrook, Singhal &
//! Cheriton) as a family of *sans-IO* state machines:
//!
//! * [`sender::Sender`] — the multicast source: sequencing, the variable
//!   heartbeat of §2.1, reliable handoff to the primary logging server,
//!   statistical acknowledgement (§2.3), primary failover (§2.2.3).
//! * [`logger::Logger`] — a logging server, usable as primary, replica,
//!   or per-site secondary (§2.2): logs the stream, serves NACKs, fetches
//!   misses from its parent, replicates, answers discovery, volunteers as
//!   Designated Acker.
//! * [`receiver::Receiver`] — gap- and heartbeat-based loss detection,
//!   MaxIT freshness tracking, recovery through the logging hierarchy.
//! * [`discovery::DiscoveryClient`] — expanding-ring scoped multicast
//!   search for a nearby logging service (§2.2.1).
//! * [`baseline`] — comparison protocols: the *wb*/SRM-style unorganized
//!   recovery of §6 and the fixed-heartbeat scheme of §2.1.2.
//! * [`retrans_channel`] — the §7 "separate retransmission channel"
//!   future-work extension.
//!
//! Machines implement [`machine::Machine`] and are driven identically by
//! the deterministic simulator (`lbrm-sim`, for the paper's experiments)
//! and the threaded UDP endpoints (`lbrm-net`, for deployment).
//!
//! Every machine can additionally report protocol events (heartbeats,
//! NACKs, repairs, re-multicasts, settlements, failover) through the
//! [`trace`] layer — attach a [`trace::TraceSink`] with
//! `set_tracer`; the default disabled tracer costs one branch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod discovery;
pub mod estimate;
pub mod gaps;
pub mod heartbeat;
pub mod logger;
pub mod logstore;
pub mod machine;
pub mod receiver;
pub mod retrans_channel;
pub mod sender;
pub mod slab;
pub mod statack;
pub mod time;

pub use lbrm_trace as trace;

pub use machine::{Action, Actions, Delivery, LossSignal, Machine, Notice};
pub use time::Time;
pub use trace::Tracer;
