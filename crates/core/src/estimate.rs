//! Group-size (secondary-logger count) estimation — §2.3.3 and Table 2.
//!
//! Two cooperating pieces:
//!
//! * [`BolotProbe`] — the start-of-transmission estimator, after Bolot,
//!   Turletti & Wakeman: probe rounds with increasing response
//!   probability until enough ACKs arrive for a confident estimate; the
//!   final probability may be repeated to shrink the estimate's standard
//!   deviation by `1/√n` (Table 2).
//! * [`NslEstimator`] — the steady-state tracker: every Acker Selection
//!   round doubles as a probe, and the estimate follows
//!   `N'_sl = (1-α)·N_sl + α·k'/p_ack` (the paper's Jacobson-style EWMA,
//!   α = 1/8 by default).

/// Standard deviation of a single-probe estimate `N̂ = k'/p` when `n`
/// loggers respond independently with probability `p` (Table 2, row 1):
/// `σ₁ = √(N(1-p)/p)`.
pub fn single_probe_stddev(n: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability must be in (0,1]");
    (n * (1.0 - p) / p).sqrt()
}

/// Standard deviation after averaging `probes` independent probes
/// (Table 2): `σ₁/√probes`.
pub fn multi_probe_stddev(n: f64, p: f64, probes: u32) -> f64 {
    assert!(probes >= 1);
    single_probe_stddev(n, p) / f64::from(probes).sqrt()
}

/// Outcome of feeding one probe round to [`BolotProbe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeStatus {
    /// Too few responses at the current probability — the prober has
    /// escalated; re-probe at [`BolotProbe::current_p`].
    Escalated,
    /// Enough responses, but more rounds at this probability are wanted
    /// to tighten the estimate.
    NeedMoreRounds,
    /// Probing finished with this estimate of the logger count.
    Done(f64),
}

/// Configuration for [`BolotProbe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BolotConfig {
    /// Initial response probability (small, to avoid implosion on huge
    /// groups).
    pub initial_p: f64,
    /// Multiplier applied to `p` when a round yields too few responses.
    pub escalation: f64,
    /// Minimum responses per round for the round to count.
    pub min_responses: u64,
    /// Rounds to average at the final probability (Table 2's "probe
    /// count" — 1 keeps σ₁, 4 halves it).
    pub rounds_to_average: usize,
}

impl Default for BolotConfig {
    fn default() -> Self {
        BolotConfig {
            initial_p: 0.01,
            escalation: 4.0,
            min_responses: 10,
            rounds_to_average: 3,
        }
    }
}

/// Initial group-size probing per Bolot et al., with the paper's
/// repeated-final-probe extension.
#[derive(Debug, Clone)]
pub struct BolotProbe {
    config: BolotConfig,
    p: f64,
    samples: Vec<u64>,
}

impl BolotProbe {
    /// Starts a probe sequence.
    ///
    /// # Panics
    ///
    /// On nonsensical configuration.
    pub fn new(config: BolotConfig) -> Self {
        assert!(config.initial_p > 0.0 && config.initial_p <= 1.0);
        assert!(config.escalation > 1.0);
        assert!(config.rounds_to_average >= 1);
        BolotProbe {
            p: config.initial_p,
            config,
            samples: Vec::new(),
        }
    }

    /// The probability to advertise in the next probe round.
    pub fn current_p(&self) -> f64 {
        self.p
    }

    /// Feeds the response count of one probe round.
    pub fn record_round(&mut self, responses: u64) -> ProbeStatus {
        if responses < self.config.min_responses && self.p < 1.0 {
            // Not confident; escalate and start sampling afresh.
            self.p = (self.p * self.config.escalation).min(1.0);
            self.samples.clear();
            return ProbeStatus::Escalated;
        }
        self.samples.push(responses);
        if self.samples.len() < self.config.rounds_to_average {
            return ProbeStatus::NeedMoreRounds;
        }
        let mean = self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64;
        ProbeStatus::Done((mean / self.p).max(1.0))
    }
}

/// Steady-state `N_sl` tracker (§2.3.3).
///
/// ```
/// use lbrm_core::estimate::NslEstimator;
///
/// let mut est = NslEstimator::new(100.0, 0.125);
/// // 30 volunteers answered an Acker Selection at p_ack = 0.1:
/// // evidence of ~300 loggers, blended in with gain 1/8.
/// est.update(30, 0.1);
/// assert!((est.estimate() - 125.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct NslEstimator {
    nsl: f64,
    alpha: f64,
}

impl NslEstimator {
    /// Starts from an initial estimate (from [`BolotProbe`] or prior
    /// knowledge), with smoothing gain `alpha` (paper suggests 1/8).
    ///
    /// # Panics
    ///
    /// If `alpha` is outside `(0, 1]` or the initial estimate is not
    /// positive.
    pub fn new(initial: f64, alpha: f64) -> Self {
        assert!(initial >= 1.0, "initial estimate must be >= 1");
        assert!(alpha > 0.0 && alpha <= 1.0);
        NslEstimator {
            nsl: initial,
            alpha,
        }
    }

    /// Current estimate.
    pub fn estimate(&self) -> f64 {
        self.nsl
    }

    /// Floor for [`p_ack_for`](Self::p_ack_for). `f64::MIN_POSITIVE` is a
    /// denormal: serialized on the wire and parsed back at a receiver it
    /// can round to exactly zero, in which case no logger ever volunteers
    /// and the estimator starves. `1e-6` is far below any useful `p_ack`
    /// (it targets groups of `k × 10⁶` loggers) yet survives any
    /// round-trip through a finite-precision encoding.
    pub const P_ACK_FLOOR: f64 = 1e-6;

    /// The acknowledgement probability to advertise for a target of `k`
    /// ACKs per packet: `p_ack = k / N_sl`, clamped to
    /// `[`[`P_ACK_FLOOR`](Self::P_ACK_FLOOR)`, 1]`.
    pub fn p_ack_for(&self, k: usize) -> f64 {
        (k as f64 / self.nsl).clamp(Self::P_ACK_FLOOR, 1.0)
    }

    /// Feeds one observation: `k_prime` responses arrived to an Acker
    /// Selection Packet advertising `p_ack`.
    pub fn update(&mut self, k_prime: usize, p_ack: f64) {
        assert!(p_ack > 0.0 && p_ack <= 1.0);
        let sample = k_prime as f64 / p_ack;
        self.nsl = ((1.0 - self.alpha) * self.nsl + self.alpha * sample).max(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn table2_stddev_ratios() {
        // Table 2: σ_n = σ₁/√n, i.e. 1.000, 0.707, 0.577, 0.500, 0.447.
        let n = 500.0;
        let p = 0.04;
        let s1 = single_probe_stddev(n, p);
        let expect = [1.0, 0.707, 0.577, 0.5, 0.447];
        for (i, e) in expect.iter().enumerate() {
            let ratio = multi_probe_stddev(n, p, (i + 1) as u32) / s1;
            assert!((ratio - e).abs() < 0.001, "probe {} ratio {}", i + 1, ratio);
        }
    }

    #[test]
    fn single_probe_formula() {
        // σ₁ = sqrt(N(1-p)/p).
        let s = single_probe_stddev(500.0, 0.04);
        assert!((s - (500.0f64 * 0.96 / 0.04).sqrt()).abs() < 1e-9);
    }

    /// Simulates `n` loggers responding with probability `p`.
    fn respond(n: u64, p: f64, rng: &mut SmallRng) -> u64 {
        (0..n).filter(|_| rng.random_bool(p)).count() as u64
    }

    #[test]
    fn bolot_probe_converges_on_large_group() {
        let n = 5_000u64;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut probe = BolotProbe::new(BolotConfig::default());
        let estimate = loop {
            let r = respond(n, probe.current_p(), &mut rng);
            match probe.record_round(r) {
                ProbeStatus::Done(e) => break e,
                ProbeStatus::Escalated | ProbeStatus::NeedMoreRounds => {}
            }
        };
        let err = (estimate - n as f64).abs() / n as f64;
        assert!(err < 0.25, "estimate {estimate} vs true {n}");
    }

    #[test]
    fn bolot_probe_escalates_from_tiny_p() {
        let mut probe = BolotProbe::new(BolotConfig::default());
        let p0 = probe.current_p();
        assert_eq!(probe.record_round(2), ProbeStatus::Escalated);
        assert!(probe.current_p() > p0);
    }

    #[test]
    fn bolot_probe_small_group_reaches_p_one() {
        // A 5-member group can never return min_responses=10; p escalates
        // to 1.0 and the estimate is then exact.
        let n = 5u64;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut probe = BolotProbe::new(BolotConfig::default());
        let estimate = loop {
            let r = respond(n, probe.current_p(), &mut rng);
            if let ProbeStatus::Done(e) = probe.record_round(r) {
                break e;
            }
        };
        assert!((estimate - 5.0).abs() < 1e-9, "estimate {estimate}");
    }

    #[test]
    fn ewma_tracks_churn() {
        // Start believing 100 loggers; the true population is 400. After
        // enough selection rounds the estimate must approach 400.
        let mut est = NslEstimator::new(100.0, 0.125);
        let mut rng = SmallRng::seed_from_u64(7);
        let k = 15usize;
        for _ in 0..200 {
            let p = est.p_ack_for(k);
            let k_prime = respond(400, p, &mut rng) as usize;
            est.update(k_prime, p);
        }
        let e = est.estimate();
        assert!((e - 400.0).abs() < 60.0, "estimate {e}");
    }

    #[test]
    fn ewma_is_stable_at_truth() {
        // §2.3.3: statistical variation in k' causes minimal variation in
        // N_sl once converged.
        let mut est = NslEstimator::new(500.0, 0.125);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..500 {
            let p = est.p_ack_for(20);
            let k_prime = respond(500, p, &mut rng) as usize;
            est.update(k_prime, p);
            min = min.min(est.estimate());
            max = max.max(est.estimate());
        }
        assert!(min > 350.0 && max < 700.0, "wandered to [{min}, {max}]");
    }

    #[test]
    fn p_ack_clamps() {
        let est = NslEstimator::new(4.0, 0.5);
        assert_eq!(est.p_ack_for(20), 1.0);
        let est = NslEstimator::new(1e9, 0.5);
        assert!(est.p_ack_for(5) > 0.0);
    }

    #[test]
    fn p_ack_floor_is_normal_not_denormal() {
        // Regression: the floor used to be `f64::MIN_POSITIVE`, a
        // denormal that can round to zero through wire encodings; a
        // zero p_ack means no volunteers ever, starving the estimator.
        let est = NslEstimator::new(1e12, 0.125);
        let p = est.p_ack_for(1);
        assert_eq!(p, NslEstimator::P_ACK_FLOOR);
        assert!(p.is_normal(), "p_ack floor must be a normal f64");
        assert!(p >= 1e-6);
        // A lossy round-trip through a short decimal encoding survives.
        let via_wire: f64 = format!("{p:.9}").parse().unwrap();
        assert!(via_wire > 0.0);
    }
}
