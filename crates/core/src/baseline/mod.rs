//! Baseline protocols the paper compares LBRM against.
//!
//! * [`srm`] — the *wb* lightweight-sessions recovery style (§6):
//!   unorganized, fully multicast NACK/repair with randomized suppression
//!   timers. Fault tolerant, but every loss costs the whole group
//!   multicast traffic and ~3×RTT-to-source recovery latency, and a
//!   single lossy receiver becomes a "crying baby" for everyone.
//! * The **fixed heartbeat** baseline of §2.1.2 is not a separate
//!   machine: configure [`crate::sender::SenderConfig::scheme`] with
//!   [`crate::sender::HeartbeatScheme::Fixed`].
//! * The **centralized logging** baseline (no secondary loggers, Figure
//!   7a) is a deployment shape: point every receiver's recovery targets
//!   directly at the primary logger.

pub mod srm;
