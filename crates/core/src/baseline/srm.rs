//! A *wb*-style (SRM) reliable multicast member, built from the paper's
//! §6 description for the comparison experiments.
//!
//! Recovery is "fundamentally unorganized": a receiver that detects loss
//! multicasts a repair request to the whole group after a randomized
//! delay proportional to its distance from the source (to suppress
//! duplicate requests); any member holding the data multicasts the repair
//! after its own randomized delay (to suppress duplicate responses).
//! Loss of the newest packet is detected through periodic fixed-interval
//! session messages. The result is robust — any reachable holder can
//! repair — but every loss anywhere costs group-wide multicast traffic,
//! and recovery takes on the order of 3×RTT to the source.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lbrm_wire::packet::SeqRange;
use lbrm_wire::{EpochId, GroupId, HostId, Packet, Seq, SourceId, TtlScope};

use crate::gaps::{GapTracker, Observation, SeqUnwrapper};
use crate::machine::{Action, Actions, Delivery, LossSignal, Machine, Notice};
use crate::time::{earliest, Time};

/// SRM member configuration.
#[derive(Debug, Clone)]
pub struct SrmConfig {
    /// The session's multicast group.
    pub group: GroupId,
    /// This member's host.
    pub host: HostId,
    /// The (single) data source's id.
    pub source: SourceId,
    /// The data source's host.
    pub source_host: HostId,
    /// Fixed session-message interval (wb's loss-detection heartbeat).
    pub session_interval: Duration,
    /// Request timer: uniform in `[c1·d, (c1+c2)·d]` where `d` is the
    /// one-way delay to the source. SRM's classic values are c1=c2=2.
    pub c1: f64,
    /// See [`c1`](Self::c1).
    pub c2: f64,
    /// Repair timer: uniform in `[d1·d, (d1+d2)·d]` where `d` is the
    /// one-way delay to the requester. SRM's classic values are d1=d2=1.
    pub d1: f64,
    /// See [`d1`](Self::d1).
    pub d2: f64,
    /// Estimated one-way delays to peers (filled by the embedding from
    /// topology knowledge or session-timestamp measurement).
    pub delay_to: HashMap<HostId, Duration>,
    /// Fallback delay estimate.
    pub default_delay: Duration,
    /// Determinism seed for the randomized timers.
    pub seed: u64,
}

impl SrmConfig {
    /// Conventional configuration for a member of `group`.
    pub fn new(group: GroupId, host: HostId, source: SourceId, source_host: HostId) -> Self {
        SrmConfig {
            group,
            host,
            source,
            source_host,
            session_interval: Duration::from_millis(250),
            c1: 2.0,
            c2: 2.0,
            d1: 1.0,
            d2: 1.0,
            delay_to: HashMap::new(),
            default_delay: Duration::from_millis(30),
            seed: host.raw(),
        }
    }

    fn delay_of(&self, host: HostId) -> Duration {
        self.delay_to
            .get(&host)
            .copied()
            .unwrap_or(self.default_delay)
    }
}

#[derive(Debug, Clone)]
struct RequestTimer {
    seq: Seq,
    fire_at: Time,
    interval: Duration,
    detected_at: Time,
}

#[derive(Debug, Clone)]
struct RepairTimer {
    seq: Seq,
    fire_at: Time,
}

/// Running statistics for experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct SrmStats {
    /// Multicast repair requests this member sent.
    pub nacks_sent: u64,
    /// Multicast repairs this member sent.
    pub repairs_sent: u64,
    /// Packets delivered (original reception).
    pub delivered: u64,
    /// Packets delivered via repair.
    pub recovered: u64,
}

/// One SRM session member. The source member publishes via
/// [`send`](SrmMember::send); every member caches data and participates
/// in recovery.
pub struct SrmMember {
    config: SrmConfig,
    rng: SmallRng,
    unwrapper: SeqUnwrapper,
    gaps: GapTracker,
    store: BTreeMap<u64, Bytes>,
    requests: BTreeMap<u64, RequestTimer>,
    repairs: BTreeMap<u64, RepairTimer>,
    next_session_at: Option<Time>,
    next_seq: Seq,
    stats: SrmStats,
}

impl SrmMember {
    /// Creates a member.
    pub fn new(config: SrmConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        SrmMember {
            rng,
            unwrapper: SeqUnwrapper::new(),
            gaps: GapTracker::new(),
            store: BTreeMap::new(),
            requests: BTreeMap::new(),
            repairs: BTreeMap::new(),
            next_session_at: None,
            next_seq: Seq::FIRST,
            stats: SrmStats::default(),
            config,
        }
    }

    /// Running statistics.
    pub fn stats(&self) -> SrmStats {
        self.stats
    }

    /// `true` if this member holds `seq`.
    pub fn has(&self, seq: Seq) -> bool {
        self.store.contains_key(&self.unwrapper.peek(seq))
    }

    /// Publishes a data packet (source member only).
    pub fn send(&mut self, now: Time, payload: Bytes, out: &mut Actions) {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        let idx = self.unwrapper.unwrap(seq);
        self.store.insert(idx, payload.clone());
        self.gaps.observe(seq);
        out.push(Action::Multicast {
            scope: TtlScope::Global,
            packet: Packet::Data {
                group: self.config.group,
                source: self.config.source,
                seq,
                epoch: EpochId::INITIAL,
                payload,
            },
        });
        let _ = now;
    }

    fn jitter(&mut self, base: f64, spread: f64, d: Duration) -> Duration {
        let lo = base * d.as_secs_f64();
        let hi = (base + spread) * d.as_secs_f64();
        Duration::from_secs_f64(if hi > lo {
            self.rng.random_range(lo..hi)
        } else {
            lo
        })
    }

    fn schedule_request(&mut self, now: Time, seq: Seq) {
        let idx = self.unwrapper.unwrap(seq);
        if self.requests.contains_key(&idx) {
            return;
        }
        let d = self.config.delay_of(self.config.source_host);
        let wait = self.jitter(self.config.c1, self.config.c2, d);
        self.requests.insert(
            idx,
            RequestTimer {
                seq,
                fire_at: now + wait,
                interval: wait,
                detected_at: now,
            },
        );
    }

    fn note_missing(
        &mut self,
        now: Time,
        first: Seq,
        last: Seq,
        signal: LossSignal,
        out: &mut Actions,
    ) {
        out.push(Action::Notice(Notice::LossDetected {
            first,
            last,
            signal,
        }));
        for seq in first.iter_to(last) {
            if self.gaps.is_missing(seq) {
                self.schedule_request(now, seq);
            }
        }
    }

    fn absorb(&mut self, now: Time, seq: Seq, payload: Bytes, via_repair: bool, out: &mut Actions) {
        let idx = self.unwrapper.unwrap(seq);
        match self.gaps.observe(seq) {
            Observation::Duplicate => (),
            Observation::First | Observation::InOrder | Observation::BeforeStart => {
                self.store.insert(idx, payload.clone());
                self.deliver(seq, payload, via_repair, out);
            }
            Observation::Filled => {
                self.store.insert(idx, payload.clone());
                if let Some(req) = self.requests.remove(&idx) {
                    out.push(Action::Notice(Notice::Recovered {
                        seq,
                        after: now.since(req.detected_at),
                    }));
                }
                self.deliver(seq, payload, via_repair, out);
            }
            Observation::Ahead { gap } => {
                self.store.insert(idx, payload.clone());
                self.deliver(seq, payload, via_repair, out);
                let last = seq.prev();
                let first = SeqUnwrapper::rewrap(self.unwrapper.peek(last) - (gap - 1));
                self.note_missing(now, first, last, LossSignal::SeqGap, out);
            }
        }
    }

    fn deliver(&mut self, seq: Seq, payload: Bytes, recovered: bool, out: &mut Actions) {
        if recovered {
            self.stats.recovered += 1;
        } else {
            self.stats.delivered += 1;
        }
        out.push(Action::Deliver(Delivery {
            seq,
            payload,
            recovered,
        }));
    }
}

impl Machine for SrmMember {
    fn on_start(&mut self, now: Time, _out: &mut Actions) {
        self.next_session_at = Some(now + self.config.session_interval);
    }

    fn on_packet(&mut self, now: Time, _from: HostId, packet: Packet, out: &mut Actions) {
        let (group, source) = (self.config.group, self.config.source);
        match packet {
            Packet::Data {
                group: g,
                source: s,
                seq,
                payload,
                ..
            } if g == group && s == source => {
                self.absorb(now, seq, payload, false, out);
            }
            Packet::SrmSession {
                group: g,
                member,
                last_seq,
            } if g == group => {
                if member == self.config.host {
                    return;
                }
                let before_high = self.gaps.highest();
                let newly = self.gaps.observe_announced(last_seq);
                if newly > 0 {
                    let first = before_high.map_or(last_seq, |h| h.next());
                    self.note_missing(now, first, last_seq, LossSignal::Heartbeat, out);
                }
            }
            Packet::SrmNack {
                group: g,
                source: s,
                requester,
                ranges,
            } if g == group && s == source => {
                for range in ranges {
                    for seq in range.iter().take(256) {
                        let idx = self.unwrapper.unwrap(seq);
                        // Request suppression: someone else asked first —
                        // back our own request off exponentially.
                        if let Some(req) = self.requests.get_mut(&idx) {
                            req.interval *= 2;
                            let interval = req.interval;
                            let fire_at = now + interval;
                            req.fire_at = fire_at;
                        }
                        // Repair duty: if we hold it, race to answer.
                        if self.store.contains_key(&idx)
                            && !self.repairs.contains_key(&idx)
                            && requester != self.config.host
                        {
                            let d = self.config.delay_of(requester);
                            let wait = self.jitter(self.config.d1, self.config.d2, d);
                            self.repairs.insert(
                                idx,
                                RepairTimer {
                                    seq,
                                    fire_at: now + wait,
                                },
                            );
                        }
                    }
                }
            }
            Packet::SrmRepair {
                group: g,
                source: s,
                seq,
                payload,
                responder,
            } if g == group && s == source => {
                let idx = self.unwrapper.unwrap(seq);
                // Repair suppression: someone answered; stand down.
                self.repairs.remove(&idx);
                if responder != self.config.host {
                    self.absorb(now, seq, payload, true, out);
                }
            }
            _ => {}
        }
    }

    fn poll(&mut self, now: Time, out: &mut Actions) {
        // Session messages at a fixed interval (wb's detection mechanism).
        if let Some(at) = self.next_session_at {
            if now >= at {
                if let Some(high) = self.gaps.highest() {
                    out.push(Action::Multicast {
                        scope: TtlScope::Global,
                        packet: Packet::SrmSession {
                            group: self.config.group,
                            member: self.config.host,
                            last_seq: high,
                        },
                    });
                }
                self.next_session_at = Some(now + self.config.session_interval);
            }
        }
        // Request timers: multicast the NACK, then wait with backoff.
        let due_requests: Vec<u64> = self
            .requests
            .iter()
            .filter(|(_, r)| now >= r.fire_at)
            .map(|(&i, _)| i)
            .collect();
        if !due_requests.is_empty() {
            let mut ranges: Vec<SeqRange> = Vec::new();
            for idx in due_requests {
                let r = self.requests.get_mut(&idx).expect("due request");
                r.interval *= 2;
                r.fire_at = now + r.interval;
                match ranges.last_mut() {
                    Some(last) if last.last.next() == r.seq => last.last = r.seq,
                    _ => ranges.push(SeqRange::single(r.seq)),
                }
            }
            self.stats.nacks_sent += 1;
            out.push(Action::Multicast {
                scope: TtlScope::Global,
                packet: Packet::SrmNack {
                    group: self.config.group,
                    source: self.config.source,
                    requester: self.config.host,
                    ranges,
                },
            });
        }
        // Repair timers: we won the suppression race; answer.
        let due_repairs: Vec<u64> = self
            .repairs
            .iter()
            .filter(|(_, r)| now >= r.fire_at)
            .map(|(&i, _)| i)
            .collect();
        for idx in due_repairs {
            let r = self.repairs.remove(&idx).expect("due repair");
            if let Some(payload) = self.store.get(&idx) {
                self.stats.repairs_sent += 1;
                out.push(Action::Multicast {
                    scope: TtlScope::Global,
                    packet: Packet::SrmRepair {
                        group: self.config.group,
                        source: self.config.source,
                        seq: r.seq,
                        responder: self.config.host,
                        payload: payload.clone(),
                    },
                });
            }
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        let mut d = self.next_session_at;
        d = earliest(d, self.requests.values().map(|r| r.fire_at).min());
        d = earliest(d, self.repairs.values().map(|r| r.fire_at).min());
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{deliveries, notices};

    const GROUP: GroupId = GroupId(5);
    const SRC: SourceId = SourceId(1);
    const SRC_HOST: HostId = HostId(1);

    fn member(host: u64) -> SrmMember {
        SrmMember::new(SrmConfig::new(GROUP, HostId(host), SRC, SRC_HOST))
    }

    fn data(seq: u32) -> Packet {
        Packet::Data {
            group: GROUP,
            source: SRC,
            seq: Seq(seq),
            epoch: EpochId::INITIAL,
            payload: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn source_member_multicasts_data() {
        let mut m = member(1);
        let mut out = Actions::new();
        m.send(Time::ZERO, Bytes::from_static(b"hello"), &mut out);
        assert!(matches!(
            &out[..],
            [Action::Multicast { scope: TtlScope::Global, packet: Packet::Data { seq, .. } }]
                if *seq == Seq(1)
        ));
        assert!(m.has(Seq(1)));
    }

    #[test]
    fn gap_triggers_multicast_nack_after_randomized_delay() {
        let mut m = member(2);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        m.on_packet(Time::from_millis(10), SRC_HOST, data(3), &mut out);
        assert!(notices(&out)
            .iter()
            .any(|n| matches!(n, Notice::LossDetected { first, .. } if *first == Seq(2))));
        // The request fires within [c1·d, (c1+c2)·d] of detection.
        let d = m.config.default_delay.as_secs_f64();
        let fire = m.requests.values().next().unwrap().fire_at;
        let wait = fire.since(Time::from_millis(10)).as_secs_f64();
        assert!(wait >= 2.0 * d && wait <= 4.0 * d, "wait {wait}");
        out.clear();
        m.poll(fire, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Multicast {
                packet: Packet::SrmNack { .. },
                ..
            }
        )));
        assert_eq!(m.stats().nacks_sent, 1);
    }

    #[test]
    fn request_suppressed_by_foreign_nack() {
        let mut m = member(2);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        m.on_packet(Time::from_millis(10), SRC_HOST, data(3), &mut out);
        let before = m.requests.values().next().unwrap().fire_at;
        // Another member's NACK for the same packet arrives first.
        let foreign = Packet::SrmNack {
            group: GROUP,
            source: SRC,
            requester: HostId(9),
            ranges: vec![SeqRange::single(Seq(2))],
        };
        m.on_packet(Time::from_millis(12), HostId(9), foreign, &mut out);
        let after = m.requests.values().next().unwrap().fire_at;
        assert!(after > before, "suppression must push the timer back");
    }

    #[test]
    fn holder_repairs_after_delay_and_is_suppressed_by_other_repairs() {
        let mut m = member(3);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        m.on_packet(Time::from_millis(1), SRC_HOST, data(2), &mut out);
        out.clear();
        let nack = Packet::SrmNack {
            group: GROUP,
            source: SRC,
            requester: HostId(9),
            ranges: vec![SeqRange::single(Seq(2))],
        };
        m.on_packet(Time::from_millis(20), HostId(9), nack, &mut out);
        assert_eq!(m.repairs.len(), 1);
        // Case A: our timer fires → we multicast the repair.
        let mut m2 = m;
        let fire = m2.repairs.values().next().unwrap().fire_at;
        let mut out2 = Actions::new();
        m2.poll(fire, &mut out2);
        assert!(out2.iter().any(|a| matches!(
            a,
            Action::Multicast { packet: Packet::SrmRepair { seq, .. }, .. } if *seq == Seq(2)
        )));
        assert_eq!(m2.stats().repairs_sent, 1);
        // Case B would be suppression: tested below.
    }

    #[test]
    fn repair_suppression() {
        let mut m = member(3);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        m.on_packet(Time::from_millis(1), SRC_HOST, data(2), &mut out);
        let nack = Packet::SrmNack {
            group: GROUP,
            source: SRC,
            requester: HostId(9),
            ranges: vec![SeqRange::single(Seq(2))],
        };
        m.on_packet(Time::from_millis(20), HostId(9), nack, &mut out);
        // Someone else repairs first.
        let repair = Packet::SrmRepair {
            group: GROUP,
            source: SRC,
            seq: Seq(2),
            responder: HostId(4),
            payload: Bytes::from_static(b"x"),
        };
        out.clear();
        m.on_packet(Time::from_millis(25), HostId(4), repair, &mut out);
        assert!(m.repairs.is_empty(), "repair timer must be suppressed");
        let fire = Time::from_secs(10);
        out.clear();
        m.poll(fire, &mut out);
        assert!(!out.iter().any(|a| matches!(
            a,
            Action::Multicast {
                packet: Packet::SrmRepair { .. },
                ..
            }
        )));
    }

    #[test]
    fn repair_recovers_missing_data() {
        let mut m = member(2);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        m.on_packet(Time::from_millis(10), SRC_HOST, data(3), &mut out);
        out.clear();
        let repair = Packet::SrmRepair {
            group: GROUP,
            source: SRC,
            seq: Seq(2),
            responder: HostId(4),
            payload: Bytes::from_static(b"x"),
        };
        m.on_packet(Time::from_millis(60), HostId(4), repair, &mut out);
        let ds = deliveries(&out);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].recovered);
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::Recovered { seq, after } if *seq == Seq(2) && *after == Duration::from_millis(50)
        )));
        assert_eq!(m.stats().recovered, 1);
    }

    #[test]
    fn session_messages_reveal_tail_loss() {
        let mut m = member(2);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        // A session message from a member that saw #3.
        let session = Packet::SrmSession {
            group: GROUP,
            member: HostId(7),
            last_seq: Seq(3),
        };
        m.on_packet(Time::from_millis(300), HostId(7), session, &mut out);
        assert!(notices(&out).iter().any(|n| matches!(
            n,
            Notice::LossDetected { first, last, signal: LossSignal::Heartbeat }
                if *first == Seq(2) && *last == Seq(3)
        )));
        assert_eq!(m.requests.len(), 2);
    }

    #[test]
    fn emits_session_messages_periodically() {
        let mut m = member(2);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        m.poll(Time::from_millis(250), &mut out);
        assert!(matches!(
            &out[..],
            [Action::Multicast { packet: Packet::SrmSession { last_seq, .. }, .. }]
                if *last_seq == Seq(1)
        ));
        // And again one interval later.
        out.clear();
        m.poll(Time::from_millis(500), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn own_session_messages_ignored() {
        let mut m = member(2);
        let mut out = Actions::new();
        m.on_start(Time::ZERO, &mut out);
        m.on_packet(Time::ZERO, SRC_HOST, data(1), &mut out);
        out.clear();
        let own = Packet::SrmSession {
            group: GROUP,
            member: HostId(2),
            last_seq: Seq(5),
        };
        m.on_packet(Time::from_millis(1), HostId(2), own, &mut out);
        assert!(out.is_empty());
        assert_eq!(m.requests.len(), 0);
    }
}
