//! The protocol clock.
//!
//! LBRM state machines are *sans-IO*: they never read a wall clock.
//! Every entry point takes the current [`Time`], and machines expose
//! [`next_deadline`](crate::machine::Machine::next_deadline) so the
//! driver (simulator or tokio endpoint) knows when to call back. `Time`
//! is a nanosecond count from an arbitrary origin chosen by the driver.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the protocol clock (nanoseconds from the driver's origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin.
    pub const ZERO: Time = Time(0);

    /// Builds an instant from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Builds an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Nanoseconds from the origin.
    #[inline]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds from the origin as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    #[inline]
    fn add(self, d: Duration) -> Time {
        Time(
            self.0
                .saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64),
        )
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    #[inline]
    fn sub(self, other: Time) -> Duration {
        self.since(other)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

/// The earlier of two optional deadlines — `None` means "no deadline".
pub fn earliest(a: Option<Time>, b: Option<Time>) -> Option<Time> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1) + Duration::from_millis(250);
        assert_eq!(t.nanos(), 1_250_000_000);
        assert_eq!(t - Time::from_secs(1), Duration::from_millis(250));
        assert_eq!(Time::ZERO - t, Duration::ZERO);
    }

    #[test]
    fn earliest_combines() {
        let a = Some(Time::from_secs(3));
        let b = Some(Time::from_secs(2));
        assert_eq!(earliest(a, b), b);
        assert_eq!(earliest(a, None), a);
        assert_eq!(earliest(None, b), b);
        assert_eq!(earliest(None, None), None);
    }
}
