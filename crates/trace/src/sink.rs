//! The stock [`TraceSink`] implementations.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::Mutex;

use lbrm_wire::HostId;

use crate::{ProtocolEvent, TraceSink};

/// Accepts every event and does nothing. Distinct from a *disabled*
/// [`Tracer`](crate::Tracer): events are still constructed and
/// dispatched, which is exactly what the `protocol_micro` overhead
/// comparison measures.
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _at_nanos: u64, _host: HostId, _event: &ProtocolEvent) {}
}

/// Counts events per [`ProtocolEvent::key`].
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl CountingSink {
    /// Events recorded under `key` so far.
    pub fn count(&self, key: &str) -> u64 {
        *self.counts.lock().unwrap().get(key).unwrap_or(&0)
    }

    /// All nonzero counters, sorted by key.
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        self.counts.lock().unwrap().clone()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.lock().unwrap().values().sum()
    }
}

impl TraceSink for CountingSink {
    fn record(&self, _at_nanos: u64, _host: HostId, event: &ProtocolEvent) {
        *self.counts.lock().unwrap().entry(event.key()).or_insert(0) += 1;
    }
}

/// Keeps the last `capacity` events with timestamps — a flight recorder
/// for post-mortem debugging of a run.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<(u64, ProtocolEvent)>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<(u64, ProtocolEvent)> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().unwrap().is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&self, at_nanos: u64, _host: HostId, event: &ProtocolEvent) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back((at_nanos, event.clone()));
    }
}

/// Default event interval between automatic [`JsonLinesSink`] flushes.
pub(crate) const DEFAULT_FLUSH_EVERY: u64 = 1024;

/// Streams events as JSON lines to any writer (a file, a pipe, or an
/// in-memory buffer for tests).
///
/// The sink flushes the writer every
/// [`DEFAULT_FLUSH_EVERY`](JsonLinesSink::new) events (tunable via
/// [`with_flush_every`](JsonLinesSink::with_flush_every)), so a run that
/// crashes mid-way still leaves an almost-complete capture on disk for
/// `trace_doctor` — at worst the tail since the last flush is lost, and
/// a truncated final line is skipped (and counted) by the replay
/// parser.
///
/// The sink also flushes in `Drop`, so a panicking endpoint thread that
/// unwinds the last reference still lands its tail batch on disk —
/// teardown no longer has to reach [`flush`](JsonLinesSink::flush)
/// explicitly for the capture to parse end-to-end. Every sink-initiated
/// flush (periodic, explicit, or drop) is counted; see
/// [`flushes`](JsonLinesSink::flushes).
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    // The writer sits in an `Option` so `into_inner` can move it out
    // from under the `Drop` impl; `None` means "already taken".
    out: Mutex<(Option<W>, u64)>,
    flush_every: u64,
    flushes: std::sync::atomic::AtomicU64,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; one line is written per event, with an automatic
    /// flush every 1024 events.
    pub fn new(writer: W) -> Self {
        Self::with_flush_every(writer, DEFAULT_FLUSH_EVERY)
    }

    /// Wraps `writer`, flushing every `flush_every` events (at least 1,
    /// i.e. flush-per-line).
    pub fn with_flush_every(writer: W, flush_every: u64) -> Self {
        JsonLinesSink {
            out: Mutex::new((Some(writer), 0)),
            flush_every: flush_every.max(1),
            flushes: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Consumes the sink, returning the writer (unflushed: the caller
    /// owns it and its own teardown).
    pub fn into_inner(self) -> W {
        self.out
            .lock()
            .unwrap()
            .0
            .take()
            .expect("writer present until into_inner")
        // `self` drops here; `Drop` sees the taken writer and no-ops.
    }

    /// Flushes the underlying writer. Runs automatically every
    /// `flush_every` events and on drop; experiment teardown may still
    /// call it to put the tail on disk at a deterministic point.
    pub fn flush(&self) {
        let mut out = self.out.lock().unwrap();
        out.1 = 0;
        if let Some(w) = out.0.as_mut() {
            self.flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let _ = w.flush();
        }
    }

    /// Sink-initiated flushes so far (periodic + explicit + drop).
    pub fn flushes(&self) -> u64 {
        self.flushes.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl JsonLinesSink<Vec<u8>> {
    /// An in-memory sink, convenient for tests and reports.
    pub fn buffered() -> Self {
        JsonLinesSink::new(Vec::new())
    }

    /// The lines written so far.
    pub fn contents(&self) -> String {
        match self.out.lock().unwrap().0.as_ref() {
            Some(buf) => String::from_utf8_lossy(buf).into_owned(),
            None => String::new(),
        }
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        let mut guard = self.out.lock().unwrap();
        let (writer, pending) = &mut *guard;
        let Some(w) = writer.as_mut() else { return };
        // A full pipe or closed file is not the protocol's problem.
        let _ = writeln!(w, "{}", event.to_json(at_nanos, host));
        *pending += 1;
        if *pending >= self.flush_every {
            self.flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let _ = w.flush();
            *pending = 0;
        }
    }
}

impl<W: Write + Send> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        // Flush the tail batch even when the drop happens during a
        // panic unwind on an endpoint thread — the capture must stay
        // parseable without cooperative teardown. A poisoned lock just
        // means the panicking thread held it mid-record; the writer is
        // still there.
        let mut guard = match self.out.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (writer, pending) = &mut *guard;
        if let Some(w) = writer.as_mut() {
            if *pending > 0 {
                self.flushes
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let _ = w.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use lbrm_wire::Seq;
    use std::sync::Arc;

    fn ev(seq: u32) -> ProtocolEvent {
        ProtocolEvent::DataSent {
            seq: Seq(seq),
            epoch: lbrm_wire::EpochId(0),
        }
    }

    #[test]
    fn counting_sink_counts_by_key() {
        let sink = Arc::new(CountingSink::default());
        let t = Tracer::to(sink.clone());
        for i in 0..3 {
            t.emit(i, || ev(i as u32));
        }
        t.emit(9, || ProtocolEvent::FreshnessLost);
        assert_eq!(sink.count("data_sent"), 3);
        assert_eq!(sink.count("freshness_lost"), 1);
        assert_eq!(sink.count("never_emitted"), 0);
        assert_eq!(sink.total(), 4);
        assert_eq!(sink.snapshot().len(), 2);
    }

    #[test]
    fn ring_sink_keeps_only_newest() {
        let sink = RingSink::new(2);
        for i in 0..5u64 {
            sink.record(i, HostId(1), &ev(i as u32));
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, 3);
        assert_eq!(events[1].0, 4);
        assert!(!sink.is_empty());
    }

    #[test]
    fn json_lines_sink_flushes_periodically() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        struct FlushCounter(StdArc<AtomicUsize>);
        impl Write for FlushCounter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }

        let flushes = StdArc::new(AtomicUsize::new(0));
        let sink = JsonLinesSink::with_flush_every(FlushCounter(flushes.clone()), 3);
        for i in 0..7u64 {
            sink.record(i, HostId(1), &ev(i as u32));
        }
        // Events 3 and 6 trip the automatic flush; the tail has not.
        assert_eq!(flushes.load(Ordering::SeqCst), 2);
        sink.flush();
        assert_eq!(flushes.load(Ordering::SeqCst), 3);
        // The explicit flush resets the countdown: three more events
        // trip exactly one more.
        for i in 0..3u64 {
            sink.record(i, HostId(1), &ev(i as u32));
        }
        assert_eq!(flushes.load(Ordering::SeqCst), 4);
    }

    /// A writer that only moves bytes to its backing store on `flush`
    /// and does nothing in `Drop` — unlike `BufWriter`, whose own
    /// drop-flush would mask whether the *sink* flushed.
    struct ExplicitFlushWriter {
        buf: Vec<u8>,
        file: std::fs::File,
    }

    impl Write for ExplicitFlushWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
            self.file.flush()
        }
    }

    #[test]
    fn drop_flushes_the_tail_even_when_the_owning_thread_panics() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lbrm_sink_drop_{}.jsonl", std::process::id()));
        let file = std::fs::File::create(&path).unwrap();
        let sink = Arc::new(JsonLinesSink::with_flush_every(
            ExplicitFlushWriter {
                buf: Vec::new(),
                file,
            },
            1000, // far above the event count: nothing auto-flushes
        ));
        let worker_sink = sink.clone();
        drop(sink); // the panicking thread holds the last reference
        let worker = std::thread::spawn(move || {
            for i in 0..5u64 {
                worker_sink.record(i, HostId(1), &ev(i as u32));
            }
            panic!("endpoint thread dies mid-run");
        });
        assert!(worker.join().is_err(), "thread must have panicked");

        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let (records, skipped) = crate::analyze::parse_json_lines(&text);
        assert_eq!(records.len(), 5, "tail batch must survive the panic");
        assert_eq!(skipped, 0, "capture must parse line-for-line");
    }

    #[test]
    fn drop_flush_is_counted_and_into_inner_skips_it() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        struct FlushCounter(StdArc<AtomicUsize>);
        impl Write for FlushCounter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }

        let flushes = StdArc::new(AtomicUsize::new(0));
        let sink = JsonLinesSink::with_flush_every(FlushCounter(flushes.clone()), 100);
        sink.record(1, HostId(1), &ev(1));
        assert_eq!(sink.flushes(), 0);
        drop(sink);
        assert_eq!(flushes.load(Ordering::SeqCst), 1, "drop flushed the tail");

        // An empty tail has nothing to flush on drop.
        let flushes2 = StdArc::new(AtomicUsize::new(0));
        let sink = JsonLinesSink::with_flush_every(FlushCounter(flushes2.clone()), 1);
        sink.record(1, HostId(1), &ev(1)); // flush-per-line: tail empty
        drop(sink);
        assert_eq!(flushes2.load(Ordering::SeqCst), 1, "no extra drop flush");

        // `into_inner` hands the writer back unflushed.
        let flushes3 = StdArc::new(AtomicUsize::new(0));
        let sink = JsonLinesSink::with_flush_every(FlushCounter(flushes3.clone()), 100);
        sink.record(1, HostId(1), &ev(1));
        let _writer = sink.into_inner();
        assert_eq!(flushes3.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::buffered();
        sink.record(1, HostId(7), &ev(10));
        sink.record(2, HostId(8), &ProtocolEvent::FreshnessRestored);
        sink.flush();
        let text = sink.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"data_sent\""));
        assert!(lines[0].contains("\"host\":7"));
        assert!(lines[1].contains("\"event\":\"freshness_restored\""));
    }
}
