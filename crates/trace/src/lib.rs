//! Protocol observability for LBRM (re-exported as `lbrm_core::trace`).
//!
//! The paper's entire evaluation (Figures 4–8, Tables 1–3) is built on
//! *counting protocol events*: heartbeats, NACKs, retransmissions,
//! re-multicasts, recovery latencies. This crate gives every protocol
//! machine one uniform way to report those events:
//!
//! * [`ProtocolEvent`] — the event taxonomy, one variant per observable
//!   protocol action (data/heartbeat transmission, gap detection, NACKs,
//!   unicast/multicast repairs, statistical-ACK epochs and settlements,
//!   failover, plus network-level copies from the simulator).
//! * [`TraceSink`] — the pluggable consumer trait; [`NoopSink`],
//!   [`RingSink`], [`CountingSink`] and [`JsonLinesSink`] ship here, and
//!   [`MetricsRegistry`] is a sink that aggregates counters and
//!   recovery-latency / `t_wait` histograms.
//! * [`Tracer`] — the handle machines hold. A disabled tracer is a
//!   single `Option` test on the hot path and never constructs the
//!   event; the `protocol_micro` bench pins the claim down. Every
//!   tracer carries the emitting [`HostId`] so downstream analysis can
//!   correlate events causally across machines.
//! * [`analyze`] — recovery forensics: correlates a recorded event
//!   stream into per-`(host, seq)` recovery timelines, per-stage
//!   latency histograms, a repair-source breakdown, and anomaly
//!   detections (see [`analyze::RecoveryReport`]).
//! * [`OnlineAnalyzer`] — the streaming flavour of the same forensics:
//!   one record at a time in bounded memory (evict-on-close, optional
//!   age-out horizon and live-timeline cap, [`StreamingHistogram`]
//!   stage folding), with its own peak resident state reported in
//!   [`analyze::StreamStats`]. [`OnlineAnalyzerSink`] plugs it straight
//!   into a live run.
//!
//! Timestamps cross the API as raw nanoseconds (`at_nanos`) so the same
//! events work under both the protocol clock (`lbrm_core::time::Time`)
//! and the simulator clock (`lbrm_sim::time::SimTime`), which are both
//! nanosecond counters.
//!
//! ```
//! use std::sync::Arc;
//! use lbrm_trace::{CountingSink, ProtocolEvent, Tracer};
//! use lbrm_wire::Seq;
//!
//! let counts = Arc::new(CountingSink::default());
//! let tracer = Tracer::to(counts.clone());
//! tracer.emit(0, || ProtocolEvent::GapDetected { first: Seq(3), last: Seq(5) });
//! assert_eq!(counts.count("gap_detected"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

use lbrm_wire::{EpochId, HostId, Seq};

pub mod analyze;
pub mod doctor;
mod metrics;
mod online;
mod sink;

pub use analyze::{CollectorSink, FanoutSink, SerialFanoutSink, TraceRecord};
pub use doctor::{
    fold_deltas, AdminServer, DeltaFold, DeltaTracker, DoctorConfig, DoctorSidecar, DoctorSink,
    ReportBasis, ReportDelta,
};
pub use metrics::{
    Histogram, HistogramSnapshot, MetricsRegistry, StreamingHistogram, STREAM_HIST_BUCKETS,
};
pub use online::{LiveGap, OnlineAnalyzer, OnlineAnalyzerSink, OnlineConfig};
pub use sink::{CountingSink, JsonLinesSink, NoopSink, RingSink};

/// One observable protocol action.
///
/// Variants carry only small `Copy` data so events are cheap to build
/// and compare; payload bytes never enter the trace stream.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolEvent {
    /// The source multicast an original data packet.
    DataSent {
        /// Sequence number.
        seq: Seq,
        /// Statistical-ACK epoch stamped on the packet.
        epoch: EpochId,
    },
    /// The source multicast a heartbeat (§2.1.2 variable scheme or the
    /// fixed baseline).
    HeartbeatSent {
        /// Highest sequence the heartbeat advertises.
        seq: Seq,
        /// Position in the heartbeat run since the last data packet.
        hb_index: u32,
    },
    /// A receiver or logger observed a sequence gap.
    GapDetected {
        /// First missing sequence.
        first: Seq,
        /// Last missing sequence.
        last: Seq,
    },
    /// A NACK packet left for `target` requesting `packets` sequences.
    NackSent {
        /// Host the retransmission request goes to.
        target: HostId,
        /// Number of sequences requested in this packet.
        packets: u32,
        /// Lowest sequence requested (correlation anchor).
        first: Seq,
        /// Highest sequence requested.
        last: Seq,
    },
    /// A NACK packet arrived at a host able to serve it.
    NackReceived {
        /// Requesting host.
        from: HostId,
        /// Number of sequences requested.
        packets: u32,
    },
    /// A logged packet was retransmitted to a requester (§2.2.1: unicast
    /// for isolated loss, site-scoped multicast for correlated loss).
    RetransServed {
        /// The retransmitted sequence.
        seq: Seq,
        /// `true` for a site-scoped multicast repair.
        multicast: bool,
        /// The requester being answered (for a multicast repair, the
        /// requester whose NACK triggered it).
        to: HostId,
    },
    /// The statistical-ACK engine re-multicast a packet after missing
    /// ACK coverage at `t_wait` (§2.3.2).
    Remulticast {
        /// The re-sent sequence.
        seq: Seq,
        /// ACKs still missing at the deadline.
        missing: u32,
    },
    /// The source multicast an Acker Selection Packet (§2.3.1).
    AckerSelected {
        /// Epoch being selected for.
        epoch: EpochId,
        /// Advertised volunteer probability.
        p_ack: f64,
    },
    /// A logger volunteered as Designated Acker.
    AckerVolunteered {
        /// Epoch volunteered for.
        epoch: EpochId,
    },
    /// A selection matured: newly sent data carries `epoch`.
    EpochActive {
        /// The activated epoch.
        epoch: EpochId,
        /// Number of Designated Ackers.
        ackers: u32,
    },
    /// ACK bookkeeping for a packet closed.
    Settled {
        /// The settled sequence.
        seq: Seq,
        /// `true` if every expected ACK arrived.
        complete: bool,
    },
    /// The `t_wait` EWMA absorbed a new sample (§2.3.2).
    TWaitUpdated {
        /// The new window, in nanoseconds.
        t_wait_nanos: u64,
    },
    /// Consecutive incomplete settlements suggest congestion (§5).
    CongestionSuspected {
        /// Length of the incomplete streak.
        streak: u32,
    },
    /// A receiver completed recovery of a lost packet.
    Recovered {
        /// The recovered sequence.
        seq: Seq,
        /// Loss-detection-to-recovery latency, in nanoseconds.
        latency_nanos: u64,
    },
    /// A receiver gave up recovering a sequence.
    RecoveryAbandoned {
        /// The abandoned sequence.
        seq: Seq,
    },
    /// The packet that actually filled a tracked gap arrived — the
    /// terminal wire-level event of a recovery timeline. Emitted just
    /// before [`ProtocolEvent::Recovered`] with the carrier identified.
    RepairReceived {
        /// The repaired sequence.
        seq: Seq,
        /// Host the repair arrived from.
        from: HostId,
        /// Carrier kind: `"retrans"`, `"data"` (late original or
        /// statistical-ACK re-multicast), or `"heartbeat"` (§7
        /// repeat-payload fill).
        kind: &'static str,
    },
    /// A retransmission arrived for a sequence already held — a
    /// redundant repair (duplicate-repair accounting, §2.3).
    RepairDuplicate {
        /// The already-held sequence.
        seq: Seq,
        /// Host the redundant copy arrived from.
        from: HostId,
    },
    /// A receiver fell behind the freshness horizon.
    FreshnessLost,
    /// A receiver caught back up to the freshness horizon.
    FreshnessRestored,
    /// The sender released its transmit buffer through `up_to` after log
    /// acknowledgement (§2.2.2).
    BufferReleased {
        /// Highest released sequence.
        up_to: Seq,
    },
    /// A logging server added a packet to its log.
    PacketLogged {
        /// The logged sequence.
        seq: Seq,
    },
    /// The primary logging server stopped answering (§2.2.3).
    PrimaryUnresponsive {
        /// The unresponsive primary.
        primary: HostId,
    },
    /// A replica was promoted to primary (§2.2.3).
    FailoverPromoted {
        /// The new primary.
        new_primary: HostId,
    },
    /// A quorum elected `leader` as primary for `term` (§2.2.3
    /// hardening). Emitted by the election proposer when the decision is
    /// announced.
    TermElected {
        /// The elected term.
        term: u32,
        /// Primary logger for the term.
        leader: HostId,
    },
    /// A packet from a fenced (deposed) primary was rejected. `term` is
    /// the rejecting machine's current term.
    StaleTermFenced {
        /// The deposed host whose packet was dropped.
        from: HostId,
        /// The rejecting machine's current term.
        term: u32,
    },
    /// A logger served a repair while believing itself primary, tagged
    /// with the term it believes current — the forensics layer
    /// cross-checks these against [`ProtocolEvent::TermElected`] to
    /// detect a stale primary whose repairs were *accepted* (split-brain
    /// double-serve).
    AuthorityServe {
        /// The served sequence.
        seq: Seq,
        /// Term the serving logger believes current.
        term: u32,
    },
    /// A machine announced its protocol role at startup, so a replayed
    /// trace is self-contained for repair-source attribution.
    RoleAnnounced {
        /// `"sender"`, `"receiver"`, `"logger_primary"`,
        /// `"logger_secondary"`, or `"logger_replica"`.
        role: &'static str,
    },
    /// The simulated network carried one send call (world-level view).
    NetPacket {
        /// Packet kind label (same labels as the sim's `NetStats`).
        kind: &'static str,
        /// `true` for multicast sends.
        multicast: bool,
        /// Copies actually delivered (after loss and scoping).
        copies: u32,
    },
}

impl ProtocolEvent {
    /// Stable counter key for this event; distinguishes the variants the
    /// paper's evaluation counts separately (unicast vs multicast
    /// repairs, complete vs incomplete settlements).
    pub fn key(&self) -> &'static str {
        match self {
            ProtocolEvent::DataSent { .. } => "data_sent",
            ProtocolEvent::HeartbeatSent { .. } => "heartbeat_sent",
            ProtocolEvent::GapDetected { .. } => "gap_detected",
            ProtocolEvent::NackSent { .. } => "nack_sent",
            ProtocolEvent::NackReceived { .. } => "nack_received",
            ProtocolEvent::RetransServed {
                multicast: false, ..
            } => "retrans_served_unicast",
            ProtocolEvent::RetransServed {
                multicast: true, ..
            } => "retrans_served_multicast",
            ProtocolEvent::Remulticast { .. } => "remulticast",
            ProtocolEvent::AckerSelected { .. } => "acker_selected",
            ProtocolEvent::AckerVolunteered { .. } => "acker_volunteered",
            ProtocolEvent::EpochActive { .. } => "epoch_active",
            ProtocolEvent::Settled { complete: true, .. } => "settled_complete",
            ProtocolEvent::Settled {
                complete: false, ..
            } => "settled_incomplete",
            ProtocolEvent::TWaitUpdated { .. } => "t_wait_updated",
            ProtocolEvent::CongestionSuspected { .. } => "congestion_suspected",
            ProtocolEvent::Recovered { .. } => "recovered",
            ProtocolEvent::RecoveryAbandoned { .. } => "recovery_abandoned",
            ProtocolEvent::RepairReceived { .. } => "repair_received",
            ProtocolEvent::RepairDuplicate { .. } => "repair_duplicate",
            ProtocolEvent::FreshnessLost => "freshness_lost",
            ProtocolEvent::FreshnessRestored => "freshness_restored",
            ProtocolEvent::BufferReleased { .. } => "buffer_released",
            ProtocolEvent::PacketLogged { .. } => "packet_logged",
            ProtocolEvent::PrimaryUnresponsive { .. } => "primary_unresponsive",
            ProtocolEvent::FailoverPromoted { .. } => "failover_promoted",
            ProtocolEvent::TermElected { .. } => "term_elected",
            ProtocolEvent::StaleTermFenced { .. } => "stale_term_fenced",
            ProtocolEvent::AuthorityServe { .. } => "authority_serve",
            ProtocolEvent::RoleAnnounced { .. } => "role_announced",
            ProtocolEvent::NetPacket {
                multicast: false, ..
            } => "net_unicast",
            ProtocolEvent::NetPacket {
                multicast: true, ..
            } => "net_multicast",
        }
    }

    /// Renders the event as one JSON object (used by [`JsonLinesSink`];
    /// hand-rolled because the build environment has no serde). `host`
    /// is the emitting host's tracer tag.
    pub fn to_json(&self, at_nanos: u64, host: HostId) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"at_ns\":{at_nanos},\"host\":{},\"event\":\"{}\"",
            host.raw(),
            self.key()
        );
        match self {
            ProtocolEvent::DataSent { seq, epoch } => {
                let _ = write!(s, ",\"seq\":{},\"epoch\":{}", seq.raw(), epoch.raw());
            }
            ProtocolEvent::HeartbeatSent { seq, hb_index } => {
                let _ = write!(s, ",\"seq\":{},\"hb_index\":{hb_index}", seq.raw());
            }
            ProtocolEvent::GapDetected { first, last } => {
                let _ = write!(s, ",\"first\":{},\"last\":{}", first.raw(), last.raw());
            }
            ProtocolEvent::NackSent {
                target,
                packets,
                first,
                last,
            } => {
                let _ = write!(
                    s,
                    ",\"target\":{},\"packets\":{packets},\"first\":{},\"last\":{}",
                    target.raw(),
                    first.raw(),
                    last.raw()
                );
            }
            ProtocolEvent::NackReceived { from, packets } => {
                let _ = write!(s, ",\"from\":{},\"packets\":{packets}", from.raw());
            }
            ProtocolEvent::RetransServed { seq, to, .. } => {
                let _ = write!(s, ",\"seq\":{},\"to\":{}", seq.raw(), to.raw());
            }
            ProtocolEvent::RecoveryAbandoned { seq } | ProtocolEvent::PacketLogged { seq } => {
                let _ = write!(s, ",\"seq\":{}", seq.raw());
            }
            ProtocolEvent::RepairReceived { seq, from, kind } => {
                let _ = write!(
                    s,
                    ",\"seq\":{},\"from\":{},\"kind\":\"{kind}\"",
                    seq.raw(),
                    from.raw()
                );
            }
            ProtocolEvent::RepairDuplicate { seq, from } => {
                let _ = write!(s, ",\"seq\":{},\"from\":{}", seq.raw(), from.raw());
            }
            ProtocolEvent::RoleAnnounced { role } => {
                let _ = write!(s, ",\"role\":\"{role}\"");
            }
            ProtocolEvent::Remulticast { seq, missing } => {
                let _ = write!(s, ",\"seq\":{},\"missing\":{missing}", seq.raw());
            }
            ProtocolEvent::AckerSelected { epoch, p_ack } => {
                let _ = write!(s, ",\"epoch\":{},\"p_ack\":{p_ack}", epoch.raw());
            }
            ProtocolEvent::AckerVolunteered { epoch } => {
                let _ = write!(s, ",\"epoch\":{}", epoch.raw());
            }
            ProtocolEvent::EpochActive { epoch, ackers } => {
                let _ = write!(s, ",\"epoch\":{},\"ackers\":{ackers}", epoch.raw());
            }
            ProtocolEvent::Settled { seq, .. } => {
                let _ = write!(s, ",\"seq\":{}", seq.raw());
            }
            ProtocolEvent::TWaitUpdated { t_wait_nanos } => {
                let _ = write!(s, ",\"t_wait_ns\":{t_wait_nanos}");
            }
            ProtocolEvent::CongestionSuspected { streak } => {
                let _ = write!(s, ",\"streak\":{streak}");
            }
            ProtocolEvent::Recovered { seq, latency_nanos } => {
                let _ = write!(s, ",\"seq\":{},\"latency_ns\":{latency_nanos}", seq.raw());
            }
            ProtocolEvent::FreshnessLost | ProtocolEvent::FreshnessRestored => {}
            ProtocolEvent::BufferReleased { up_to } => {
                let _ = write!(s, ",\"up_to\":{}", up_to.raw());
            }
            ProtocolEvent::PrimaryUnresponsive { primary } => {
                let _ = write!(s, ",\"primary\":{}", primary.raw());
            }
            ProtocolEvent::FailoverPromoted { new_primary } => {
                let _ = write!(s, ",\"new_primary\":{}", new_primary.raw());
            }
            ProtocolEvent::TermElected { term, leader } => {
                let _ = write!(s, ",\"term\":{term},\"leader\":{}", leader.raw());
            }
            ProtocolEvent::StaleTermFenced { from, term } => {
                let _ = write!(s, ",\"from\":{},\"term\":{term}", from.raw());
            }
            ProtocolEvent::AuthorityServe { seq, term } => {
                let _ = write!(s, ",\"seq\":{},\"term\":{term}", seq.raw());
            }
            ProtocolEvent::NetPacket { kind, copies, .. } => {
                let _ = write!(s, ",\"kind\":\"{kind}\",\"copies\":{copies}");
            }
        }
        s.push('}');
        s
    }
}

/// Consumes protocol events. Implementations must tolerate concurrent
/// calls (`&self`); aggregate internally with atomics or a mutex.
pub trait TraceSink: Send + Sync {
    /// Records one event at `at_nanos` on the emitting clock. `host` is
    /// the emitting host's tracer tag ([`Tracer::UNTAGGED`] when the
    /// tracer was never given a host).
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent);
}

/// The handle protocol machines hold.
///
/// Cloning is cheap (an `Arc` bump or nothing). The default is
/// [`disabled`](Tracer::disabled): one `Option` test per emission site
/// and the event closure is never even invoked. A tracer carries the
/// [`HostId`] of the machine it is attached to (see
/// [`with_host`](Tracer::with_host)) so every record is correlatable.
#[derive(Clone)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
    host: HostId,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("host", &self.host)
            .finish()
    }
}

impl Tracer {
    /// The host tag of a tracer that was never assigned one.
    pub const UNTAGGED: HostId = HostId(u64::MAX);

    /// A tracer that drops everything without constructing events.
    pub const fn disabled() -> Self {
        Tracer {
            sink: None,
            host: Tracer::UNTAGGED,
        }
    }

    /// A tracer feeding `sink`, not yet tagged with a host.
    pub fn to(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            sink: Some(sink),
            host: Tracer::UNTAGGED,
        }
    }

    /// The same tracer tagged as emitting from `host`. Machines call
    /// this in `set_tracer` with their configured host id.
    pub fn with_host(mut self, host: HostId) -> Self {
        self.host = host;
        self
    }

    /// The host tag records are attributed to.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The sink this tracer feeds, if any — lets a harness re-route an
    /// already-built tracer through a wrapper sink (e.g. the sim world's
    /// deterministic trace multiplexer).
    pub fn sink(&self) -> Option<Arc<dyn TraceSink>> {
        self.sink.clone()
    }

    /// `true` if events reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `make` — only called when a sink is
    /// attached, so disabled tracing never pays for event construction.
    #[inline]
    pub fn emit(&self, at_nanos: u64, make: impl FnOnce() -> ProtocolEvent) {
        if let Some(sink) = &self.sink {
            sink.record(at_nanos, self.host, &make());
        }
    }

    /// Like [`emit`](Tracer::emit) but attributes the record to `host`
    /// instead of the tracer's tag — for shared tracers (the sim world)
    /// emitting on behalf of many hosts.
    #[inline]
    pub fn emit_from(&self, at_nanos: u64, host: HostId, make: impl FnOnce() -> ProtocolEvent) {
        if let Some(sink) = &self.sink {
            sink.record(at_nanos, host, &make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        let mut built = false;
        t.emit(0, || {
            built = true;
            ProtocolEvent::FreshnessLost
        });
        assert!(!built);
        assert!(!t.is_enabled());
    }

    #[test]
    fn keys_distinguish_repair_paths_and_settlement_outcomes() {
        assert_eq!(
            ProtocolEvent::RetransServed {
                seq: Seq(1),
                multicast: false,
                to: HostId(4),
            }
            .key(),
            "retrans_served_unicast"
        );
        assert_eq!(
            ProtocolEvent::RetransServed {
                seq: Seq(1),
                multicast: true,
                to: HostId(4),
            }
            .key(),
            "retrans_served_multicast"
        );
        assert_eq!(
            ProtocolEvent::Settled {
                seq: Seq(1),
                complete: true
            }
            .key(),
            "settled_complete"
        );
        assert_eq!(
            ProtocolEvent::Settled {
                seq: Seq(1),
                complete: false
            }
            .key(),
            "settled_incomplete"
        );
    }

    #[test]
    fn json_lines_are_well_formed() {
        let line = ProtocolEvent::Recovered {
            seq: Seq(7),
            latency_nanos: 42,
        }
        .to_json(1000, HostId(3));
        assert_eq!(
            line,
            "{\"at_ns\":1000,\"host\":3,\"event\":\"recovered\",\"seq\":7,\"latency_ns\":42}"
        );
        let line = ProtocolEvent::NetPacket {
            kind: "data",
            multicast: true,
            copies: 9,
        }
        .to_json(5, HostId(1));
        assert_eq!(
            line,
            "{\"at_ns\":5,\"host\":1,\"event\":\"net_multicast\",\"kind\":\"data\",\"copies\":9}"
        );
        let line = ProtocolEvent::RepairReceived {
            seq: Seq(4),
            from: HostId(200),
            kind: "retrans",
        }
        .to_json(7, HostId(400));
        assert_eq!(
            line,
            "{\"at_ns\":7,\"host\":400,\"event\":\"repair_received\",\"seq\":4,\"from\":200,\"kind\":\"retrans\"}"
        );
    }

    #[test]
    fn tracer_tags_records_with_its_host() {
        let sink = Arc::new(crate::CollectorSink::default());
        let t = Tracer::to(sink.clone()).with_host(HostId(42));
        t.emit(10, || ProtocolEvent::FreshnessLost);
        t.emit_from(11, HostId(7), || ProtocolEvent::FreshnessRestored);
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].host, HostId(42));
        assert_eq!(recs[1].host, HostId(7));
        assert_eq!(Tracer::to(sink).host(), Tracer::UNTAGGED);
    }
}
