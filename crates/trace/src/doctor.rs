//! The live doctor: incremental streaming forensics plus a hand-rolled
//! HTTP admin surface.
//!
//! The batch `trace_doctor` replay answers "what went wrong" after the
//! run; a million-receiver deployment needs to know *while it is
//! happening*. This module runs the streaming correlator
//! ([`OnlineAnalyzer`]) as a long-lived sidecar next to live endpoint
//! threads and turns its one-shot `finish()` into a stream of
//! **incremental reports**:
//!
//! * [`DoctorSink`] is the non-blocking [`TraceSink`] the endpoints
//!   write into: a bounded MPSC channel fed with `try_send`. When the
//!   doctor falls behind, events are **dropped and counted, never
//!   queued against the recv loop** — observability must not
//!   back-pressure the protocol.
//! * [`DoctorSidecar`] owns the analyzer on its own thread, drains the
//!   channel, and every tick emits a [`ReportDelta`]: the diff of the
//!   analyzer's *committed basis* ([`ReportBasis`]) since the previous
//!   tick — new anomalies, stage-histogram count deltas, repair-source
//!   deltas — plus point-in-time gauges (live timelines, resident
//!   bytes, channel drops).
//! * [`AdminServer`] exposes it over HTTP/1.0 on a plain
//!   `TcpListener` (the build image cannot reach crates.io, so no
//!   hyper/axum — one thread, request-line routing, JSON/text bodies):
//!   `GET /stats`, `/timelines/live`, `/anomalies/tail?n=`,
//!   `/deltas/last`, `/mem` and `/healthz` (non-200 while the rolling
//!   anomaly window holds unrecovered gaps or stalled settlements).
//!
//! **Delta algebra.** The committed basis is coordinate-wise monotone
//! over the stream: `finish()` only ever *adds* the still-open
//! timelines (as unrecovered gaps) and the end-of-stream detector
//! anomalies on top of it — it never rewrites a stage histogram, a
//! repair-source count, or an already-committed anomaly. Two pinned
//! consequences, tested here and in the bench property suite:
//!
//! 1. committed anomalies are always a *prefix* of the final report's
//!    anomaly vector, so "new since last tick" is a simple suffix;
//! 2. the fold of all deltas (including the terminal one emitted at
//!    [`DoctorSidecar::finish`]) equals the one-shot batch `analyze`
//!    report field-for-field on a quiescent, time-ordered capture.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lbrm_wire::HostId;

use crate::analyze::{Anomaly, RecoveryReport};
use crate::online::{LiveGap, OnlineAnalyzer, OnlineConfig};
use crate::{MetricsRegistry, ProtocolEvent, TraceSink};

/// Stage labels, in the order [`ReportBasis::stage_counts`] uses.
pub const STAGE_LABELS: [&str; 5] = ["detection", "request", "serve", "return", "total"];

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn anomaly_json(a: &Anomaly) -> String {
    format!(
        "{{\"kind\":\"{}\",\"detail\":\"{}\"}}",
        a.kind(),
        json_escape(&a.describe())
    )
}

// ---------------------------------------------------------------------
// Delta algebra
// ---------------------------------------------------------------------

/// The committed, coordinate-wise monotone slice of an analysis — the
/// coordinates a later record (or `finish()`) can only ever increase or
/// append to. Point-in-time gauges (live timelines, resident bytes)
/// and environment-dependent peaks are deliberately *not* part of the
/// basis: they do not fold.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportBasis {
    /// Timelines that closed in recovery.
    pub recovered: u64,
    /// Timelines the receiver abandoned.
    pub abandoned: u64,
    /// Timelines closed as unrecovered (horizon age-outs mid-stream;
    /// plus everything still open once `finish()` runs).
    pub unrecovered: u64,
    /// Recovered timelines whose stages telescope exactly.
    pub telescoping: u64,
    /// Redundant repair copies observed.
    pub duplicate_repairs: u64,
    /// Highest per-sequence NACK fan-in at the primary so far.
    pub max_nack_fan_in: u64,
    /// `GapDetected` spans truncated by the span cap.
    pub truncated_gap_spans: u64,
    /// Per-stage histogram sample counts, [`STAGE_LABELS`] order.
    pub stage_counts: [u64; 5],
    /// Per-stage histogram maxima in nanoseconds, [`STAGE_LABELS`]
    /// order.
    pub stage_max_nanos: [u64; 5],
    /// Recovered-timeline count per repair-source label.
    pub sources: BTreeMap<&'static str, u64>,
    /// Committed anomalies, in report order (always a prefix of the
    /// final report's anomaly vector).
    pub anomalies: Vec<Anomaly>,
    /// Open timelines force-evicted by the live-timeline cap.
    pub force_evicted: u64,
    /// Open timelines closed by the age-out horizon.
    pub aged_out: u64,
    /// Records that arrived below their predecessor's timestamp.
    pub out_of_order: u64,
}

impl ReportBasis {
    /// The basis of a finished [`RecoveryReport`] — what the fold of
    /// all deltas must equal once the terminal delta is included.
    pub fn of_report(r: &RecoveryReport) -> Self {
        ReportBasis {
            recovered: r.recovered as u64,
            abandoned: r.abandoned as u64,
            unrecovered: r.unrecovered as u64,
            telescoping: r.telescoping as u64,
            duplicate_repairs: r.duplicate_repairs,
            max_nack_fan_in: r.max_nack_fan_in,
            truncated_gap_spans: r.truncated_gap_spans,
            stage_counts: [
                r.detection.count() as u64,
                r.request.count() as u64,
                r.serve.count() as u64,
                r.return_leg.count() as u64,
                r.total.count() as u64,
            ],
            stage_max_nanos: [
                r.detection.max().as_nanos() as u64,
                r.request.max().as_nanos() as u64,
                r.serve.max().as_nanos() as u64,
                r.return_leg.max().as_nanos() as u64,
                r.total.max().as_nanos() as u64,
            ],
            sources: r.sources.clone(),
            anomalies: r.anomalies.clone(),
            force_evicted: r.stream.force_evicted,
            aged_out: r.stream.aged_out,
            out_of_order: r.stream.out_of_order,
        }
    }
}

/// One incremental report: the basis diff since the previous tick plus
/// point-in-time gauges. Counter fields are **deltas** (fold by sum),
/// `*_max*` fields are **running maxima** (fold by max), gauges fold by
/// last-write-wins.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDelta {
    /// Tick index, 0-based; each sidecar emits a strictly increasing
    /// sequence ending with the terminal delta.
    pub tick: u64,
    /// `true` for the delta emitted by `finish()` — it carries the
    /// still-open timelines and end-of-stream detector anomalies.
    pub terminal: bool,
    /// Records consumed since the previous tick.
    pub records: u64,
    /// Newest stream timestamp seen (gauge, nanoseconds).
    pub stream_end_nanos: u64,
    /// Newly recovered timelines.
    pub recovered: u64,
    /// Newly abandoned timelines.
    pub abandoned: u64,
    /// Newly unrecovered timelines.
    pub unrecovered: u64,
    /// Newly telescoping recoveries.
    pub telescoping: u64,
    /// New redundant repair copies.
    pub duplicate_repairs: u64,
    /// Newly truncated gap spans.
    pub truncated_gap_spans: u64,
    /// Newly force-evicted open timelines.
    pub force_evicted: u64,
    /// Newly aged-out open timelines.
    pub aged_out: u64,
    /// New out-of-order records.
    pub out_of_order: u64,
    /// Running maximum NACK fan-in (fold by max).
    pub max_nack_fan_in: u64,
    /// Per-stage new sample counts, [`STAGE_LABELS`] order.
    pub stage_counts: [u64; 5],
    /// Per-stage running maxima in nanoseconds (fold by max).
    pub stage_max_nanos: [u64; 5],
    /// Repair-source deltas — only labels that grew this tick.
    pub sources: BTreeMap<&'static str, u64>,
    /// Anomalies committed since the previous tick, in report order.
    pub new_anomalies: Vec<Anomaly>,
    /// Currently open timelines (gauge; 0 in the terminal delta).
    pub live_timelines: u64,
    /// Approximate resident analyzer bytes (gauge; 0 in the terminal
    /// delta).
    pub resident_bytes: u64,
    /// Peak open timelines so far (fold by max).
    pub peak_live_timelines: u64,
    /// Peak resident bytes so far (fold by max).
    pub peak_resident_bytes: u64,
    /// Cumulative events dropped at the [`DoctorSink`] (gauge).
    pub dropped_events: u64,
}

impl ReportDelta {
    /// Flat JSON rendering (what `/deltas/last` serves).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        s.push_str(&format!(
            "\"tick\":{},\"terminal\":{},\"records\":{},\"stream_end_ns\":{}",
            self.tick, self.terminal, self.records, self.stream_end_nanos
        ));
        s.push_str(&format!(
            ",\"recovered\":{},\"abandoned\":{},\"unrecovered\":{},\"telescoping\":{}",
            self.recovered, self.abandoned, self.unrecovered, self.telescoping
        ));
        s.push_str(&format!(
            ",\"duplicate_repairs\":{},\"truncated_gap_spans\":{},\"force_evicted\":{},\"aged_out\":{},\"out_of_order\":{}",
            self.duplicate_repairs,
            self.truncated_gap_spans,
            self.force_evicted,
            self.aged_out,
            self.out_of_order
        ));
        s.push_str(&format!(",\"max_nack_fan_in\":{}", self.max_nack_fan_in));
        s.push_str(",\"stages\":{");
        for (i, label) in STAGE_LABELS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{label}\":{{\"count\":{},\"max_ns\":{}}}",
                self.stage_counts[i], self.stage_max_nanos[i]
            ));
        }
        s.push_str("},\"sources\":{");
        for (i, (k, v)) in self.sources.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"new_anomalies\":[");
        for (i, a) in self.new_anomalies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&anomaly_json(a));
        }
        s.push(']');
        s.push_str(&format!(
            ",\"live_timelines\":{},\"resident_bytes\":{},\"peak_live_timelines\":{},\"peak_resident_bytes\":{},\"dropped_events\":{}",
            self.live_timelines,
            self.resident_bytes,
            self.peak_live_timelines,
            self.peak_resident_bytes,
            self.dropped_events
        ));
        s.push('}');
        s
    }
}

/// Computes [`ReportDelta`]s between successive basis snapshots.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    prev: ReportBasis,
    prev_records: u64,
    ticks: u64,
}

struct TickGauges {
    live: u64,
    resident: u64,
    peak_live: u64,
    peak_bytes: u64,
    end_nanos: u64,
    dropped: u64,
}

impl DeltaTracker {
    /// A tracker with an empty previous basis.
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// Deltas emitted so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The most recent basis snapshot (what the next delta diffs
    /// against).
    pub fn basis(&self) -> &ReportBasis {
        &self.prev
    }

    /// Emits the delta between the previous tick and the analyzer's
    /// current committed basis.
    pub fn delta_from(&mut self, a: &OnlineAnalyzer, dropped: u64) -> ReportDelta {
        let cur = a.basis();
        let g = TickGauges {
            live: a.live_timelines() as u64,
            resident: a.approx_resident_bytes(),
            peak_live: a.peak_live_timelines(),
            peak_bytes: a.peak_resident_bytes(),
            end_nanos: a.end_nanos(),
            dropped,
        };
        self.advance(cur, a.records(), g, false)
    }

    /// Emits the terminal delta against a finished report: the
    /// still-open timelines (now unrecovered) and the end-of-stream
    /// detector anomalies.
    pub fn terminal(
        &mut self,
        report: &RecoveryReport,
        records: u64,
        end_nanos: u64,
        dropped: u64,
    ) -> ReportDelta {
        let cur = ReportBasis::of_report(report);
        let g = TickGauges {
            live: 0,
            resident: 0,
            peak_live: report.stream.peak_live_timelines,
            peak_bytes: report.stream.peak_resident_bytes,
            end_nanos,
            dropped,
        };
        self.advance(cur, records, g, true)
    }

    fn advance(
        &mut self,
        cur: ReportBasis,
        records: u64,
        g: TickGauges,
        terminal: bool,
    ) -> ReportDelta {
        let prev = &self.prev;
        let mut stage_counts = [0u64; 5];
        for (i, c) in stage_counts.iter_mut().enumerate() {
            *c = cur.stage_counts[i].saturating_sub(prev.stage_counts[i]);
        }
        let mut sources = BTreeMap::new();
        for (&k, &v) in &cur.sources {
            let d = v.saturating_sub(prev.sources.get(k).copied().unwrap_or(0));
            if d > 0 {
                sources.insert(k, d);
            }
        }
        // Committed anomalies are a prefix of the current vector; the
        // suffix is what's new. `get` guards the (impossible by
        // contract) shrink case rather than panicking in a monitor.
        let new_anomalies = cur
            .anomalies
            .get(prev.anomalies.len()..)
            .unwrap_or(&[])
            .to_vec();
        let delta = ReportDelta {
            tick: self.ticks,
            terminal,
            records: records.saturating_sub(self.prev_records),
            stream_end_nanos: g.end_nanos,
            recovered: cur.recovered.saturating_sub(prev.recovered),
            abandoned: cur.abandoned.saturating_sub(prev.abandoned),
            unrecovered: cur.unrecovered.saturating_sub(prev.unrecovered),
            telescoping: cur.telescoping.saturating_sub(prev.telescoping),
            duplicate_repairs: cur.duplicate_repairs.saturating_sub(prev.duplicate_repairs),
            truncated_gap_spans: cur
                .truncated_gap_spans
                .saturating_sub(prev.truncated_gap_spans),
            force_evicted: cur.force_evicted.saturating_sub(prev.force_evicted),
            aged_out: cur.aged_out.saturating_sub(prev.aged_out),
            out_of_order: cur.out_of_order.saturating_sub(prev.out_of_order),
            max_nack_fan_in: cur.max_nack_fan_in,
            stage_counts,
            stage_max_nanos: cur.stage_max_nanos,
            sources,
            new_anomalies,
            live_timelines: g.live,
            resident_bytes: g.resident,
            peak_live_timelines: g.peak_live,
            peak_resident_bytes: g.peak_bytes,
            dropped_events: g.dropped,
        };
        self.prev = cur;
        self.prev_records = records;
        self.ticks += 1;
        delta
    }
}

/// The running fold of a delta sequence. After the terminal delta,
/// [`DeltaFold::basis`] equals [`ReportBasis::of_report`] of the final
/// report — the pinned delta-algebra contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaFold {
    /// Folded basis (sums of deltas, maxes of running maxima).
    pub basis: ReportBasis,
    /// Total records across the folded deltas.
    pub records: u64,
    /// Deltas folded in.
    pub deltas: u64,
    /// Latest cumulative drop-counter gauge.
    pub dropped_events: u64,
    /// Peak open timelines across the folded deltas.
    pub peak_live_timelines: u64,
    /// Peak resident bytes across the folded deltas.
    pub peak_resident_bytes: u64,
}

impl DeltaFold {
    /// Folds one more delta in (deltas must be applied in tick order).
    pub fn push(&mut self, d: &ReportDelta) {
        let b = &mut self.basis;
        b.recovered += d.recovered;
        b.abandoned += d.abandoned;
        b.unrecovered += d.unrecovered;
        b.telescoping += d.telescoping;
        b.duplicate_repairs += d.duplicate_repairs;
        b.max_nack_fan_in = b.max_nack_fan_in.max(d.max_nack_fan_in);
        b.truncated_gap_spans += d.truncated_gap_spans;
        for i in 0..STAGE_LABELS.len() {
            b.stage_counts[i] += d.stage_counts[i];
            b.stage_max_nanos[i] = b.stage_max_nanos[i].max(d.stage_max_nanos[i]);
        }
        for (&k, &v) in &d.sources {
            *b.sources.entry(k).or_insert(0) += v;
        }
        b.anomalies.extend(d.new_anomalies.iter().cloned());
        b.force_evicted += d.force_evicted;
        b.aged_out += d.aged_out;
        b.out_of_order += d.out_of_order;
        self.records += d.records;
        self.deltas += 1;
        self.dropped_events = d.dropped_events;
        self.peak_live_timelines = self.peak_live_timelines.max(d.peak_live_timelines);
        self.peak_resident_bytes = self.peak_resident_bytes.max(d.peak_resident_bytes);
    }
}

/// Folds a delta sequence (in tick order) into a [`DeltaFold`].
pub fn fold_deltas<'a>(deltas: impl IntoIterator<Item = &'a ReportDelta>) -> DeltaFold {
    let mut fold = DeltaFold::default();
    for d in deltas {
        fold.push(d);
    }
    fold
}

// ---------------------------------------------------------------------
// The non-blocking sink
// ---------------------------------------------------------------------

type DoctorMsg = (u64, HostId, ProtocolEvent);

/// The [`TraceSink`] live endpoints write into: `try_send` onto a
/// bounded channel. A full channel (or a finished doctor) **drops the
/// event and counts it** — the recv loop never blocks on forensics.
#[derive(Debug)]
pub struct DoctorSink {
    tx: SyncSender<DoctorMsg>,
    dropped: AtomicU64,
    closed: AtomicBool,
}

impl DoctorSink {
    fn new(tx: SyncSender<DoctorMsg>) -> Self {
        DoctorSink {
            tx,
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Events dropped because the channel was full (or the doctor
    /// already finished).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
    }
}

impl TraceSink for DoctorSink {
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        if self.closed.load(Ordering::Relaxed) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match self.tx.try_send((at_nanos, host, event.clone())) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The sidecar
// ---------------------------------------------------------------------

/// Tunables for the [`DoctorSidecar`].
#[derive(Debug, Clone)]
pub struct DoctorConfig {
    /// Streaming-analyzer tunables (cap/horizon/reservoirs).
    pub online: OnlineConfig,
    /// Delta cadence.
    pub tick: Duration,
    /// Bounded event-channel capacity; overflow drops (counted).
    pub channel_capacity: usize,
    /// Rolling anomaly window, in ticks, for `/healthz`.
    pub window_ticks: u64,
    /// Grace before a still-open gap in the provisional snapshot makes
    /// `/healthz` unhealthy (stream-time nanoseconds since detection).
    pub unrecovered_grace_nanos: u64,
    /// Oldest live timelines listed by `/timelines/live`.
    pub live_sample: usize,
    /// Retain every emitted delta for [`DoctorSidecar::finish`] (tests
    /// and audits; a long-lived monitor should leave this off).
    pub keep_deltas: bool,
}

impl Default for DoctorConfig {
    fn default() -> Self {
        DoctorConfig {
            online: OnlineConfig::default(),
            tick: Duration::from_millis(200),
            channel_capacity: 8192,
            window_ticks: 25,
            unrecovered_grace_nanos: 2_000_000_000,
            live_sample: 32,
            keep_deltas: false,
        }
    }
}

/// `/healthz` verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// `false` while the rolling window holds unrecovered gaps or the
    /// provisional snapshot shows overdue gaps / stalled settlements.
    pub healthy: bool,
    /// Human-readable reasons when unhealthy.
    pub reasons: Vec<String>,
}

impl Default for Health {
    fn default() -> Self {
        Health {
            healthy: true,
            reasons: Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct SharedState {
    ticks: u64,
    finished: bool,
    records: u64,
    end_nanos: u64,
    last_delta: Option<ReportDelta>,
    fold: DeltaFold,
    live_count: u64,
    live_oldest: Vec<LiveGap>,
    resident_bytes: u64,
    peak_live: u64,
    peak_bytes: u64,
    snapshot_anomalies: Vec<Anomaly>,
    recent: VecDeque<(u64, Anomaly)>,
    health: Health,
    deltas: Vec<ReportDelta>,
    final_report: Option<RecoveryReport>,
}

type Probe = Box<dyn Fn() + Send>;

struct Inner {
    cfg: DoctorConfig,
    started: Instant,
    sink: Arc<DoctorSink>,
    state: Mutex<SharedState>,
    registries: Mutex<Vec<(String, Arc<MetricsRegistry>)>>,
    probes: Mutex<Vec<Probe>>,
}

/// A cloneable read handle onto the sidecar's published state — what
/// the [`AdminServer`] routes answer from.
#[derive(Clone)]
pub struct DoctorHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for DoctorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoctorHandle").finish()
    }
}

/// The live doctor: owns an [`OnlineAnalyzer`] on its own thread,
/// drains the [`DoctorSink`] channel, ticks out [`ReportDelta`]s, and
/// publishes rolling state for the admin surface.
#[derive(Debug)]
pub struct DoctorSidecar {
    inner: Arc<Inner>,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoctorInner").finish()
    }
}

/// Everything a finished sidecar hands back.
#[derive(Debug)]
pub struct DoctorFinish {
    /// The final one-shot report (identical to what a batch replay of
    /// the same stream would produce, per the fidelity contract).
    pub report: RecoveryReport,
    /// Every emitted delta, terminal included (empty unless
    /// [`DoctorConfig::keep_deltas`]).
    pub deltas: Vec<ReportDelta>,
    /// The running fold of all emitted deltas.
    pub fold: DeltaFold,
    /// Records the analyzer consumed.
    pub records: u64,
    /// Events dropped at the sink.
    pub dropped_events: u64,
}

impl DoctorSidecar {
    /// Spawns the sidecar thread.
    pub fn spawn(cfg: DoctorConfig) -> DoctorSidecar {
        let (tx, rx) = mpsc::sync_channel(cfg.channel_capacity.max(1));
        let sink = Arc::new(DoctorSink::new(tx));
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            started: Instant::now(),
            sink,
            state: Mutex::new(SharedState::default()),
            registries: Mutex::new(Vec::new()),
            probes: Mutex::new(Vec::new()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let inner = inner.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("lbrm-doctor".into())
                .spawn(move || worker_loop(inner, rx, stop))
                .expect("spawn doctor thread")
        };
        DoctorSidecar {
            inner,
            stop,
            worker: Some(worker),
        }
    }

    /// The non-blocking sink to attach to endpoint tracers.
    pub fn sink(&self) -> Arc<DoctorSink> {
        self.inner.sink.clone()
    }

    /// A read handle for the admin surface (or direct inspection).
    pub fn handle(&self) -> DoctorHandle {
        DoctorHandle {
            inner: self.inner.clone(),
        }
    }

    /// Registers a [`MetricsRegistry`] under `name`; its counters and
    /// gauges appear in `/stats` under `"net"`.
    pub fn register_registry(&self, name: &str, registry: Arc<MetricsRegistry>) {
        self.inner
            .registries
            .lock()
            .unwrap()
            .push((name.to_owned(), registry));
    }

    /// Registers a probe run at every tick *before* the delta is
    /// computed — e.g. copying a transport's `RecvCounters` into a
    /// registered registry's gauges.
    pub fn register_probe(&self, probe: impl Fn() + Send + 'static) {
        self.inner.probes.lock().unwrap().push(Box::new(probe));
    }

    /// Events dropped at the sink so far.
    pub fn dropped(&self) -> u64 {
        self.inner.sink.dropped()
    }

    /// Ticks emitted so far.
    pub fn ticks(&self) -> u64 {
        self.inner.state.lock().unwrap().ticks
    }

    /// Stops the doctor: closes the sink, drains the channel, emits the
    /// terminal delta, and returns the final report plus the delta
    /// audit trail.
    pub fn finish(mut self) -> DoctorFinish {
        self.shutdown();
        let mut st = self.inner.state.lock().unwrap();
        DoctorFinish {
            report: st.final_report.take().expect("worker published the report"),
            deltas: std::mem::take(&mut st.deltas),
            fold: st.fold.clone(),
            records: st.records,
            dropped_events: self.inner.sink.dropped(),
        }
    }

    fn shutdown(&mut self) {
        if let Some(worker) = self.worker.take() {
            self.inner.sink.close();
            self.stop.store(true, Ordering::Relaxed);
            worker.join().expect("doctor thread panicked");
        }
    }
}

impl Drop for DoctorSidecar {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            self.inner.sink.close();
            self.stop.store(true, Ordering::Relaxed);
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>, rx: Receiver<DoctorMsg>, stop: Arc<AtomicBool>) {
    let mut analyzer = OnlineAnalyzer::new(inner.cfg.online.clone());
    let mut tracker = DeltaTracker::new();
    let tick = inner.cfg.tick.max(Duration::from_millis(1));
    let mut next_tick = Instant::now() + tick;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if Instant::now() >= next_tick {
            run_tick(&inner, &mut analyzer, &mut tracker);
            next_tick = Instant::now() + tick;
        }
        // Cap the wait so a stop request is honored promptly even with
        // a long tick.
        let wait = next_tick
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok((at, host, ev)) => {
                analyzer.push(at, host, &ev);
                // Drain a burst without a clock check per event.
                for _ in 0..512 {
                    match rx.try_recv() {
                        Ok((at, host, ev)) => analyzer.push(at, host, &ev),
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // The sink is closed: drain what is already queued, then finalize.
    while let Ok((at, host, ev)) = rx.try_recv() {
        analyzer.push(at, host, &ev);
    }
    let records = analyzer.records();
    let end_nanos = analyzer.end_nanos();
    let report = analyzer.finish();
    let delta = tracker.terminal(&report, records, end_nanos, inner.sink.dropped());
    let mut st = inner.state.lock().unwrap();
    let tick_idx = delta.tick;
    for a in &delta.new_anomalies {
        st.recent.push_back((tick_idx, a.clone()));
    }
    st.fold.push(&delta);
    if inner.cfg.keep_deltas {
        st.deltas.push(delta.clone());
    }
    st.ticks = tick_idx + 1;
    st.records = records;
    st.end_nanos = end_nanos;
    st.live_count = 0;
    st.live_oldest.clear();
    st.resident_bytes = 0;
    st.peak_live = report.stream.peak_live_timelines;
    st.peak_bytes = report.stream.peak_resident_bytes;
    st.snapshot_anomalies = report.anomalies.clone();
    st.health = compute_health(
        &inner.cfg,
        &st.fold,
        &st.recent,
        &st.snapshot_anomalies,
        end_nanos,
        tick_idx,
    );
    st.last_delta = Some(delta);
    st.final_report = Some(report);
    st.finished = true;
}

fn run_tick(inner: &Inner, analyzer: &mut OnlineAnalyzer, tracker: &mut DeltaTracker) {
    for p in inner.probes.lock().unwrap().iter() {
        p();
    }
    let delta = tracker.delta_from(analyzer, inner.sink.dropped());
    // Provisional snapshot: still-open timelines show up as unrecovered
    // gaps here (display + health only — they never enter a delta until
    // they actually commit).
    let snapshot = analyzer.clone().finish();
    let live_oldest = analyzer.live_oldest(inner.cfg.live_sample);
    let live_count = analyzer.live_timelines() as u64;
    let resident = analyzer.approx_resident_bytes();
    let end_nanos = analyzer.end_nanos();
    let records = analyzer.records();

    let mut st = inner.state.lock().unwrap();
    let tick_idx = delta.tick;
    for a in &delta.new_anomalies {
        st.recent.push_back((tick_idx, a.clone()));
    }
    let window = inner.cfg.window_ticks;
    while st
        .recent
        .front()
        .is_some_and(|(t, _)| tick_idx.saturating_sub(*t) >= window)
    {
        st.recent.pop_front();
    }
    st.fold.push(&delta);
    if inner.cfg.keep_deltas {
        st.deltas.push(delta.clone());
    }
    st.ticks = tick_idx + 1;
    st.records = records;
    st.end_nanos = end_nanos;
    st.live_count = live_count;
    st.live_oldest = live_oldest;
    st.resident_bytes = resident;
    st.peak_live = analyzer.peak_live_timelines();
    st.peak_bytes = analyzer.peak_resident_bytes();
    st.snapshot_anomalies = snapshot.anomalies;
    st.health = compute_health(
        &inner.cfg,
        &st.fold,
        &st.recent,
        &st.snapshot_anomalies,
        end_nanos,
        tick_idx,
    );
    st.last_delta = Some(delta);
}

fn compute_health(
    cfg: &DoctorConfig,
    fold: &DeltaFold,
    recent: &VecDeque<(u64, Anomaly)>,
    snapshot_anomalies: &[Anomaly],
    end_nanos: u64,
    _tick: u64,
) -> Health {
    let mut reasons = Vec::new();
    let recent_gaps = recent
        .iter()
        .filter(|(_, a)| matches!(a, Anomaly::UnrecoveredGap { .. }))
        .count();
    if recent_gaps > 0 {
        reasons.push(format!(
            "{recent_gaps} unrecovered gap(s) committed in the last {} tick(s)",
            cfg.window_ticks
        ));
    }
    let recent_stalls = recent
        .iter()
        .filter(|(_, a)| matches!(a, Anomaly::StalledSettlement { .. }))
        .count();
    if recent_stalls > 0 {
        reasons.push(format!(
            "{recent_stalls} stalled settlement(s) committed in the last {} tick(s)",
            cfg.window_ticks
        ));
    }
    // Provisional-only anomalies (the suffix past the committed prefix)
    // come from still-open timelines and the end-of-stream detectors
    // run on the snapshot clone.
    let committed = fold.basis.anomalies.len();
    let mut overdue_gaps = 0usize;
    let mut provisional_stalls = 0usize;
    for a in snapshot_anomalies.get(committed..).unwrap_or(&[]) {
        match a {
            Anomaly::UnrecoveredGap {
                detected_at_nanos, ..
            } if detected_at_nanos.saturating_add(cfg.unrecovered_grace_nanos) < end_nanos => {
                overdue_gaps += 1;
            }
            Anomaly::StalledSettlement { .. } => provisional_stalls += 1,
            _ => {}
        }
    }
    if overdue_gaps > 0 {
        reasons.push(format!(
            "{overdue_gaps} open gap(s) older than the {:.1}s grace",
            cfg.unrecovered_grace_nanos as f64 / 1e9
        ));
    }
    if provisional_stalls > 0 {
        reasons.push(format!(
            "{provisional_stalls} settlement(s) currently stalled"
        ));
    }
    Health {
        healthy: reasons.is_empty(),
        reasons,
    }
}

// ---------------------------------------------------------------------
// Route bodies (shared by the admin server and direct inspection)
// ---------------------------------------------------------------------

impl DoctorHandle {
    /// Current `/healthz` verdict.
    pub fn health(&self) -> Health {
        self.inner.state.lock().unwrap().health.clone()
    }

    /// The most recent delta, if any tick has fired yet.
    pub fn last_delta(&self) -> Option<ReportDelta> {
        self.inner.state.lock().unwrap().last_delta.clone()
    }

    /// The running fold of every delta emitted so far.
    pub fn fold(&self) -> DeltaFold {
        self.inner.state.lock().unwrap().fold.clone()
    }

    /// Ticks emitted so far.
    pub fn ticks(&self) -> u64 {
        self.inner.state.lock().unwrap().ticks
    }

    /// Cumulative sink drop counter.
    pub fn dropped(&self) -> u64 {
        self.inner.sink.dropped()
    }

    /// `GET /stats`: committed fold counters, gauges, health, and every
    /// registered [`MetricsRegistry`]'s counters and gauges.
    pub fn stats_json(&self) -> String {
        // Refresh probe-fed gauges so a scrape never reads stale
        // transport counters (ticks also run them).
        for p in self.inner.probes.lock().unwrap().iter() {
            p();
        }
        let st = self.inner.state.lock().unwrap();
        let b = &st.fold.basis;
        let mut s = String::with_capacity(1024);
        s.push('{');
        s.push_str(&format!(
            "\"uptime_ms\":{},\"ticks\":{},\"finished\":{},\"records\":{},\"dropped_events\":{}",
            self.inner.started.elapsed().as_millis(),
            st.ticks,
            st.finished,
            st.records,
            self.inner.sink.dropped()
        ));
        s.push_str(&format!(
            ",\"stream_end_ns\":{},\"live_timelines\":{},\"peak_live_timelines\":{},\"resident_bytes\":{},\"peak_resident_bytes\":{}",
            st.end_nanos, st.live_count, st.peak_live, st.resident_bytes, st.peak_bytes
        ));
        s.push_str(&format!(
            ",\"recovered\":{},\"abandoned\":{},\"unrecovered\":{},\"duplicate_repairs\":{},\"max_nack_fan_in\":{},\"anomalies\":{},\"recent_anomalies\":{}",
            b.recovered,
            b.abandoned,
            b.unrecovered,
            b.duplicate_repairs,
            b.max_nack_fan_in,
            b.anomalies.len(),
            st.recent.len()
        ));
        s.push_str(&format!(",\"healthy\":{}", st.health.healthy));
        s.push_str(",\"net\":{");
        let regs = self.inner.registries.lock().unwrap();
        for (i, (name, reg)) in regs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{{\"counters\":{{", json_escape(name)));
            for (j, (k, v)) in reg.counters().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{k}\":{v}"));
            }
            s.push_str("},\"gauges\":{");
            for (j, (k, v)) in reg.gauges().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{v}", json_escape(k)));
            }
            s.push_str("}}");
        }
        s.push_str("}}");
        s
    }

    /// `GET /timelines/live`: count plus the oldest open recoveries.
    pub fn timelines_json(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"count\":{},\"listed\":{},\"oldest\":[",
            st.live_count,
            st.live_oldest.len()
        ));
        for (i, g) in st.live_oldest.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"host\":{},\"seq\":{},\"detected_at_ns\":{},\"age_ns\":{},\"nacks_sent\":{},\"served\":{},\"repaired\":{}}}",
                g.host.raw(),
                g.seq.raw(),
                g.detected_at_nanos,
                st.end_nanos.saturating_sub(g.detected_at_nanos),
                g.nacks_sent,
                g.served,
                g.repaired
            ));
        }
        s.push_str("]}");
        s
    }

    /// `GET /anomalies/tail?n=`: the last `n` anomalies of the current
    /// provisional snapshot, in batch-report order.
    pub fn anomalies_tail_json(&self, n: usize) -> String {
        let st = self.inner.state.lock().unwrap();
        let all = &st.snapshot_anomalies;
        let start = all.len().saturating_sub(n);
        let mut s = String::with_capacity(256);
        s.push_str(&format!("{{\"total\":{},\"tail\":[", all.len()));
        for (i, a) in all[start..].iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&anomaly_json(a));
        }
        s.push_str("]}");
        s
    }

    /// `GET /deltas/last`: the most recent delta, or `null` before the
    /// first tick.
    pub fn deltas_last_json(&self) -> String {
        match self.last_delta() {
            Some(d) => d.to_json(),
            None => "null".into(),
        }
    }

    /// `GET /mem`: resident-state gauges against the configured
    /// budgets.
    pub fn mem_json(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let online = &self.inner.cfg.online;
        let cap = match online.max_live_timelines {
            Some(c) => c.to_string(),
            None => "null".into(),
        };
        let horizon = match online.horizon_nanos {
            Some(h) => h.to_string(),
            None => "null".into(),
        };
        format!(
            "{{\"resident_bytes\":{},\"peak_resident_bytes\":{},\"live_timelines\":{},\"peak_live_timelines\":{},\"max_live_timelines\":{cap},\"horizon_ns\":{horizon},\"channel_capacity\":{},\"dropped_events\":{}}}",
            st.resident_bytes,
            st.peak_bytes,
            st.live_count,
            st.peak_live,
            self.inner.cfg.channel_capacity,
            self.inner.sink.dropped()
        )
    }

    /// `GET /healthz` body and status: `(200, "ok")` or a 503 with
    /// reasons.
    pub fn healthz(&self) -> (u16, String) {
        let h = self.health();
        if h.healthy {
            (200, "ok\n".into())
        } else {
            let reasons: Vec<String> = h
                .reasons
                .iter()
                .map(|r| format!("\"{}\"", json_escape(r)))
                .collect();
            (
                503,
                format!("{{\"healthy\":false,\"reasons\":[{}]}}", reasons.join(",")),
            )
        }
    }
}

// ---------------------------------------------------------------------
// The admin server
// ---------------------------------------------------------------------

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

fn json_response(status: u16, body: String) -> Response {
    Response {
        status,
        content_type: "application/json",
        body,
    }
}

fn route(handle: &DoctorHandle, method: &str, path: &str, query: &str) -> Response {
    if method != "GET" {
        return json_response(405, "{\"error\":\"method not allowed\"}".into());
    }
    match path {
        "/stats" => json_response(200, handle.stats_json()),
        "/timelines/live" => json_response(200, handle.timelines_json()),
        "/anomalies/tail" => {
            let mut n = 16usize;
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                if k == "n" {
                    match v.parse::<usize>() {
                        Ok(parsed) => n = parsed,
                        Err(_) => {
                            return json_response(
                                400,
                                "{\"error\":\"n must be a non-negative integer\"}".into(),
                            );
                        }
                    }
                }
            }
            json_response(200, handle.anomalies_tail_json(n))
        }
        "/deltas/last" => json_response(200, handle.deltas_last_json()),
        "/mem" => json_response(200, handle.mem_json()),
        "/healthz" => {
            let (status, body) = handle.healthz();
            if status == 200 {
                Response {
                    status,
                    content_type: "text/plain",
                    body,
                }
            } else {
                json_response(status, body)
            }
        }
        _ => json_response(404, "{\"error\":\"not found\"}".into()),
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn serve_connection(stream: &mut TcpStream, handle: &DoctorHandle) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers (bounded) so well-behaved clients see the response.
    let mut header = String::new();
    for _ in 0..64 {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let resp = route(handle, method, path, query);
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// The hand-rolled HTTP/1.0 admin server: one thread, one connection at
/// a time, request-line + path routing over a [`DoctorHandle`].
#[derive(Debug)]
pub struct AdminServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds and starts serving. Pass `127.0.0.1:0` to let the OS pick
    /// a port (see [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, handle: DoctorHandle) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("lbrm-admin".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((mut conn, _)) => {
                                // One connection at a time; per-request
                                // I/O errors only drop that connection.
                                conn.set_nonblocking(false).ok();
                                let _ = serve_connection(&mut conn, &handle);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(20)),
                        }
                    }
                })
                .expect("spawn admin thread")
        };
        Ok(AdminServer {
            local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalyzeConfig, TraceRecord};
    use lbrm_wire::{EpochId, Seq};
    use std::io::Read as _;

    const SENDER: HostId = HostId(1);
    const PRIMARY: HostId = HostId(2);
    const RX: HostId = HostId(40);

    fn rec(at_ms: u64, host: HostId, event: ProtocolEvent) -> TraceRecord {
        TraceRecord {
            at_nanos: at_ms * 1_000_000,
            host,
            event,
        }
    }

    /// Every third packet lost and recovered; packet `lost_forever`
    /// (if within range) never recovers.
    fn stream(packets: u32, lost_forever: Option<u32>) -> Vec<TraceRecord> {
        let mut v = vec![
            rec(0, SENDER, ProtocolEvent::RoleAnnounced { role: "sender" }),
            rec(
                0,
                PRIMARY,
                ProtocolEvent::RoleAnnounced {
                    role: "logger_primary",
                },
            ),
            rec(0, RX, ProtocolEvent::RoleAnnounced { role: "receiver" }),
        ];
        for i in 1..=packets {
            let t = u64::from(i) * 100;
            v.push(rec(
                t,
                SENDER,
                ProtocolEvent::DataSent {
                    seq: Seq(i),
                    epoch: EpochId(0),
                },
            ));
            let lost = i % 3 == 0 || Some(i) == lost_forever;
            if lost {
                v.push(rec(
                    t + 10,
                    RX,
                    ProtocolEvent::GapDetected {
                        first: Seq(i),
                        last: Seq(i),
                    },
                ));
                v.push(rec(
                    t + 20,
                    RX,
                    ProtocolEvent::NackSent {
                        target: PRIMARY,
                        packets: 1,
                        first: Seq(i),
                        last: Seq(i),
                    },
                ));
                if Some(i) == lost_forever {
                    continue;
                }
                v.push(rec(
                    t + 30,
                    PRIMARY,
                    ProtocolEvent::RetransServed {
                        seq: Seq(i),
                        multicast: false,
                        to: RX,
                    },
                ));
                v.push(rec(
                    t + 40,
                    RX,
                    ProtocolEvent::RepairReceived {
                        seq: Seq(i),
                        from: PRIMARY,
                        kind: "retrans",
                    },
                ));
                v.push(rec(
                    t + 40,
                    RX,
                    ProtocolEvent::Recovered {
                        seq: Seq(i),
                        latency_nanos: 30 * 1_000_000,
                    },
                ));
            }
        }
        v
    }

    #[test]
    fn fold_of_deltas_plus_terminal_equals_batch() {
        let records = stream(30, Some(7));
        let cfg = AnalyzeConfig {
            h_max_nanos: None,
            ..AnalyzeConfig::default()
        };
        let batch = analyze(&records, &cfg);

        let mut analyzer = OnlineAnalyzer::new(OnlineConfig {
            analyze: cfg,
            ..OnlineConfig::default()
        });
        let mut tracker = DeltaTracker::new();
        let mut deltas = Vec::new();
        for (i, r) in records.iter().enumerate() {
            analyzer.push_record(r);
            // Tick at awkward boundaries, including mid-recovery.
            if i % 7 == 3 {
                deltas.push(tracker.delta_from(&analyzer, 0));
            }
        }
        let n = analyzer.records();
        let end = analyzer.end_nanos();
        let report = analyzer.finish();
        deltas.push(tracker.terminal(&report, n, end, 0));

        let fold = fold_deltas(&deltas);
        assert_eq!(fold.basis, ReportBasis::of_report(&batch));
        assert_eq!(fold.records, records.len() as u64);
        // The per-tick deltas alone never contain provisional gaps:
        // only the terminal delta commits the still-open timeline.
        let pre_terminal_unrecovered: u64 = deltas
            .iter()
            .filter(|d| !d.terminal)
            .map(|d| d.unrecovered)
            .sum();
        assert_eq!(pre_terminal_unrecovered, 0);
    }

    #[test]
    fn committed_anomalies_are_a_prefix_of_the_final_report() {
        let records = stream(24, Some(6));
        let cfg = OnlineConfig {
            analyze: AnalyzeConfig {
                h_max_nanos: None,
                ..AnalyzeConfig::default()
            },
            horizon_nanos: Some(500 * 1_000_000),
            ..OnlineConfig::default()
        };
        let mut analyzer = OnlineAnalyzer::new(cfg);
        let mut mid_committed = Vec::new();
        for (i, r) in records.iter().enumerate() {
            analyzer.push_record(r);
            if i == records.len() / 2 {
                mid_committed = analyzer.basis().anomalies;
            }
        }
        let committed = analyzer.basis().anomalies;
        let report = analyzer.finish();
        assert!(report.anomalies.len() >= committed.len());
        assert_eq!(&report.anomalies[..committed.len()], &committed[..]);
        assert_eq!(&committed[..mid_committed.len()], &mid_committed[..]);
        // The horizon actually aged the lost packet out mid-stream.
        assert!(!committed.is_empty());
    }

    #[test]
    fn sink_drops_and_counts_when_the_channel_is_full() {
        let (tx, rx) = mpsc::sync_channel(2);
        let sink = DoctorSink::new(tx);
        for i in 0..5u32 {
            sink.record(
                u64::from(i),
                RX,
                &ProtocolEvent::Recovered {
                    seq: Seq(i),
                    latency_nanos: 1,
                },
            );
        }
        assert_eq!(sink.dropped(), 3);
        drop(rx);
        sink.record(9, RX, &ProtocolEvent::FreshnessLost);
        assert_eq!(sink.dropped(), 4);
    }

    fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect admin");
        conn.write_all(format!("GET {target} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn admin_routes_answer_with_documented_statuses() {
        let sidecar = DoctorSidecar::spawn(DoctorConfig {
            tick: Duration::from_millis(5),
            keep_deltas: true,
            online: OnlineConfig {
                analyze: AnalyzeConfig {
                    h_max_nanos: None,
                    ..AnalyzeConfig::default()
                },
                ..OnlineConfig::default()
            },
            ..DoctorConfig::default()
        });
        let server = AdminServer::bind("127.0.0.1:0", sidecar.handle()).expect("bind admin");
        let addr = server.local_addr();

        let sink = sidecar.sink();
        for r in stream(12, None) {
            sink.record(r.at_nanos, r.host, &r.event);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while sidecar.ticks() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sidecar.ticks() > 0, "doctor never ticked");

        let (status, body) = http_get(addr, "/stats");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"records\":"), "{body}");
        assert!(body.contains("\"dropped_events\":0"), "{body}");

        let (status, body) = http_get(addr, "/timelines/live");
        assert_eq!(status, 200);
        assert!(body.contains("\"oldest\":["), "{body}");

        let (status, body) = http_get(addr, "/anomalies/tail?n=5");
        assert_eq!(status, 200);
        assert!(body.contains("\"tail\":["), "{body}");
        let (status, _) = http_get(addr, "/anomalies/tail?n=bogus");
        assert_eq!(status, 400);

        let (status, body) = http_get(addr, "/deltas/last");
        assert_eq!(status, 200);
        assert!(body.contains("\"tick\":"), "{body}");

        let (status, body) = http_get(addr, "/mem");
        assert_eq!(status, 200);
        assert!(body.contains("\"resident_bytes\":"), "{body}");

        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "ok\n");

        let (status, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
        let done = sidecar.finish();
        assert_eq!(done.records, stream(12, None).len() as u64);
        assert_eq!(done.dropped_events, 0);
        assert_eq!(done.fold.basis, ReportBasis::of_report(&done.report));
        assert!(!done.deltas.is_empty());
        assert!(done.deltas.last().unwrap().terminal);
    }

    #[test]
    fn healthz_turns_unhealthy_on_an_overdue_open_gap() {
        let sidecar = DoctorSidecar::spawn(DoctorConfig {
            tick: Duration::from_millis(5),
            unrecovered_grace_nanos: 100 * 1_000_000,
            online: OnlineConfig {
                analyze: AnalyzeConfig {
                    h_max_nanos: None,
                    ..AnalyzeConfig::default()
                },
                ..OnlineConfig::default()
            },
            ..DoctorConfig::default()
        });
        let sink = sidecar.sink();
        sink.record(0, RX, &ProtocolEvent::RoleAnnounced { role: "receiver" });
        sink.record(
            1_000_000,
            RX,
            &ProtocolEvent::GapDetected {
                first: Seq(1),
                last: Seq(1),
            },
        );
        // Stream time advances a full second past the 100ms grace.
        sink.record(1_000_000_000, RX, &ProtocolEvent::FreshnessLost);
        let handle = sidecar.handle();
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.health().healthy && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let h = handle.health();
        assert!(!h.healthy, "expected overdue gap to flag health");
        assert!(h.reasons.iter().any(|r| r.contains("open gap")), "{h:?}");
        let (status, body) = handle.healthz();
        assert_eq!(status, 503);
        assert!(body.contains("\"healthy\":false"), "{body}");
        drop(sidecar);
    }

    #[test]
    fn delta_json_is_flat_and_labelled() {
        let mut analyzer = OnlineAnalyzer::new(OnlineConfig::default());
        let mut tracker = DeltaTracker::new();
        for r in stream(6, None) {
            analyzer.push_record(&r);
        }
        let d = tracker.delta_from(&analyzer, 3);
        let json = d.to_json();
        for needle in [
            "\"tick\":0",
            "\"terminal\":false",
            "\"stages\":{\"detection\":",
            "\"sources\":{",
            "\"new_anomalies\":[",
            "\"dropped_events\":3",
        ] {
            assert!(json.contains(needle), "{needle} missing in {json}");
        }
    }
}
