//! The metrics registry: per-event counters plus the two latency
//! distributions the paper's evaluation revolves around.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use crate::{ProtocolEvent, TraceSink};

/// A latency distribution that retains every sample, so experiments can
/// compute exact percentiles (runs are sim-scale: thousands of samples,
/// not millions).
#[derive(Debug, Default)]
pub struct Histogram {
    samples_nanos: Vec<u64>,
}

impl Histogram {
    /// Adds one sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples_nanos.push(nanos);
    }

    /// An immutable view for computation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut sorted = self.samples_nanos.clone();
        sorted.sort_unstable();
        HistogramSnapshot {
            sorted_nanos: sorted,
            totals: None,
        }
    }
}

/// Exact totals carried by a snapshot whose raw samples were
/// reservoir-sampled down (see [`StreamingHistogram`]): the count, sum
/// and max cover *every* recorded value, not just the retained ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExactTotals {
    count: u64,
    sum: u128,
    max_nanos: u64,
}

/// A sorted copy of a [`Histogram`]'s samples.
///
/// Snapshots taken from a [`StreamingHistogram`] whose reservoir
/// overflowed additionally carry exact totals: [`count`](Self::count),
/// [`mean`](Self::mean) and [`max`](Self::max) stay exact over the full
/// population while [`samples`](Self::samples) and
/// [`percentile`](Self::percentile) answer from the retained reservoir.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    sorted_nanos: Vec<u64>,
    totals: Option<ExactTotals>,
}

impl HistogramSnapshot {
    /// Number of samples recorded (exact even when the retained raw
    /// samples were reservoir-sampled down).
    pub fn count(&self) -> usize {
        match self.totals {
            Some(t) => t.count as usize,
            None => self.sorted_nanos.len(),
        }
    }

    /// The retained samples, ascending. For a reservoir-sampled
    /// snapshot this is the reservoir, not the full population (the
    /// full population's count/mean/max stay exact).
    pub fn samples(&self) -> Vec<Duration> {
        self.sorted_nanos
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect()
    }

    /// Arithmetic mean, or zero when empty. Exact even for
    /// reservoir-sampled snapshots (the running sum is kept).
    pub fn mean(&self) -> Duration {
        if let Some(t) = self.totals {
            if t.count == 0 {
                return Duration::ZERO;
            }
            return Duration::from_nanos((t.sum / u128::from(t.count)) as u64);
        }
        if self.sorted_nanos.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = self.sorted_nanos.iter().map(|&n| u128::from(n)).sum();
        Duration::from_nanos((sum / self.sorted_nanos.len() as u128) as u64)
    }

    /// The `p`-th percentile (`0.0..=1.0`) by nearest-rank over the
    /// retained samples (an unbiased estimate when reservoir-sampled),
    /// or zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.sorted_nanos.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.sorted_nanos.len() as f64).ceil() as usize)
            .clamp(1, self.sorted_nanos.len());
        Duration::from_nanos(self.sorted_nanos[rank - 1])
    }

    /// Largest sample, or zero when empty. Exact even for
    /// reservoir-sampled snapshots.
    pub fn max(&self) -> Duration {
        match self.totals {
            Some(t) => Duration::from_nanos(t.max_nanos),
            None => Duration::from_nanos(self.sorted_nanos.last().copied().unwrap_or(0)),
        }
    }

    /// `true` when the raw samples were reservoir-sampled down — i.e.
    /// [`samples`](Self::samples) holds fewer values than
    /// [`count`](Self::count).
    pub fn is_sampled(&self) -> bool {
        self.totals.is_some()
    }
}

/// Number of power-of-two latency buckets in a [`StreamingHistogram`]
/// (bucket `i` counts samples with `ilog2(nanos) == i`; zero lands in
/// bucket 0), covering the whole `u64` nanosecond range.
pub const STREAM_HIST_BUCKETS: usize = 64;

/// A latency distribution with O(1) memory per sample: a fixed array of
/// power-of-two buckets (exact count/sum/max) plus a bounded reservoir
/// of raw samples for percentile estimation. This is what the streaming
/// forensics correlator folds stage latencies into, so a million-event
/// capture costs kilobytes instead of a `Vec` of every sample.
///
/// The reservoir uses Algorithm R with a fixed-seed splitmix64 stream,
/// so runs are deterministic: identical inputs yield identical
/// snapshots, and while the sample count is at or below the reservoir
/// capacity the snapshot is byte-for-byte the exact distribution (which
/// is what the batch-vs-streaming differential tests pin).
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    buckets: [u64; STREAM_HIST_BUCKETS],
    count: u64,
    sum: u128,
    max_nanos: u64,
    reservoir: Vec<u64>,
    capacity: usize,
    rng: u64,
}

impl StreamingHistogram {
    /// A histogram retaining at most `capacity` raw samples (at least 1).
    pub fn new(capacity: usize) -> Self {
        StreamingHistogram {
            buckets: [0; STREAM_HIST_BUCKETS],
            count: 0,
            sum: 0,
            max_nanos: 0,
            reservoir: Vec::new(),
            capacity: capacity.max(1),
            rng: 0x5EED_FACE_CAFE_F00D,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // splitmix64: deterministic, seedless-environment friendly.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Adds one sample: O(1) time, O(1) memory.
    pub fn record(&mut self, nanos: u64) {
        let bucket = if nanos == 0 {
            0
        } else {
            nanos.ilog2() as usize
        };
        self.buckets[bucket] += 1;
        self.sum += u128::from(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        // Algorithm R: the i-th sample (0-based) replaces a random
        // reservoir slot with probability capacity/(i+1).
        if (self.count as usize) < self.capacity {
            self.reservoir.push(nanos);
        } else {
            let j = self.next_rand() % (self.count + 1);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = nanos;
            }
        }
        self.count += 1;
    }

    /// Samples recorded so far (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The power-of-two bucket counts (exact; bucket `i` holds samples
    /// with `ilog2(nanos) == i`).
    pub fn bucket_counts(&self) -> &[u64; STREAM_HIST_BUCKETS] {
        &self.buckets
    }

    /// Largest sample recorded so far in nanoseconds (exact).
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Approximate resident bytes of this histogram (fixed buckets +
    /// the reservoir).
    pub fn approx_bytes(&self) -> u64 {
        (STREAM_HIST_BUCKETS * 8 + self.reservoir.len() * 8 + 64) as u64
    }

    /// An immutable view. While `count() <= capacity` this is exactly
    /// the full distribution; beyond that the raw samples are the
    /// reservoir and the snapshot carries exact count/sum/max totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut sorted = self.reservoir.clone();
        sorted.sort_unstable();
        HistogramSnapshot {
            sorted_nanos: sorted,
            totals: (self.count as usize > self.capacity).then_some(ExactTotals {
                count: self.count,
                sum: self.sum,
                max_nanos: self.max_nanos,
            }),
        }
    }
}

/// A [`TraceSink`] that aggregates: a counter per
/// [`ProtocolEvent::key`], a histogram of recovery latencies (from
/// [`ProtocolEvent::Recovered`]) and a histogram of `t_wait` values
/// (from [`ProtocolEvent::TWaitUpdated`]).
///
/// Share one registry across the machines whose events should aggregate
/// together (e.g. all receivers of a scenario).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    recovery_latency: Mutex<Histogram>,
    t_wait: Mutex<Histogram>,
}

impl MetricsRegistry {
    /// Events counted under `key` so far.
    pub fn counter(&self, key: &str) -> u64 {
        *self.counters.lock().unwrap().get(key).unwrap_or(&0)
    }

    /// All nonzero counters, sorted by key.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.counters.lock().unwrap().clone()
    }

    /// Sets a point-in-time gauge (e.g. the sim's event-queue depth).
    /// Gauges are set by instruments directly, not via the event
    /// stream.
    pub fn set_gauge(&self, key: &str, value: u64) {
        self.gauges.lock().unwrap().insert(key.to_owned(), value);
    }

    /// The gauge stored under `key`, or zero.
    pub fn gauge(&self, key: &str) -> u64 {
        *self.gauges.lock().unwrap().get(key).unwrap_or(&0)
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        self.gauges.lock().unwrap().clone()
    }

    /// The recovery-latency distribution accumulated so far.
    pub fn recovery_latency(&self) -> HistogramSnapshot {
        self.recovery_latency.lock().unwrap().snapshot()
    }

    /// The `t_wait` sample distribution accumulated so far.
    pub fn t_wait(&self) -> HistogramSnapshot {
        self.t_wait.lock().unwrap().snapshot()
    }

    /// Renders counters and histogram summaries as an aligned text
    /// table (for reports and `reproduce`).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (key, n) in self.counters() {
            let _ = writeln!(s, "  {key:<28} {n:>10}");
        }
        for (key, n) in self.gauges() {
            let _ = writeln!(s, "  {key:<28} {n:>10} (gauge)");
        }
        for (name, h) in [
            ("recovery_latency", self.recovery_latency()),
            ("t_wait", self.t_wait()),
        ] {
            if h.count() > 0 {
                let _ = writeln!(
                    s,
                    "  {name:<28} n={} mean={:.1?} p95={:.1?} max={:.1?}",
                    h.count(),
                    h.mean(),
                    h.percentile(0.95),
                    h.max()
                );
            }
        }
        s
    }
}

impl TraceSink for MetricsRegistry {
    fn record(&self, _at_nanos: u64, _host: lbrm_wire::HostId, event: &ProtocolEvent) {
        *self
            .counters
            .lock()
            .unwrap()
            .entry(event.key())
            .or_insert(0) += 1;
        match event {
            ProtocolEvent::Recovered { latency_nanos, .. } => {
                self.recovery_latency.lock().unwrap().record(*latency_nanos);
            }
            ProtocolEvent::TWaitUpdated { t_wait_nanos } => {
                self.t_wait.lock().unwrap().record(*t_wait_nanos);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_wire::Seq;

    #[test]
    fn registry_counts_and_feeds_histograms() {
        let reg = MetricsRegistry::default();
        for i in 1..=4u64 {
            reg.record(
                i,
                lbrm_wire::HostId(1),
                &ProtocolEvent::Recovered {
                    seq: Seq(i as u32),
                    latency_nanos: i * 100,
                },
            );
        }
        reg.record(
            9,
            lbrm_wire::HostId(1),
            &ProtocolEvent::TWaitUpdated { t_wait_nanos: 5000 },
        );
        assert_eq!(reg.counter("recovered"), 4);
        assert_eq!(reg.counter("t_wait_updated"), 1);
        let h = reg.recovery_latency();
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Duration::from_nanos(250));
        assert_eq!(h.max(), Duration::from_nanos(400));
        assert_eq!(reg.t_wait().samples(), vec![Duration::from_nanos(5000)]);
        let table = reg.render();
        assert!(table.contains("recovered"));
        assert!(table.contains("recovery_latency"));
    }

    #[test]
    fn gauges_store_point_in_time_values() {
        let reg = MetricsRegistry::default();
        assert_eq!(reg.gauge("sim.queue_depth_max"), 0);
        reg.set_gauge("sim.queue_depth_max", 17);
        reg.set_gauge("sim.queue_depth_max", 23);
        assert_eq!(reg.gauge("sim.queue_depth_max"), 23);
        assert_eq!(reg.gauges().len(), 1);
        assert!(reg.render().contains("sim.queue_depth_max"));
        assert!(reg.render().contains("(gauge)"));
    }

    #[test]
    fn streaming_histogram_is_exact_under_capacity() {
        let mut exact = Histogram::default();
        let mut stream = StreamingHistogram::new(100);
        for n in (1..=100u64).rev() {
            exact.record(n * 7);
            stream.record(n * 7);
        }
        let (e, s) = (exact.snapshot(), stream.snapshot());
        assert!(!s.is_sampled());
        assert_eq!(s.count(), e.count());
        assert_eq!(s.samples(), e.samples());
        assert_eq!(s.mean(), e.mean());
        assert_eq!(s.percentile(0.95), e.percentile(0.95));
        assert_eq!(s.max(), e.max());
    }

    #[test]
    fn streaming_histogram_keeps_exact_totals_when_sampled() {
        let mut stream = StreamingHistogram::new(16);
        for n in 1..=10_000u64 {
            stream.record(n);
        }
        let s = stream.snapshot();
        assert!(s.is_sampled());
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.samples().len(), 16);
        // Mean and max come from running totals, not the reservoir.
        assert_eq!(s.mean(), Duration::from_nanos(5000));
        assert_eq!(s.max(), Duration::from_nanos(10_000));
        // Percentile is a reservoir estimate but stays within range.
        let p50 = s.percentile(0.5).as_nanos() as u64;
        assert!((1..=10_000).contains(&p50));
        // Buckets hold every sample.
        assert_eq!(stream.bucket_counts().iter().sum::<u64>(), 10_000);
        assert!(stream.approx_bytes() < 2048, "fixed-size memory");
        // Determinism: an identical run yields an identical snapshot.
        let mut again = StreamingHistogram::new(16);
        for n in 1..=10_000u64 {
            again.record(n);
        }
        assert_eq!(again.snapshot().samples(), s.samples());
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut h = Histogram::default();
        for n in 1..=100u64 {
            h.record(n);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), Duration::from_nanos(50));
        assert_eq!(s.percentile(0.95), Duration::from_nanos(95));
        assert_eq!(s.percentile(1.0), Duration::from_nanos(100));
        assert_eq!(s.percentile(0.0), Duration::from_nanos(1));
        assert_eq!(HistogramSnapshot::default().percentile(0.5), Duration::ZERO);
        assert_eq!(HistogramSnapshot::default().mean(), Duration::ZERO);
    }
}
