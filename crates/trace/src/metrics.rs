//! The metrics registry: per-event counters plus the two latency
//! distributions the paper's evaluation revolves around.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use crate::{ProtocolEvent, TraceSink};

/// A latency distribution that retains every sample, so experiments can
/// compute exact percentiles (runs are sim-scale: thousands of samples,
/// not millions).
#[derive(Debug, Default)]
pub struct Histogram {
    samples_nanos: Vec<u64>,
}

impl Histogram {
    /// Adds one sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples_nanos.push(nanos);
    }

    /// An immutable view for computation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut sorted = self.samples_nanos.clone();
        sorted.sort_unstable();
        HistogramSnapshot {
            sorted_nanos: sorted,
        }
    }
}

/// A sorted copy of a [`Histogram`]'s samples.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    sorted_nanos: Vec<u64>,
}

impl HistogramSnapshot {
    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted_nanos.len()
    }

    /// All samples, ascending.
    pub fn samples(&self) -> Vec<Duration> {
        self.sorted_nanos
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect()
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.sorted_nanos.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = self.sorted_nanos.iter().map(|&n| u128::from(n)).sum();
        Duration::from_nanos((sum / self.sorted_nanos.len() as u128) as u64)
    }

    /// The `p`-th percentile (`0.0..=1.0`) by nearest-rank, or zero when
    /// empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.sorted_nanos.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.sorted_nanos.len() as f64).ceil() as usize)
            .clamp(1, self.sorted_nanos.len());
        Duration::from_nanos(self.sorted_nanos[rank - 1])
    }

    /// Largest sample, or zero when empty.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.sorted_nanos.last().copied().unwrap_or(0))
    }
}

/// A [`TraceSink`] that aggregates: a counter per
/// [`ProtocolEvent::key`], a histogram of recovery latencies (from
/// [`ProtocolEvent::Recovered`]) and a histogram of `t_wait` values
/// (from [`ProtocolEvent::TWaitUpdated`]).
///
/// Share one registry across the machines whose events should aggregate
/// together (e.g. all receivers of a scenario).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    recovery_latency: Mutex<Histogram>,
    t_wait: Mutex<Histogram>,
}

impl MetricsRegistry {
    /// Events counted under `key` so far.
    pub fn counter(&self, key: &str) -> u64 {
        *self.counters.lock().unwrap().get(key).unwrap_or(&0)
    }

    /// All nonzero counters, sorted by key.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.counters.lock().unwrap().clone()
    }

    /// Sets a point-in-time gauge (e.g. the sim's event-queue depth).
    /// Gauges are set by instruments directly, not via the event
    /// stream.
    pub fn set_gauge(&self, key: &str, value: u64) {
        self.gauges.lock().unwrap().insert(key.to_owned(), value);
    }

    /// The gauge stored under `key`, or zero.
    pub fn gauge(&self, key: &str) -> u64 {
        *self.gauges.lock().unwrap().get(key).unwrap_or(&0)
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        self.gauges.lock().unwrap().clone()
    }

    /// The recovery-latency distribution accumulated so far.
    pub fn recovery_latency(&self) -> HistogramSnapshot {
        self.recovery_latency.lock().unwrap().snapshot()
    }

    /// The `t_wait` sample distribution accumulated so far.
    pub fn t_wait(&self) -> HistogramSnapshot {
        self.t_wait.lock().unwrap().snapshot()
    }

    /// Renders counters and histogram summaries as an aligned text
    /// table (for reports and `reproduce`).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (key, n) in self.counters() {
            let _ = writeln!(s, "  {key:<28} {n:>10}");
        }
        for (key, n) in self.gauges() {
            let _ = writeln!(s, "  {key:<28} {n:>10} (gauge)");
        }
        for (name, h) in [
            ("recovery_latency", self.recovery_latency()),
            ("t_wait", self.t_wait()),
        ] {
            if h.count() > 0 {
                let _ = writeln!(
                    s,
                    "  {name:<28} n={} mean={:.1?} p95={:.1?} max={:.1?}",
                    h.count(),
                    h.mean(),
                    h.percentile(0.95),
                    h.max()
                );
            }
        }
        s
    }
}

impl TraceSink for MetricsRegistry {
    fn record(&self, _at_nanos: u64, _host: lbrm_wire::HostId, event: &ProtocolEvent) {
        *self
            .counters
            .lock()
            .unwrap()
            .entry(event.key())
            .or_insert(0) += 1;
        match event {
            ProtocolEvent::Recovered { latency_nanos, .. } => {
                self.recovery_latency.lock().unwrap().record(*latency_nanos);
            }
            ProtocolEvent::TWaitUpdated { t_wait_nanos } => {
                self.t_wait.lock().unwrap().record(*t_wait_nanos);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_wire::Seq;

    #[test]
    fn registry_counts_and_feeds_histograms() {
        let reg = MetricsRegistry::default();
        for i in 1..=4u64 {
            reg.record(
                i,
                lbrm_wire::HostId(1),
                &ProtocolEvent::Recovered {
                    seq: Seq(i as u32),
                    latency_nanos: i * 100,
                },
            );
        }
        reg.record(
            9,
            lbrm_wire::HostId(1),
            &ProtocolEvent::TWaitUpdated { t_wait_nanos: 5000 },
        );
        assert_eq!(reg.counter("recovered"), 4);
        assert_eq!(reg.counter("t_wait_updated"), 1);
        let h = reg.recovery_latency();
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Duration::from_nanos(250));
        assert_eq!(h.max(), Duration::from_nanos(400));
        assert_eq!(reg.t_wait().samples(), vec![Duration::from_nanos(5000)]);
        let table = reg.render();
        assert!(table.contains("recovered"));
        assert!(table.contains("recovery_latency"));
    }

    #[test]
    fn gauges_store_point_in_time_values() {
        let reg = MetricsRegistry::default();
        assert_eq!(reg.gauge("sim.queue_depth_max"), 0);
        reg.set_gauge("sim.queue_depth_max", 17);
        reg.set_gauge("sim.queue_depth_max", 23);
        assert_eq!(reg.gauge("sim.queue_depth_max"), 23);
        assert_eq!(reg.gauges().len(), 1);
        assert!(reg.render().contains("sim.queue_depth_max"));
        assert!(reg.render().contains("(gauge)"));
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut h = Histogram::default();
        for n in 1..=100u64 {
            h.record(n);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), Duration::from_nanos(50));
        assert_eq!(s.percentile(0.95), Duration::from_nanos(95));
        assert_eq!(s.percentile(1.0), Duration::from_nanos(100));
        assert_eq!(s.percentile(0.0), Duration::from_nanos(1));
        assert_eq!(HistogramSnapshot::default().percentile(0.5), Duration::ZERO);
        assert_eq!(HistogramSnapshot::default().mean(), Duration::ZERO);
    }
}
